#!/usr/bin/env python
"""Watch the DBN filter track a node's compromise state (Section 4.3).

Fits filter tables from random-defender episodes, then replays an
attack while printing the filter's belief about the beachhead node next
to the ground truth, and finally scores the filter with the paper's KL
validation metric.

Run:
    python examples/dbn_beliefs.py
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.config import small_network
from repro.dbn import DBNFilter, canonical_states, fit_dbn, validate_dbn
from repro.dbn.states import CanonicalState
from repro.defenders import SemiRandomPolicy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fit-episodes", type=int, default=8)
    parser.add_argument("--tmax", type=int, default=1500)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    config = small_network(tmax=args.tmax)
    print(f"fitting DBN tables from {args.fit_episodes} random episodes ...")
    tables = fit_dbn(
        lambda: repro.make_env(config),
        lambda: SemiRandomPolicy(rate=5.0),
        episodes=args.fit_episodes,
        seed=args.seed,
    )

    env = repro.make_env(config, seed=args.seed)
    obs = env.reset(seed=args.seed)
    dbn = DBNFilter(tables, env.topology)
    beachhead = int(np.flatnonzero(env.sim.state.compromised_mask())[0])
    print(
        f"\nbeachhead node: {env.topology.nodes[beachhead].name} "
        f"(the filter does not know this)\n"
    )
    print(f"{'hour':>5}  {'P(compromised)':>15}  {'belief argmax':>20}  truth")

    done = False
    while not done and env.t < 400:
        obs, _, done, info = env.step(None)
        beliefs = dbn.update(obs)
        if env.t % 40 == 0:
            truth = canonical_states(info["conditions"])[beachhead]
            p_comp = dbn.prob_compromised()[beachhead]
            guess = CanonicalState(int(beliefs[beachhead].argmax()))
            print(
                f"{env.t:5d}  {p_comp:15.3f}  {guess.name:>20}  "
                f"{CanonicalState(int(truth)).name}"
            )

    print("\nscoring the filter on held-out episodes (Section 4.3) ...")
    result = validate_dbn(
        lambda: repro.make_env(config),
        lambda: SemiRandomPolicy(rate=5.0),
        tables,
        episodes=2,
        seed=args.seed + 100,
        max_steps=500,
    )
    print(
        f"max KL: {result.max_kl:.3f}   mean KL: {result.mean_kl:.4f}   "
        f"argmax accuracy: {result.accuracy:.3f}"
    )


if __name__ == "__main__":
    main()
