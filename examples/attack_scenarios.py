#!/usr/bin/env python
"""Walk through the four APT attack configurations of Fig 8.

The FSM attacker is parameterised by objective (disrupt vs destroy)
and access vector (OPC server vs level-1 HMIs). This example runs each
configuration against an undefended network and prints the machine-
state timeline -- the Fig 3 tactics graph traced in simulation time --
plus the final damage.

Run:
    python examples/attack_scenarios.py
"""

from __future__ import annotations

import argparse

import repro
from repro.attacker import FSMAttacker
from repro.config import APTConfig, paper_network


def trace_attack(objective: str, vector: str, seed: int, tmax: int) -> None:
    config = paper_network(tmax=tmax)
    attacker = FSMAttacker(
        APTConfig(objective=objective, vector=vector),
        sample_qualitative=False,
    )
    env = repro.make_env(config, seed=seed, attacker=attacker)
    env.reset(seed=seed)

    print(f"\n=== objective={objective}, vector={vector} ===")
    timeline = []
    done, info = False, {}
    while not done:
        _, _, done, info = env.step(None)
        if not timeline or timeline[-1][1] != info["apt_phase"]:
            timeline.append((info["t"], info["apt_phase"]))
    for t, phase in timeline:
        print(f"  hour {t:5d}  ->  {phase}")
    print(
        f"  final: {info['n_plcs_disrupted']} PLCs disrupted, "
        f"{info['n_plcs_destroyed']} destroyed, "
        f"{info['n_compromised']} nodes compromised"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tmax", type=int, default=3000)
    args = parser.parse_args()
    for objective in ("disrupt", "destroy"):
        for vector in ("opc", "hmi"):
            trace_attack(objective, vector, args.seed, args.tmax)


if __name__ == "__main__":
    main()
