#!/usr/bin/env python
"""Certify a policy offline: off-policy evaluation on logged episodes.

Before handing a new ACSO policy control of a live ICS network, its
value must be estimated from data logged under the *current* (known,
trusted) policy -- the data-efficient validation the paper's future
work calls for. This example logs episodes under an exploratory
behaviour policy, then estimates a greedier target policy's value five
ways (OIS / WIS / PDIS / FQE / doubly-robust) and compares against an
on-policy Monte-Carlo ground truth it would normally not have. It ends
with the number an operator actually signs off on: a high-confidence
lower bound.

Run:
    python examples/ope_validation.py [--episodes 6] [--horizon 25]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.config import tiny_network
from repro.dbn import fit_dbn
from repro.defenders import SemiRandomPolicy
from repro.rl import AttentionQNetwork, QNetConfig
from repro.validation import (
    StochasticQPolicy,
    bootstrap_ci,
    collect_logged_episodes,
    doubly_robust,
    empirical_bernstein_lower_bound,
    fitted_q_evaluation,
    ordinary_importance_sampling,
    per_decision_importance_sampling,
    weighted_importance_sampling,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=6)
    parser.add_argument("--horizon", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = tiny_network(tmax=args.horizon)
    print("Fitting DBN tables (the featurizer both policies share)...")
    tables = fit_dbn(
        lambda: repro.make_env(config),
        lambda: SemiRandomPolicy(rate=3.0),
        episodes=4,
        seed=21,
        max_steps=args.horizon,
    )

    env = repro.make_env(config, seed=args.seed)
    qnet = AttentionQNetwork(
        QNetConfig(d_model=16, n_heads=2, encoder_hidden=32, head_hidden=32),
        seed=3,
    )
    qnet.bind_topology(env.topology)
    behavior = StochasticQPolicy(
        qnet, tables, temperature=1.0, epsilon=0.4, seed=args.seed
    )
    target = StochasticQPolicy(
        qnet, tables, temperature=0.25, epsilon=0.1, seed=args.seed + 1
    )

    print(f"Logging {args.episodes} episodes under the behaviour policy...")
    logged = collect_logged_episodes(
        env, behavior, args.episodes, seed=100, max_steps=args.horizon
    )
    behavior_returns = [ep.discounted_return() for ep in logged]
    print(f"  behaviour-policy mean return: {np.mean(behavior_returns):.2f}")

    truth_eps = collect_logged_episodes(
        env, target, args.episodes, seed=100, max_steps=args.horizon
    )
    truth = float(np.mean([ep.discounted_return() for ep in truth_eps]))
    print(f"  (hidden) on-policy target value: {truth:.2f}\n")

    print("Estimating the target's value from the behaviour log only:")
    ois = ordinary_importance_sampling(logged, target)
    wis = weighted_importance_sampling(logged, target)
    pdis = per_decision_importance_sampling(logged, target, clip=10.0)
    eval_net = AttentionQNetwork(qnet.config, seed=11)
    eval_net.bind_topology(env.topology)
    fqe = fitted_q_evaluation(
        logged,
        target,
        eval_net,
        iterations=4,
        epochs_per_iteration=1,
        batch_size=32,
        lr=3e-3,
        mc_epochs=4,
    )
    dr = doubly_robust(
        logged, target, eval_net, clip=10.0, reward_scale=fqe.reward_scale
    )
    for result in (ois, wis, pdis, dr):
        print(
            f"  {result.method:<5} {result.estimate:>10.2f}  "
            f"|err| {abs(result.estimate - truth):>8.2f}  "
            f"ESS {result.ess:.1f}/{len(logged)}"
        )
    print(
        f"  FQE   {fqe.value:>10.2f}  |err| {abs(fqe.value - truth):>8.2f}  "
        "(model-based)"
    )

    print("\nCertification numbers (on the behaviour log's returns):")
    mean, lower, upper = bootstrap_ci(behavior_returns, alpha=0.05)
    print(f"  bootstrap 95% CI:            [{lower:.2f}, {upper:.2f}]")
    bound = empirical_bernstein_lower_bound(
        behavior_returns,
        delta=0.05,
        value_range=float(np.ptp(behavior_returns)) or 1.0,
    )
    print(f"  empirical-Bernstein L(0.95): {bound:.2f}")
    print(
        "\nOver long horizons the trajectory IS weights collapse (watch "
        "the ESS); WIS and the FQE/DR family are the estimators that "
        "survive -- exactly why they exist."
    )


if __name__ == "__main__":
    main()
