#!/usr/bin/env python
"""Small-scale version of the Fig 6 robustness experiment.

Sweeps the APT's cleanup effectiveness and shows how the alert-
triggered playbook degrades while belief-based defense holds up --
the paper's robustness argument in miniature (full-scale version:
``pytest benchmarks/bench_fig6.py``).

Run:
    python examples/robustness_sweep.py [--episodes 2]
"""

from __future__ import annotations

import argparse

import repro
from repro.config import small_network
from repro.dbn import fit_dbn
from repro.defenders import DBNExpertPolicy, PlaybookPolicy, SemiRandomPolicy
from repro.eval import format_sweep_table, run_fig6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=2)
    parser.add_argument("--tmax", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = small_network(tmax=args.tmax)
    print("fitting DBN tables for the expert policy ...")
    tables = fit_dbn(
        lambda: repro.make_env(config),
        lambda: SemiRandomPolicy(rate=5.0),
        episodes=6,
        seed=args.seed,
        max_steps=args.tmax,
    )
    policies = {
        "DBN Expert": DBNExpertPolicy(tables, seed=args.seed),
        "Playbook": PlaybookPolicy(),
        "Semi Random": SemiRandomPolicy(seed=args.seed),
    }

    print("sweeping APT cleanup effectiveness (nominal: 0.5) ...\n")
    sweep = run_fig6(
        config,
        policies,
        effectiveness_values=(0.1, 0.5, 0.9),
        episodes=args.episodes,
        seed=args.seed,
    )
    print(
        format_sweep_table(
            sweep,
            "final_plcs_offline",
            "cleanup eff.",
            title="Final PLCs offline vs cleanup effectiveness",
        )
    )
    print()
    print(
        format_sweep_table(
            sweep,
            "avg_nodes_compromised",
            "cleanup eff.",
            title="Average nodes compromised vs cleanup effectiveness",
        )
    )


if __name__ == "__main__":
    main()
