#!/usr/bin/env python
"""Record an attack episode, export it, and audit the timeline.

Incident response starts from logs. This example records a full
episode trace (every defender action, alert volume, and compromise
count per simulated hour), writes it to JSONL, reloads it, verifies
the simulator's determinism contract (same config + policy + seed =>
identical trace), and prints the attack timeline a security analyst
would reconstruct after the fact.

Run:
    python examples/record_replay_trace.py [--hours 400] [--out trace.jsonl]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

import repro
from repro.config import small_network
from repro.defenders import PlaybookPolicy
from repro.eval import sparkline
from repro.eval.analysis import (
    action_counts,
    dwell_time,
    mean_time_to_repair,
    phase_breakdown,
    time_to_first_response,
)
from repro.sim.trace import EpisodeTrace, record_episode, verify_determinism


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=int, default=400)
    parser.add_argument("--out", default="episode_trace.jsonl")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    config = small_network(tmax=args.hours)
    config = config.with_apt(replace(config.apt, time_scale=4.0))

    print(f"Recording {args.hours} hours of playbook defense...")
    env = repro.make_env(config, seed=args.seed)
    trace = record_episode(env, PlaybookPolicy(), seed=args.seed)
    print(
        f"  {len(trace)} steps, {trace.total_alerts} alerts, "
        f"{len(trace.actions_taken())} defender actions, "
        f"total IT cost {trace.total_it_cost:.2f}"
    )

    trace.to_jsonl(args.out)
    loaded = EpisodeTrace.from_jsonl(args.out)
    assert loaded.steps == trace.steps
    print(f"  exported to {args.out} and reloaded bit-identically")

    print("\nChecking the determinism contract (re-running the episode)...")
    ok = verify_determinism(
        lambda: repro.make_env(config),
        lambda: PlaybookPolicy(),
        seed=args.seed,
    )
    print(f"  identical traces on replay: {ok}")

    print("\nAttack timeline (per-hour compromise count):")
    compromised = [s.n_compromised for s in trace.steps]
    print("  " + sparkline(compromised[:: max(1, len(compromised) // 72)]))

    phase, phase_start = None, 0
    print("\nAPT phase transitions:")
    for step in trace.steps:
        if step.apt_phase != phase:
            if phase is not None:
                print(f"  t={phase_start:>4}h - {step.t - 1:>4}h  {phase}")
            phase, phase_start = step.apt_phase, step.t
    print(f"  t={phase_start:>4}h - {trace.steps[-1].t:>4}h  {phase}")

    busy = [s for s in trace.steps if s.actions]
    print(
        f"\nDefender acted in {len(busy)}/{len(trace)} hours; "
        "first five responses:"
    )
    for step in busy[:5]:
        actions = ", ".join(f"{a}@{t}" for a, t in step.actions)
        print(f"  t={step.t:>4}h  {actions}  " f"(alerts this hour: {step.n_alerts})")

    print("\nSOC metrics:")
    dwell = dwell_time(trace)
    print(
        f"  attacker dwell: {dwell.total_hours}h total "
        f"({dwell.fraction:.0%} of the episode), longest streak "
        f"{dwell.longest_streak}h"
    )
    latency = time_to_first_response(trace)
    print(
        f"  first-alert -> first-action latency: "
        f"{latency if latency is not None else 'n/a'}h"
    )
    mttr = mean_time_to_repair(trace)
    print(
        f"  mean time to repair PLCs: "
        f"{f'{mttr:.1f}h' if mttr is not None else 'no PLC ever offline'}"
    )
    print("  hours per APT phase:")
    for phase, hours in phase_breakdown(trace).items():
        print(f"    {phase:<24} {hours:>5}h")
    counts = action_counts(trace)
    print(
        f"  action mix: {counts['total_investigations']} investigations, "
        f"{counts['total_mitigations']} mitigations"
    )


if __name__ == "__main__":
    main()
