#!/usr/bin/env python
"""Define, save, and defend a custom ICS network.

The simulator is fully configurable (paper Section 3.1: "the number of
nodes, devices, PLCs, and the specific network connectivity, are all
configurable"). This example builds a plant that differs from every
preset -- a wide level 2, a single server, many PLCs -- tunes the
attacker, round-trips the configuration through JSON (the format the
``repro`` CLI consumes), and compares defenders on it.

Run:
    python examples/custom_topology.py [--episodes 2]
"""

from __future__ import annotations

import argparse
import tempfile

import repro
from repro.config import APTConfig, SimConfig, TopologyConfig
from repro.config_io import load_config, save_config
from repro.defenders import NoopPolicy, PlaybookPolicy
from repro.eval import evaluate_policy, format_aggregate_table
from repro.net.topology import build_topology


def build_custom_config() -> SimConfig:
    """A bottling plant: 40 floor workstations, one OPC, 80 PLCs."""
    topology = TopologyConfig(
        l2_workstations=40,
        l2_servers=("opc", "historian"),
        l1_hmis=8,
        plcs=80,
    )
    attacker = APTConfig(
        objective="disrupt",
        vector="hmi",
        lateral_threshold=4,
        hmi_threshold=2,
        plc_threshold_disrupt=30,
        labor_rate=3,  # three attackers at keyboard
        time_scale=4.0,  # accelerate for the demo
    )
    return SimConfig(topology=topology, apt=attacker, tmax=800)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = build_custom_config()
    topology = build_topology(config.topology)
    print(
        f"custom plant: {topology.n_nodes} nodes, {topology.n_plcs} PLCs, "
        f"{len(topology.devices)} network devices, "
        f"{len(topology.vlans)} VLANs"
    )
    by_level = {}
    for node in topology.nodes:
        by_level.setdefault(node.level, []).append(node)
    for level in sorted(by_level, reverse=True):
        names = ", ".join(n.name for n in by_level[level][:4])
        print(f"  level {level}: {len(by_level[level])} nodes ({names}, ...)")

    with tempfile.NamedTemporaryFile(mode="w", suffix=".json", delete=False) as handle:
        path = handle.name
    save_config(config, path)
    restored = load_config(path)
    assert restored == config
    print(f"\nconfig round-tripped through {path}")
    print(f"  (run it from the CLI: repro simulate --config {path} --policy playbook)")

    print(f"\nDefending it for {args.episodes} episode(s) of " f"{config.tmax} hours:")
    results = {}
    for policy in (NoopPolicy(), PlaybookPolicy()):
        env = repro.make_env(restored, seed=args.seed)
        aggregate, _ = evaluate_policy(env, policy, args.episodes, seed=args.seed)
        results[policy.name] = aggregate
    print(format_aggregate_table(results, title="Custom network results"))


if __name__ == "__main__":
    main()
