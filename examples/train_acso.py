#!/usr/bin/env python
"""Train the ACSO agent (paper Section 4) and save its artifacts.

Pipeline, following the paper:

1. fit the DBN filter tables from episodes with a random defender
   (Section 4.3; the paper uses 1,000 episodes, we default to fewer);
2. collect demonstrations from the single-action DBN expert and
   pretrain the attention Q-network with the large-margin loss
   (appendix: delta = 0.05);
3. fine-tune with double DQN + prioritized n-step replay and the
   potential-based shaping reward (Section 4.2).

Training runs on the paper's grid-search network (10 L2 workstations,
3 HMIs, 30 PLCs) with a time-scaled attacker so full campaign arcs fit
in short episodes. Because the attention network's parameters are
independent of network size, the resulting weights can be bound to the
full evaluation network.

Artifacts are written to --out (default benchmarks/data/): the DBN
tables for the training network and the trained Q-network weights.

Usage:
    python examples/train_acso.py [--episodes 20] [--fast]
"""

from __future__ import annotations

import argparse
import pathlib
import time
from dataclasses import replace

import repro
from repro.config import small_network
from repro.dbn import fit_dbn
from repro.defenders import DBNExpertPolicy, SemiRandomPolicy
from repro.nn import save_state
from repro.rl import (
    ACSOFeaturizer,
    AttentionQNetwork,
    DQNConfig,
    DQNTrainer,
    QNetConfig,
    collect_demonstrations,
    pretrain,
)
from repro.rl.pretrain import PretrainConfig


def training_config(tmax: int = 1200, time_scale: float = 4.0):
    """Grid-search network with a time-scaled attacker."""
    cfg = small_network(tmax=tmax)
    return cfg.with_apt(replace(cfg.apt, time_scale=time_scale))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--episodes", type=int, default=20, help="DQN fine-tuning episodes"
    )
    parser.add_argument("--dbn-episodes", type=int, default=12)
    parser.add_argument("--demo-episodes", type=int, default=6)
    parser.add_argument("--pretrain-iters", type=int, default=1200)
    parser.add_argument("--tmax", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fast", action="store_true", help="smoke-test sizes (seconds, not minutes)"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "data",
    )
    args = parser.parse_args()
    if args.fast:
        args.episodes, args.dbn_episodes = 1, 2
        args.demo_episodes, args.pretrain_iters, args.tmax = 1, 50, 150

    args.out.mkdir(parents=True, exist_ok=True)
    cfg = training_config(tmax=args.tmax)

    print("== 1/3 fitting DBN tables from random-defender episodes ==")
    t0 = time.time()
    tables = fit_dbn(
        lambda: repro.make_env(cfg),
        lambda: SemiRandomPolicy(rate=5.0),
        episodes=args.dbn_episodes,
        seed=args.seed,
    )
    tables.save(args.out / "dbn_train.npz")
    print(f"   fitted in {time.time() - t0:.0f}s -> {args.out / 'dbn_train.npz'}")

    env = repro.make_env(cfg, seed=args.seed)
    qnet = AttentionQNetwork(QNetConfig(), seed=args.seed)
    featurizer = ACSOFeaturizer(env.topology, tables)

    print("== 2/3 margin pretraining from DBN-expert demonstrations ==")
    t0 = time.time()
    expert = DBNExpertPolicy(tables, max_actions=1, seed=args.seed)
    demos = collect_demonstrations(
        env,
        expert,
        featurizer,
        qnet,
        episodes=args.demo_episodes,
        seed=args.seed,
    )
    losses = pretrain(
        qnet,
        demos,
        PretrainConfig(
            iterations=args.pretrain_iters, lr=1e-3, margin_weight=1.0, seed=args.seed
        ),
    )
    print(
        f"   {len(demos)} demos, loss {losses[0]:.3f} -> {losses[-1]:.3f} "
        f"in {time.time() - t0:.0f}s"
    )

    print("== 3/3 DQN fine-tuning ==")
    dqn_cfg = DQNConfig(
        lr=1e-4,
        warmup=2000,
        batch_size=64,
        update_every=4,
        target_update=1000,
        eps_start=0.3,  # pretrained policy: explore less than from scratch
        eps_end=0.05,
        eps_decay=0.9997,
        seed=args.seed,
    )
    trainer = DQNTrainer(env, qnet, featurizer, dqn_cfg)
    t0 = time.time()

    def report(stats):
        print(
            f"   ep {stats.episode:3d} return={stats.env_return:8.1f} "
            f"offline={stats.plcs_offline:2d} eps={stats.epsilon:.2f} "
            f"loss={stats.mean_loss:.4f}"
        )

    trainer.train(args.episodes, seed=args.seed + 100, callback=report)
    print(f"   trained {trainer.total_steps} steps in {time.time() - t0:.0f}s")

    weights = args.out / "acso_qnet.npz"
    save_state(qnet, weights, steps=trainer.total_steps)
    print(f"saved trained ACSO weights -> {weights}")


if __name__ == "__main__":
    main()
