#!/usr/bin/env python
"""Quickstart: simulate an APT campaign and defend the network.

Resolves the evaluation environment by scenario id
(``repro.make("inasim-paper-v1")``), runs the FSM attacker against
three defenders -- nobody home, the automated playbook, and a
semi-random responder -- and prints the paper's four evaluation
metrics for each. Episodes are fanned out over a vectorized
environment (``repro.make_vec``); pass ``--num-envs 1`` for the
single-env path (the metrics are identical).

Run:
    python examples/quickstart.py [--scenario inasim-paper-v1]
                                  [--episodes 3] [--num-envs 4]
"""

from __future__ import annotations

import argparse

import repro
from repro.defenders import NoopPolicy, PlaybookPolicy, SemiRandomPolicy
from repro.eval import evaluate_policy_vec, format_aggregate_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        default="inasim-paper-v1",
        help="registered scenario id; see "
        "repro.list_scenarios() or `repro scenarios`",
    )
    parser.add_argument("--episodes", type=int, default=3)
    parser.add_argument(
        "--num-envs", type=int, default=4, help="vectorized lanes to fan episodes over"
    )
    parser.add_argument(
        "--tmax", type=int, default=2000, help="episode horizon in simulated hours"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    spec = repro.get_scenario(args.scenario)
    venv = repro.make_vec(
        spec, min(args.num_envs, args.episodes), seed=args.seed, horizon=args.tmax
    )
    print(f"scenario: {spec.scenario_id} -- {spec.description}")
    print(
        f"network: {venv.topology.n_nodes} nodes, {venv.topology.n_plcs} "
        f"PLCs, {venv.n_actions} defender actions, horizon "
        f"{venv.config.tmax}h, {venv.num_envs} lanes\n"
    )

    policies = [NoopPolicy(), PlaybookPolicy(), SemiRandomPolicy(seed=args.seed)]
    results = {}
    for policy in policies:
        aggregate, episodes = evaluate_policy_vec(
            venv, policy, args.episodes, seed=args.seed
        )
        results[policy.name] = aggregate
        last = episodes[-1]
        print(
            f"{policy.name}: last episode ended with "
            f"{last.final_plcs_offline} PLCs offline after {last.steps}h"
        )

    print()
    print(format_aggregate_table(results, title="Quickstart results"))
    print(
        "\nAn undefended network loses PLCs; automated response protects "
        "them at some IT cost."
    )


if __name__ == "__main__":
    main()
