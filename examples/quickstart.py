#!/usr/bin/env python
"""Quickstart: simulate an APT campaign and defend the network.

Builds the paper's evaluation network (25 engineering workstations,
3 servers, 5 HMIs, 50 PLCs), runs the FSM attacker against two
defenders -- nobody home vs. the automated playbook -- and prints the
paper's four evaluation metrics for each.

Run:
    python examples/quickstart.py [--episodes 3] [--tmax 2000]
"""

from __future__ import annotations

import argparse

import repro
from repro.config import paper_network
from repro.defenders import NoopPolicy, PlaybookPolicy, SemiRandomPolicy
from repro.eval import aggregate, format_aggregate_table, run_episode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=3)
    parser.add_argument("--tmax", type=int, default=2000,
                        help="episode horizon in simulated hours")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = paper_network(tmax=args.tmax)
    env = repro.make_env(config, seed=args.seed)
    print(f"network: {env.topology.n_nodes} nodes, {env.topology.n_plcs} PLCs, "
          f"{env.n_actions} defender actions, horizon {config.tmax}h\n")

    policies = [NoopPolicy(), PlaybookPolicy(), SemiRandomPolicy(seed=args.seed)]
    results = {}
    for policy in policies:
        episodes = [
            run_episode(env, policy, seed=args.seed + i)
            for i in range(args.episodes)
        ]
        results[policy.name] = aggregate(episodes)
        last = episodes[-1]
        print(f"{policy.name}: last episode ended with "
              f"{last.final_plcs_offline} PLCs offline after {last.steps}h")

    print()
    print(format_aggregate_table(results, title="Quickstart results"))
    print("\nAn undefended network loses PLCs; automated response protects "
          "them at some IT cost.")


if __name__ == "__main__":
    main()
