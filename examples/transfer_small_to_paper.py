#!/usr/bin/env python
"""Pre-train small, deploy large: cross-network policy transfer.

The attention Q-network's parameter count is independent of network
size (paper Section 4.4), so weights trained on the paper's grid-search
network (10 workstations / 3 HMIs / 30 PLCs) re-bind directly to the
full evaluation network (25 / 5 / 50) -- the pre-train/fine-tune
deployment path the paper's future work proposes.

This example runs the whole protocol with a small CPU budget: train on
the source network, evaluate zero-shot on the target, fine-tune there,
and compare against a from-scratch policy given the same target budget.

Run:
    python examples/transfer_small_to_paper.py [--pretrain 3] [--finetune 1]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

import repro
from repro.config import paper_network, small_network
from repro.dbn import fit_dbn
from repro.defenders import SemiRandomPolicy
from repro.rl import AttentionQNetwork, DQNConfig, QNetConfig
from repro.transfer import run_transfer_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pretrain", type=int, default=3, help="source-network training episodes"
    )
    parser.add_argument(
        "--finetune", type=int, default=1, help="target-network fine-tune episodes"
    )
    parser.add_argument("--eval-episodes", type=int, default=2)
    parser.add_argument("--max-steps", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    def accelerated(config):
        return config.with_apt(replace(config.apt, time_scale=4.0))

    source = accelerated(small_network(tmax=args.max_steps))
    target = accelerated(paper_network(tmax=args.max_steps))

    print(
        "Fitting a DBN on the source network (shared across networks; "
        "the tables are per-node and size-agnostic)..."
    )
    tables = fit_dbn(
        lambda: repro.make_env(source),
        lambda: SemiRandomPolicy(rate=5.0),
        episodes=4,
        seed=args.seed,
        max_steps=args.max_steps,
    )

    qnet = AttentionQNetwork(QNetConfig(), seed=args.seed)
    study = run_transfer_study(
        source_config=source,
        target_config=target,
        qnet=qnet,
        tables=tables,
        dqn_config=DQNConfig(
            warmup=128,
            batch_size=32,
            update_every=8,
            target_update=200,
            eps_decay=0.995,
            seed=args.seed,
        ),
        pretrain_episodes=args.pretrain,
        finetune_episodes=args.finetune,
        eval_episodes=args.eval_episodes,
        seed=args.seed,
        max_steps=args.max_steps,
    )

    print(
        f"\nparameters: {study.n_parameters} "
        "(identical on both networks -- the architecture contract)\n"
    )
    rows = [
        ("pre-trained, on source", study.source),
        ("zero-shot, on target", study.zero_shot),
        ("fine-tuned, on target", study.finetuned),
        ("from scratch, on target", study.scratch),
    ]
    print(
        f"{'policy':<26} {'return':>10} {'PLCs off':>9} {'IT cost':>9} "
        f"{'compromised':>12}"
    )
    for name, agg in rows:
        if agg is None:
            continue
        print(
            f"{name:<26} {agg.mean('discounted_return'):>10.1f} "
            f"{agg.mean('final_plcs_offline'):>9.2f} "
            f"{agg.mean('avg_it_cost'):>9.3f} "
            f"{agg.mean('avg_nodes_compromised'):>12.2f}"
        )
    print(
        "\nWith realistic budgets (paper: 1.25M steps) the transferred "
        "policy needs far less target experience than the scratch one; "
        "at demo budgets the table mainly shows the plumbing works."
    )


if __name__ == "__main__":
    main()
