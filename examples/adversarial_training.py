#!/usr/bin/env python
"""Adversarial attacker search: find the APT that hurts your defender.

The paper probes defender robustness with two hand-picked attacker
perturbations (Fig 6, Fig 10) and names adversarial learning as future
work. This example automates the probe: a cross-entropy search over
the bounded attacker-parameter space (thresholds, labor, stealth,
objective, vector) discovers the empirical best response to a fixed
defender, then a robustness matrix compares the defender against the
nominal, aggressive, and discovered attackers.

Run:
    python examples/adversarial_training.py [--iterations 3] [--population 8]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.adversarial import (
    AttackerParameterSpace,
    CrossEntropySearch,
    format_matrix,
    make_defender_fitness,
    robustness_matrix,
)
from repro.attacker import apt1, apt2
from repro.config import small_network
from repro.defenders import PlaybookPolicy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--population", type=int, default=8)
    parser.add_argument(
        "--episodes", type=int, default=1, help="episodes per fitness evaluation"
    )
    parser.add_argument("--max-steps", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--selfplay",
        action="store_true",
        help="also run one defender/attacker self-play "
        "round with a learned ACSO (slower)",
    )
    parser.add_argument(
        "--backend",
        default="sync",
        choices=("sync", "process", "shm", "auto"),
        help="vector-env backend for the self-play oracles",
    )
    args = parser.parse_args()

    # a faster clock makes six-month campaigns observable in short runs
    config = small_network(tmax=args.max_steps)
    config = config.with_apt(replace(config.apt, time_scale=4.0))
    defender = PlaybookPolicy()
    space = AttackerParameterSpace(base=config.apt)

    print("Searching attacker space against the playbook defender...")
    fitness = make_defender_fitness(
        config,
        defender,
        episodes=args.episodes,
        seed=args.seed,
        max_steps=args.max_steps,
    )
    nominal_utility = fitness(config.apt)
    print(f"  nominal APT1 utility: {nominal_utility:.2f}")

    search = CrossEntropySearch(
        space, fitness, population=args.population, seed=args.seed
    )
    result = search.run(iterations=args.iterations, init_mean=space.encode(config.apt))
    best = result.best_config
    print(
        f"  best-response utility: {result.best_fitness:.2f} "
        f"({result.evaluations} rollout evaluations)"
    )
    print(
        f"  discovered attacker: objective={best.objective} "
        f"vector={best.vector} lateral={best.lateral_threshold} "
        f"plc_threshold={best.plc_threshold} labor={best.labor_rate} "
        f"cleanup={best.cleanup_effectiveness:.2f}"
    )
    for i, (mean, elite, best_fit) in enumerate(result.history):
        print(
            f"  iter {i}: population mean {mean:.1f}, "
            f"elite mean {elite:.1f}, best {best_fit:.1f}"
        )

    print("\nRobustness matrix (rows: defenders, cols: attackers):")
    matrix = robustness_matrix(
        config,
        defenders={"Playbook": PlaybookPolicy()},
        attackers={
            "APT1": replace(apt1(), time_scale=4.0),
            "APT2": replace(apt2(), time_scale=4.0),
            "best-response": best,
        },
        episodes=args.episodes,
        seed=args.seed,
        max_steps=args.max_steps,
    )
    print("\ndiscounted return (higher = more robust):")
    print(format_matrix(matrix, "discounted_return"))
    print("\navg nodes compromised per hour:")
    print(format_matrix(matrix, "avg_nodes_compromised"))
    print(
        "\nThe discovered attacker should match or beat the nominal one; "
        "adding it to a training population (SelfPlayLoop) is how the "
        "defender is hardened against it."
    )

    if args.selfplay:
        run_selfplay_round(config, args)


def run_selfplay_round(config, args) -> None:
    """One double-oracle round: train a small ACSO against the attacker
    population, then expand the population with its best response."""
    import repro
    from repro.adversarial import SelfPlayConfig, SelfPlayLoop
    from repro.dbn import fit_dbn
    from repro.defenders import SemiRandomPolicy
    from repro.defenders.acso import ACSOPolicy
    from repro.rl import (
        ACSOFeaturizer,
        AttentionQNetwork,
        DQNConfig,
        DQNTrainer,
        QNetConfig,
    )

    print("\nSelf-play round (defender oracle + attacker oracle)...")
    tables = fit_dbn(
        lambda: repro.make_env(config),
        lambda: SemiRandomPolicy(rate=5.0),
        episodes=3,
        seed=args.seed,
        max_steps=args.max_steps,
    )
    env = repro.make_env(config, seed=args.seed)
    qnet = AttentionQNetwork(QNetConfig(), seed=args.seed)
    trainer = DQNTrainer(
        env,
        qnet,
        ACSOFeaturizer(env.topology, tables),
        DQNConfig(
            warmup=128,
            batch_size=32,
            update_every=8,
            target_update=200,
            eps_decay=0.995,
            seed=args.seed,
        ),
    )
    loop = SelfPlayLoop(
        config,
        trainer,
        ACSOPolicy(qnet, tables),
        selfplay=SelfPlayConfig(
            rounds=1,
            train_episodes=2,
            train_max_steps=args.max_steps,
            cem_iterations=2,
            cem_population=4,
            fitness_episodes=1,
            eval_episodes=1,
            eval_max_steps=args.max_steps,
            seed=args.seed,
            backend=args.backend,
            run_name="example",
        ),
    )
    for record in loop.run():
        print(
            f"  round {record.round_index}: population utility "
            f"{record.population_utility:.1f}, best-response utility "
            f"{record.best_response_utility:.1f}, exploitability "
            f"{record.exploitability:.1f}"
        )
        print(
            f"  emitted scenario: {record.best_response_id} "
            f"(repro.make(id) verified: "
            f"{record.verified_utility == record.best_response_utility})"
        )
    print(f"  population size after expansion: {len(loop.population)}")


if __name__ == "__main__":
    main()
