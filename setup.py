"""Packaging for the DSN 2022 attack-mitigation reproduction."""

import pathlib
import re

from setuptools import find_packages, setup

_HERE = pathlib.Path(__file__).parent
_README = _HERE / "README.md"


def _version() -> str:
    """Single-source the version from ``repro.__version__``."""
    text = (_HERE / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("no __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-inasim",
    version=_version(),
    description=(
        "Reproduction of 'Autonomous Attack Mitigation for Industrial "
        "Control Systems' (Mern et al., DSN 2022): the INASIM simulator, "
        "scenario registry, vectorized environments, and the ACSO "
        "defender stack"
    ),
    long_description=_README.read_text() if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "tests": ["pytest>=7", "pytest-cov>=4"],
        "benchmarks": ["pytest>=7", "pytest-benchmark>=4"],
        # the version CI pins for the lint gate (see ruff.toml)
        "lint": ["ruff==0.8.6"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Intended Audience :: Science/Research",
        "Topic :: Security",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
