"""Dueling network head (Wang et al. 2016), a Rainbow component.

The paper adopts three Rainbow extensions (double DQN, prioritized
replay, n-step loss). The dueling decomposition is a fourth:

    Q(s, a) = V(s) + A(s, a) - mean_a' A(s, a')

Decoupling the state value from per-action advantages helps when most
actions leave the value nearly unchanged -- exactly the ACSO regime,
where in a healthy network almost every (node, action) pair is
irrelevant and only the state value ("is an intrusion under way?")
matters. The ablation bench compares this variant against the paper's
plain head.

The implementation reuses the attention trunk of
:class:`~repro.rl.qnetwork.AttentionQNetwork`: the per-type heads now
produce advantages, and a separate value head reads the attended
no-action token (the one token that summarizes the whole network).
"""

from __future__ import annotations

import numpy as np

from repro.rl.features import GLOBAL_FEATURE_DIM
from repro.rl.qnetwork import AttentionQNetwork, QNetConfig
from repro.nn import Tensor

__all__ = ["DuelingAttentionQNetwork"]


class DuelingAttentionQNetwork(AttentionQNetwork):
    """Attention Q-network with a dueling value/advantage split."""

    def __init__(self, config: QNetConfig | None = None, seed: int = 0):
        super().__init__(config, seed)
        rng = np.random.default_rng(seed + 7919)
        head_in = self.config.d_model + GLOBAL_FEATURE_DIM
        self.value_head = self._make_head(head_in, 1, rng)

    def forward(self, node_feats, plc_feats, glob_feats) -> Tensor:
        tokens, glob, batch = self._contextualize(
            node_feats, plc_feats, glob_feats
        )
        advantages = self._head_outputs(tokens, glob, batch)
        _, _, _, noop_ctx = self._split_contexts(tokens)
        value = self.value_head(
            self._with_global(noop_ctx, glob, batch)
        ).reshape(batch, 1)
        centered = advantages - advantages.mean(axis=1, keepdims=True)
        return self._soft_clip(value + centered)
