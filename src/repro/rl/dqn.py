"""Double-DQN trainer with prioritized n-step replay (Section 4.2).

The training loss is the Huber norm of the n-step TD error (eq 5) with
double-DQN action selection (online net picks, target net evaluates),
importance-weighted by prioritized-replay probabilities. A potential-
based shaping reward (eq 6) is added during training only; rewards are
normalized by (1 - gamma) so the tanh value heads regress O(1) returns.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn import Adam, huber_loss, no_grad
from repro.rl.features import ACSOFeaturizer, FeatureSet, stack_features
from repro.rl.qnetwork import AttentionQNetwork
from repro.rl.replay import (
    NStepAssembler,
    PrioritizedReplay,
    UniformReplay,
)
from repro.rl.schedules import ExponentialDecay, LinearSchedule
from repro.rl.shaping import PotentialShaper
from repro.sim.orchestrator import DefenderAction, DEFENDER_ACTION_SPECS
from repro.sim.vec_env import BaseVectorEnv

__all__ = ["DQNConfig", "DQNTrainer", "valid_action_mask"]


def valid_action_mask(action_list: list[DefenderAction], obs) -> np.ndarray:
    """True for actions whose target is currently free (noop is always
    valid); launching an action on a busy target would be rejected by
    the orchestrator and waste the decision step."""
    mask = np.ones(len(action_list), dtype=bool)
    for i, action in enumerate(action_list):
        if action.is_noop:
            continue
        spec = DEFENDER_ACTION_SPECS[action.atype]
        if spec.targets == "node":
            mask[i] = not obs.node_busy[action.target]
        elif spec.targets == "plc":
            mask[i] = not obs.plc_busy[action.target]
    return mask


@dataclass
class DQNConfig:
    n_step: int = 8
    batch_size: int = 64
    lr: float = 1e-4
    buffer_size: int = 100_000
    per_alpha: float = 0.6
    per_beta_start: float = 0.4
    per_beta_steps: int = 100_000
    target_update: int = 1000
    update_every: int = 4
    warmup: int = 500
    eps_start: float = 1.0
    eps_end: float = 0.05
    eps_decay: float = 0.999
    #: None selects the paper's 1/(1-gamma) grid value, which puts the
    #: per-event shaping signal on the same scale as the value function
    shaping_weight: float | None = None
    shaping_a: float = 0.5
    shaping_b: float = 1.0
    grad_clip: float = 10.0
    huber_delta: float = 1.0
    normalize_rewards: bool = True
    seed: int = 0
    #: ablation switches (paper defaults: double DQN + PER, eps-greedy)
    double_dqn: bool = True
    prioritized: bool = True
    #: explore through NoisyLinear heads instead of epsilon-greedy;
    #: requires a Q-network built with ``QNetConfig(noisy_heads=True)``
    noisy: bool = False


@dataclass
class EpisodeStats:
    episode: int
    env_return: float  # discounted, unshaped (the evaluation quantity)
    shaped_return: float
    steps: int
    mean_loss: float
    epsilon: float
    plcs_offline: int


@dataclass
class _VecLane:
    """Per-lane collection state for :meth:`DQNTrainer.train_vec`."""

    episode: int
    obs: object
    features: FeatureSet
    nstep: NStepAssembler
    phi: float
    action_idx: int = 0
    env_return: float = 0.0
    shaped_return: float = 0.0
    discount: float = 1.0
    steps: int = 0
    info: dict = field(default_factory=dict)
    losses: list[float] = field(default_factory=list)

    def stats(self, epsilon: float) -> EpisodeStats:
        return EpisodeStats(
            episode=self.episode,
            env_return=self.env_return,
            shaped_return=self.shaped_return,
            steps=self.steps,
            mean_loss=float(np.mean(self.losses)) if self.losses else 0.0,
            epsilon=epsilon,
            plcs_offline=int(self.info.get("n_plcs_offline", 0)),
        )


class DQNTrainer:
    """Double-DQN trainer over one environment or a :class:`VectorEnv`.

    With a ``VectorEnv``, transitions are collected from all lanes per
    iteration and action selection runs as one batched forward pass;
    replay, schedules, and update cadence are shared across lanes
    (``total_steps`` counts environment steps, not lockstep rounds).
    """

    def __init__(
        self,
        env,
        qnet: AttentionQNetwork,
        featurizer: ACSOFeaturizer,
        config: DQNConfig | None = None,
    ):
        self.env = env
        self.vec = isinstance(env, BaseVectorEnv)
        self.qnet = qnet.bind_topology(env.topology)
        self.featurizer = featurizer
        self._featurizers: list[ACSOFeaturizer] | None = None
        self.config = config or DQNConfig()
        self.gamma = env.config.reward.gamma
        cfg = self.config

        self.target = qnet.clone(seed=cfg.seed)
        self.target.bind_topology(env.topology)
        self.target.copy_from(self.qnet)

        self.optimizer = Adam(self.qnet.parameters(), lr=cfg.lr,
                              grad_clip=cfg.grad_clip)
        replay_cls = PrioritizedReplay if cfg.prioritized else UniformReplay
        self.replay = replay_cls(cfg.buffer_size, alpha=cfg.per_alpha,
                                 seed=cfg.seed)
        self.nstep = NStepAssembler(cfg.n_step, self.gamma)
        self.eps_schedule = ExponentialDecay(cfg.eps_start, cfg.eps_end,
                                             cfg.eps_decay)
        self.beta_schedule = LinearSchedule(cfg.per_beta_start, 1.0,
                                            cfg.per_beta_steps)
        self.shaper = PotentialShaper(self.gamma, cfg.shaping_a, cfg.shaping_b)
        self.rng = np.random.default_rng(cfg.seed)
        self.total_steps = 0
        self.reward_scale = (1.0 - self.gamma) if cfg.normalize_rewards else 1.0
        self.shaping_weight = (
            cfg.shaping_weight if cfg.shaping_weight is not None
            else 1.0 / (1.0 - self.gamma)
        )
        self.history: list[EpisodeStats] = []

    # ------------------------------------------------------------------
    def set_env(self, env) -> None:
        """Rebind the trainer to another environment or vector env.

        The replay buffer, schedules, optimizer state, and step counter
        carry over — this is how curriculum-style loops (the self-play
        defender oracle rotating attacker populations between rounds)
        continue one training run across environments. The new env must
        share the current action space (the Q-network binding is
        per-topology) and discount (the n-step assemblers and shaper
        bake it in).
        """
        n_actions = len(self.qnet.action_list)
        if env.n_actions != n_actions:
            raise ValueError(
                f"env has {env.n_actions} actions but the Q-network is bound "
                f"to {n_actions}; build envs from one topology"
            )
        if env.config.reward.gamma != self.gamma:
            raise ValueError(
                f"env gamma {env.config.reward.gamma} != trainer gamma "
                f"{self.gamma}"
            )
        self.env = env
        self.vec = isinstance(env, BaseVectorEnv)
        # lane featurizers are per-lane-count; rebuilt lazily by train_vec
        self._featurizers = None

    # ------------------------------------------------------------------
    def select_action(self, features: FeatureSet, obs, epsilon: float) -> int:
        mask = valid_action_mask(self.qnet.action_list, obs)
        if self.config.noisy:
            # parameter noise supplies the exploration; act greedily
            # under a fresh noise draw
            self.qnet.reset_noise()
        elif self.rng.random() < epsilon:
            choices = np.flatnonzero(mask)
            return int(self.rng.choice(choices))
        q = self.qnet.q_values(features)
        q = np.where(mask, q, -np.inf)
        return int(np.argmax(q))

    # ------------------------------------------------------------------
    def train(self, episodes: int, seed: int = 0, max_steps: int | None = None,
              callback: Callable | None = None) -> list[EpisodeStats]:
        if self.vec:
            return self.train_vec(episodes, seed=seed, max_steps=max_steps,
                                  callback=callback)
        for episode in range(episodes):
            stats = self.train_episode(seed + episode, episode, max_steps)
            self.history.append(stats)
            if callback is not None:
                callback(stats)
        return self.history

    def train_episode(self, seed: int, episode: int = 0,
                      max_steps: int | None = None) -> EpisodeStats:
        cfg = self.config
        obs = self.env.reset(seed=seed)
        self.featurizer.reset()
        self.nstep.reset()
        features = self.featurizer.update(obs)
        state = self.env.sim.state
        phi = self.shaper.potential(
            state.n_workstations_compromised(), state.n_servers_compromised()
        )
        env_return, shaped_return, discount_t = 0.0, 0.0, 1.0
        losses: list[float] = []
        horizon = self.env.config.tmax if max_steps is None else max_steps
        done, t = False, 0
        epsilon = self.eps_schedule(self.total_steps)
        info: dict = {}

        while not done and t < horizon:
            epsilon = self.eps_schedule(self.total_steps)
            action_idx = self.select_action(features, obs, epsilon)
            action = self.qnet.action_list[action_idx]
            obs, reward, env_done, info = self.env.step(action)
            t = info["t"]
            done = env_done or t >= horizon

            phi_next = self.shaper.potential_from_info(info)
            shaping = self.shaper.shape(phi, phi_next, done=done)
            phi = phi_next
            r_train = (reward + self.shaping_weight * shaping) * self.reward_scale

            env_return += discount_t * reward
            discount_t *= self.gamma
            shaped_return += r_train
            next_features = self.featurizer.update(obs)
            for transition in self.nstep.push(
                features, action_idx, r_train, next_features, done
            ):
                self.replay.add(transition)
            features = next_features
            self.total_steps += 1

            if (
                len(self.replay) >= max(cfg.warmup, cfg.batch_size)
                and self.total_steps % cfg.update_every == 0
            ):
                losses.append(self.update())
            if self.total_steps % cfg.target_update == 0:
                self.target.copy_from(self.qnet)

        return EpisodeStats(
            episode=episode,
            env_return=env_return,
            shaped_return=shaped_return,
            steps=t,
            mean_loss=float(np.mean(losses)) if losses else 0.0,
            epsilon=epsilon,
            plcs_offline=int(info.get("n_plcs_offline", 0)),
        )

    # ------------------------------------------------------------------
    def select_actions_vec(self, features: list[FeatureSet],
                           masks: np.ndarray, epsilon: float) -> np.ndarray:
        """Batched action selection: one forward pass for all lanes."""
        if self.config.noisy:
            self.qnet.reset_noise()
        q = self.qnet.forward(*stack_features(features)).data
        q = np.where(masks, q, -np.inf)
        greedy = q.argmax(axis=1)
        out = np.empty(len(features), dtype=np.int64)
        for i in range(len(features)):
            if not self.config.noisy and self.rng.random() < epsilon:
                out[i] = int(self.rng.choice(np.flatnonzero(masks[i])))
            else:
                out[i] = int(greedy[i])
        return out

    def train_vec(self, episodes: int, seed: int = 0,
                  max_steps: int | None = None,
                  callback: Callable | None = None) -> list[EpisodeStats]:
        """Collect transitions from all VectorEnv lanes per iteration.

        Episode ``i`` runs with seed ``seed + i``; lanes pick up the
        next pending episode as theirs finishes, so any ``episodes``
        count works with any ``num_envs``. Update losses are shared
        diagnostics: each gradient step's loss is credited to every
        episode in flight when it happened.
        """
        if not self.vec:
            raise RuntimeError("train_vec requires a VectorEnv")
        cfg = self.config
        venv: BaseVectorEnv = self.env
        n = venv.num_envs
        horizon = venv.config.tmax if max_steps is None else max_steps
        if self._featurizers is None:
            self._featurizers = [self.featurizer] + [
                copy.deepcopy(self.featurizer) for _ in range(n - 1)
            ]

        lanes: list[_VecLane | None] = [None] * n
        next_ep = 0

        def start(slot: int) -> None:
            nonlocal next_ep
            if next_ep >= episodes:
                lanes[slot] = None
                return
            ep, next_ep = next_ep, next_ep + 1
            obs = venv.reset_env(slot, seed=seed + ep)
            featurizer = self._featurizers[slot]
            featurizer.reset()
            lanes[slot] = _VecLane(
                episode=ep,
                obs=obs,
                features=featurizer.update(obs),
                nstep=NStepAssembler(cfg.n_step, self.gamma),
                phi=self.shaper.potential_from_info(venv.reset_infos[slot]),
            )

        was_auto_reset = venv.auto_reset
        venv.auto_reset = False  # episode boundaries are scheduled here
        epsilon = self.eps_schedule(self.total_steps)
        try:
            for slot in range(n):
                start(slot)
            while any(lane is not None for lane in lanes):
                epsilon = self.eps_schedule(self.total_steps)
                active = [i for i, lane in enumerate(lanes) if lane is not None]
                masks = np.stack([
                    valid_action_mask(self.qnet.action_list, lanes[i].obs)
                    for i in active
                ])
                chosen = self.select_actions_vec(
                    [lanes[i].features for i in active], masks, epsilon
                )
                actions: list = [None] * n
                for idx, i in enumerate(active):
                    lanes[i].action_idx = int(chosen[idx])
                    actions[i] = self.qnet.action_list[lanes[i].action_idx]
                step = venv.step(
                    actions, mask=[lane is not None for lane in lanes]
                )

                for i in active:
                    lane = lanes[i]
                    obs, reward = step.observations[i], float(step.rewards[i])
                    info = step.infos[i]
                    t = info["t"]
                    done = bool(step.dones[i]) or t >= horizon

                    phi_next = self.shaper.potential_from_info(info)
                    shaping = self.shaper.shape(lane.phi, phi_next, done=done)
                    lane.phi = phi_next
                    r_train = (
                        reward + self.shaping_weight * shaping
                    ) * self.reward_scale

                    lane.env_return += lane.discount * reward
                    lane.discount *= self.gamma
                    lane.shaped_return += r_train
                    next_features = self._featurizers[i].update(obs)
                    for transition in lane.nstep.push(
                        lane.features, lane.action_idx, r_train,
                        next_features, done
                    ):
                        self.replay.add(transition)
                    lane.obs, lane.features = obs, next_features
                    lane.steps = t
                    lane.info = info
                    self.total_steps += 1

                    if (
                        len(self.replay) >= max(cfg.warmup, cfg.batch_size)
                        and self.total_steps % cfg.update_every == 0
                    ):
                        loss = self.update()
                        for other in lanes:
                            if other is not None:
                                other.losses.append(loss)
                    if self.total_steps % cfg.target_update == 0:
                        self.target.copy_from(self.qnet)

                    if done:
                        stats = lane.stats(epsilon)
                        self.history.append(stats)
                        if callback is not None:
                            callback(stats)
                        start(i)
        finally:
            venv.auto_reset = was_auto_reset
        return self.history

    # ------------------------------------------------------------------
    def update(self) -> float:
        """One gradient step on a prioritized batch; returns the loss."""
        cfg = self.config
        beta = self.beta_schedule(self.total_steps)
        indices, transitions, weights = self.replay.sample(cfg.batch_size, beta)
        states = stack_features([tr.state for tr in transitions])
        next_states = stack_features([tr.next_state for tr in transitions])
        actions = np.array([tr.action for tr in transitions], np.int64)
        rewards = np.array([tr.reward for tr in transitions])
        done = np.array([tr.done for tr in transitions], float)
        discount = np.array([tr.discount for tr in transitions])

        if self.config.noisy:
            self.qnet.reset_noise()
            self.target.reset_noise()
        with no_grad():
            target_next = self.target.forward(*next_states).data
            if self.config.double_dqn:
                online_next = self.qnet.forward(*next_states).data
                best_next = online_next.argmax(axis=1)
            else:
                best_next = target_next.argmax(axis=1)
            bootstrap = target_next[np.arange(len(transitions)), best_next]
        targets = rewards + discount * (1.0 - done) * bootstrap

        self.optimizer.zero_grad()
        q = self.qnet.forward(*states)
        predicted = q.gather_rows(actions)
        loss = huber_loss(predicted, targets, delta=cfg.huber_delta,
                          weights=weights)
        loss.backward()
        self.optimizer.step()

        td_errors = predicted.data - targets
        self.replay.update_priorities(indices, td_errors)
        return loss.item()
