"""Double-DQN trainer with prioritized n-step replay (Section 4.2).

The training loss is the Huber norm of the n-step TD error (eq 5) with
double-DQN action selection (online net picks, target net evaluates),
importance-weighted by prioritized-replay probabilities. A potential-
based shaping reward (eq 6) is added during training only; rewards are
normalized by (1 - gamma) so the tanh value heads regress O(1) returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn import Adam, huber_loss, no_grad
from repro.rl.features import ACSOFeaturizer, FeatureSet, stack_features
from repro.rl.qnetwork import AttentionQNetwork
from repro.rl.replay import (
    NStepAssembler,
    PrioritizedReplay,
    Transition,
    UniformReplay,
)
from repro.rl.schedules import ExponentialDecay, LinearSchedule
from repro.rl.shaping import PotentialShaper
from repro.sim.orchestrator import DefenderAction, DEFENDER_ACTION_SPECS

__all__ = ["DQNConfig", "DQNTrainer", "valid_action_mask"]


def valid_action_mask(action_list: list[DefenderAction], obs) -> np.ndarray:
    """True for actions whose target is currently free (noop is always
    valid); launching an action on a busy target would be rejected by
    the orchestrator and waste the decision step."""
    mask = np.ones(len(action_list), dtype=bool)
    for i, action in enumerate(action_list):
        if action.is_noop:
            continue
        spec = DEFENDER_ACTION_SPECS[action.atype]
        if spec.targets == "node":
            mask[i] = not obs.node_busy[action.target]
        elif spec.targets == "plc":
            mask[i] = not obs.plc_busy[action.target]
    return mask


@dataclass
class DQNConfig:
    n_step: int = 8
    batch_size: int = 64
    lr: float = 1e-4
    buffer_size: int = 100_000
    per_alpha: float = 0.6
    per_beta_start: float = 0.4
    per_beta_steps: int = 100_000
    target_update: int = 1000
    update_every: int = 4
    warmup: int = 500
    eps_start: float = 1.0
    eps_end: float = 0.05
    eps_decay: float = 0.999
    #: None selects the paper's 1/(1-gamma) grid value, which puts the
    #: per-event shaping signal on the same scale as the value function
    shaping_weight: float | None = None
    shaping_a: float = 0.5
    shaping_b: float = 1.0
    grad_clip: float = 10.0
    huber_delta: float = 1.0
    normalize_rewards: bool = True
    seed: int = 0
    #: ablation switches (paper defaults: double DQN + PER, eps-greedy)
    double_dqn: bool = True
    prioritized: bool = True
    #: explore through NoisyLinear heads instead of epsilon-greedy;
    #: requires a Q-network built with ``QNetConfig(noisy_heads=True)``
    noisy: bool = False


@dataclass
class EpisodeStats:
    episode: int
    env_return: float  # discounted, unshaped (the evaluation quantity)
    shaped_return: float
    steps: int
    mean_loss: float
    epsilon: float
    plcs_offline: int


class DQNTrainer:
    def __init__(
        self,
        env,
        qnet: AttentionQNetwork,
        featurizer: ACSOFeaturizer,
        config: DQNConfig | None = None,
    ):
        self.env = env
        self.qnet = qnet.bind_topology(env.topology)
        self.featurizer = featurizer
        self.config = config or DQNConfig()
        self.gamma = env.config.reward.gamma
        cfg = self.config

        self.target = qnet.clone(seed=cfg.seed)
        self.target.bind_topology(env.topology)
        self.target.copy_from(self.qnet)

        self.optimizer = Adam(self.qnet.parameters(), lr=cfg.lr,
                              grad_clip=cfg.grad_clip)
        replay_cls = PrioritizedReplay if cfg.prioritized else UniformReplay
        self.replay = replay_cls(cfg.buffer_size, alpha=cfg.per_alpha,
                                 seed=cfg.seed)
        self.nstep = NStepAssembler(cfg.n_step, self.gamma)
        self.eps_schedule = ExponentialDecay(cfg.eps_start, cfg.eps_end,
                                             cfg.eps_decay)
        self.beta_schedule = LinearSchedule(cfg.per_beta_start, 1.0,
                                            cfg.per_beta_steps)
        self.shaper = PotentialShaper(self.gamma, cfg.shaping_a, cfg.shaping_b)
        self.rng = np.random.default_rng(cfg.seed)
        self.total_steps = 0
        self.reward_scale = (1.0 - self.gamma) if cfg.normalize_rewards else 1.0
        self.shaping_weight = (
            cfg.shaping_weight if cfg.shaping_weight is not None
            else 1.0 / (1.0 - self.gamma)
        )
        self.history: list[EpisodeStats] = []

    # ------------------------------------------------------------------
    def select_action(self, features: FeatureSet, obs, epsilon: float) -> int:
        mask = valid_action_mask(self.qnet.action_list, obs)
        if self.config.noisy:
            # parameter noise supplies the exploration; act greedily
            # under a fresh noise draw
            self.qnet.reset_noise()
        elif self.rng.random() < epsilon:
            choices = np.flatnonzero(mask)
            return int(self.rng.choice(choices))
        q = self.qnet.q_values(features)
        q = np.where(mask, q, -np.inf)
        return int(np.argmax(q))

    # ------------------------------------------------------------------
    def train(self, episodes: int, seed: int = 0, max_steps: int | None = None,
              callback: Callable | None = None) -> list[EpisodeStats]:
        for episode in range(episodes):
            stats = self.train_episode(seed + episode, episode, max_steps)
            self.history.append(stats)
            if callback is not None:
                callback(stats)
        return self.history

    def train_episode(self, seed: int, episode: int = 0,
                      max_steps: int | None = None) -> EpisodeStats:
        cfg = self.config
        obs = self.env.reset(seed=seed)
        self.featurizer.reset()
        self.nstep.reset()
        features = self.featurizer.update(obs)
        state = self.env.sim.state
        phi = self.shaper.potential(
            state.n_workstations_compromised(), state.n_servers_compromised()
        )
        env_return, shaped_return, discount_t = 0.0, 0.0, 1.0
        losses: list[float] = []
        horizon = self.env.config.tmax if max_steps is None else max_steps
        done, t = False, 0
        epsilon = self.eps_schedule(self.total_steps)
        info: dict = {}

        while not done and t < horizon:
            epsilon = self.eps_schedule(self.total_steps)
            action_idx = self.select_action(features, obs, epsilon)
            action = self.qnet.action_list[action_idx]
            obs, reward, env_done, info = self.env.step(action)
            t = info["t"]
            done = env_done or t >= horizon

            phi_next = self.shaper.potential_from_info(info)
            shaping = self.shaper.shape(phi, phi_next, done=done)
            phi = phi_next
            r_train = (reward + self.shaping_weight * shaping) * self.reward_scale

            env_return += discount_t * reward
            discount_t *= self.gamma
            shaped_return += r_train
            next_features = self.featurizer.update(obs)
            for transition in self.nstep.push(
                features, action_idx, r_train, next_features, done
            ):
                self.replay.add(transition)
            features = next_features
            self.total_steps += 1

            if (
                len(self.replay) >= max(cfg.warmup, cfg.batch_size)
                and self.total_steps % cfg.update_every == 0
            ):
                losses.append(self.update())
            if self.total_steps % cfg.target_update == 0:
                self.target.copy_from(self.qnet)

        return EpisodeStats(
            episode=episode,
            env_return=env_return,
            shaped_return=shaped_return,
            steps=t,
            mean_loss=float(np.mean(losses)) if losses else 0.0,
            epsilon=epsilon,
            plcs_offline=int(info.get("n_plcs_offline", 0)),
        )

    # ------------------------------------------------------------------
    def update(self) -> float:
        """One gradient step on a prioritized batch; returns the loss."""
        cfg = self.config
        beta = self.beta_schedule(self.total_steps)
        indices, transitions, weights = self.replay.sample(cfg.batch_size, beta)
        states = stack_features([tr.state for tr in transitions])
        next_states = stack_features([tr.next_state for tr in transitions])
        actions = np.array([tr.action for tr in transitions], np.int64)
        rewards = np.array([tr.reward for tr in transitions])
        done = np.array([tr.done for tr in transitions], float)
        discount = np.array([tr.discount for tr in transitions])

        if self.config.noisy:
            self.qnet.reset_noise()
            self.target.reset_noise()
        with no_grad():
            target_next = self.target.forward(*next_states).data
            if self.config.double_dqn:
                online_next = self.qnet.forward(*next_states).data
                best_next = online_next.argmax(axis=1)
            else:
                best_next = target_next.argmax(axis=1)
            bootstrap = target_next[np.arange(len(transitions)), best_next]
        targets = rewards + discount * (1.0 - done) * bootstrap

        self.optimizer.zero_grad()
        q = self.qnet.forward(*states)
        predicted = q.gather_rows(actions)
        loss = huber_loss(predicted, targets, delta=cfg.huber_delta,
                          weights=weights)
        loss.backward()
        self.optimizer.step()

        td_errors = predicted.data - targets
        self.replay.update_priorities(indices, td_errors)
        return loss.item()
