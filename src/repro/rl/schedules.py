"""Exploration and importance-sampling schedules."""

from __future__ import annotations

__all__ = ["ExponentialDecay", "LinearSchedule"]


class ExponentialDecay:
    """epsilon(t) = max(end, start * decay^t); the paper's epsilon-greedy
    decay (grid values 0.999 / 0.9999 per step)."""

    def __init__(self, start: float = 1.0, end: float = 0.05,
                 decay: float = 0.999):
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.start = start
        self.end = end
        self.decay = decay

    def __call__(self, step: int) -> float:
        return max(self.end, self.start * self.decay ** step)


class LinearSchedule:
    """Linear interpolation from start to end over ``steps`` calls
    (used for the PER beta annealing)."""

    def __init__(self, start: float, end: float, steps: int):
        if steps <= 0:
            raise ValueError("steps must be positive")
        self.start = start
        self.end = end
        self.steps = steps

    def __call__(self, step: int) -> float:
        frac = min(1.0, max(0.0, step / self.steps))
        return self.start + frac * (self.end - self.start)
