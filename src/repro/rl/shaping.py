"""Potential-based shaping reward (paper eq 6, after Ng et al. 1999).

F(s, s') = gamma * Phi(s') - Phi(s) with the potential

    Phi(s) = -(A * n_workstations_compromised + B * n_servers_compromised)

so the agent is paid immediately for securing compromised nodes (and
charged when the APT spreads) without biasing the converged policy.
The paper reports that without this signal the sparse task reward is
insufficient over 5,000-step episodes.
"""

from __future__ import annotations

__all__ = ["PotentialShaper"]


class PotentialShaper:
    def __init__(self, gamma: float, a_weight: float = 1.0, b_weight: float = 2.0):
        self.gamma = gamma
        self.a_weight = a_weight
        self.b_weight = b_weight

    def potential(self, n_workstations: int, n_servers: int) -> float:
        return -(self.a_weight * n_workstations + self.b_weight * n_servers)

    def potential_from_info(self, info: dict) -> float:
        return self.potential(info["n_ws_compromised"], info["n_srv_compromised"])

    def shape(self, phi_prev: float, phi_next: float, done: bool = False) -> float:
        """gamma * Phi(s') - Phi(s); terminal potential is zero so the
        telescoped sum stays unbiased."""
        next_term = 0.0 if done else self.gamma * phi_next
        return next_term - phi_prev
