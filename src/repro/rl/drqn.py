"""Deep recurrent Q-network (DRQN) baseline and the windowed trainer
for flat-input architectures.

The paper frames ACSO as a partially observable problem and handles the
hidden state with the DBN filter. The literature's standard alternative
(Hausknecht and Stone 2015, the paper's reference [11]) is to learn the
history summary with a recurrent network over raw observations.
:class:`RecurrentQNetwork` implements that design on the same raw
per-step encoding consumed by the paper's convolutional baseline
(Table 7), so all three history mechanisms -- DBN + attention, temporal
convolution, recurrence -- can be compared under one trainer.

:class:`WindowedDQNTrainer` trains any network that maps a bounded raw
observation window to action values (the conv baseline and the DRQN).
It mirrors :class:`~repro.rl.dqn.DQNTrainer` -- same shaping, n-step
assembly, replay, and double-DQN targets -- with window arrays instead
of DBN feature sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import GRU, MLP, Adam, Module, Tensor, huber_loss, no_grad
from repro.rl.dqn import DQNConfig, EpisodeStats, valid_action_mask
from repro.rl.features import RawHistoryEncoder
from repro.rl.replay import (
    NStepAssembler,
    PrioritizedReplay,
    UniformReplay,
)
from repro.rl.schedules import ExponentialDecay, LinearSchedule
from repro.rl.shaping import PotentialShaper

__all__ = ["DRQNConfig", "RecurrentQNetwork", "WindowedDQNTrainer"]


@dataclass(frozen=True)
class DRQNConfig:
    window: int = 16
    encoder_hidden: int = 64
    gru_hidden: int = 64
    head_hidden: int = 128
    final_tanh: bool = True
    q_scale: float = 24.0


class RecurrentQNetwork(Module):
    """Per-step encoder -> GRU -> flat action-value head.

    Like the conv baseline, the output layer enumerates every action,
    so parameters grow with the protected network -- the recurrent
    architecture shares the conv baseline's scaling failure, which the
    architecture bench quantifies.
    """

    #: history array layout expected by forward(); RawHistoryEncoder
    #: produces (step_dim, window) = "fw", the GRU wants time first
    history_layout = "wf"

    def __init__(self, step_dim: int, n_actions: int,
                 config: DRQNConfig | None = None, seed: int = 0):
        self.config = config or DRQNConfig()
        cfg = self.config
        rng = np.random.default_rng(seed)
        self.encoder = MLP([step_dim, cfg.encoder_hidden, cfg.encoder_hidden],
                           rng=rng)
        self.gru = GRU(cfg.encoder_hidden, cfg.gru_hidden, rng=rng)
        self.head = MLP([cfg.gru_hidden, cfg.head_hidden, n_actions], rng=rng)
        self.step_dim = step_dim
        self.n_actions = n_actions

    def forward(self, history) -> Tensor:
        """(B, window, step_dim) -> (B, n_actions)."""
        x = history if isinstance(history, Tensor) else Tensor(history)
        if x.ndim != 3:
            raise ValueError(f"expected (B, W, F), got {x.shape}")
        encoded = self.encoder(x)
        final = self.gru(encoded)
        q = self.head(final)
        cfg = self.config
        if cfg.final_tanh:
            q = (q * (1.0 / cfg.q_scale)).tanh() * cfg.q_scale
        return q


class WindowedDQNTrainer:
    """DQN trainer over raw observation windows (conv / DRQN baselines).

    The network must expose ``n_actions``, ``forward(batch_windows)``,
    and a ``history_layout`` attribute: ``"fw"`` for (step_dim, window)
    inputs (the conv net) or ``"wf"`` for (window, step_dim) (the DRQN).
    """

    def __init__(self, env, qnet, config: DQNConfig | None = None,
                 window: int | None = None):
        self.env = env
        self.qnet = qnet
        self.config = config or DQNConfig()
        self.gamma = env.config.reward.gamma
        cfg = self.config
        layout = getattr(qnet, "history_layout", "fw")
        if layout not in ("fw", "wf"):
            raise ValueError(f"unknown history layout {layout!r}")
        self._time_first = layout == "wf"
        if window is None:
            window = getattr(getattr(qnet, "config", None), "window", 16)
        self.encoder = RawHistoryEncoder(env.topology, window=window)
        if self.encoder.step_dim != qnet.step_dim:
            raise ValueError(
                f"network step_dim {qnet.step_dim} != encoder "
                f"step_dim {self.encoder.step_dim}"
            )
        if qnet.n_actions != env.n_actions:
            raise ValueError(
                f"network n_actions {qnet.n_actions} != env {env.n_actions}"
            )

        self.target = type(qnet)(qnet.step_dim, qnet.n_actions,
                                 config=qnet.config, seed=cfg.seed)
        self.target.copy_from(qnet)
        self.optimizer = Adam(qnet.parameters(), lr=cfg.lr,
                              grad_clip=cfg.grad_clip)
        replay_cls = PrioritizedReplay if cfg.prioritized else UniformReplay
        self.replay = replay_cls(cfg.buffer_size, alpha=cfg.per_alpha,
                                 seed=cfg.seed)
        self.nstep = NStepAssembler(cfg.n_step, self.gamma)
        self.eps_schedule = ExponentialDecay(cfg.eps_start, cfg.eps_end,
                                             cfg.eps_decay)
        self.beta_schedule = LinearSchedule(cfg.per_beta_start, 1.0,
                                            cfg.per_beta_steps)
        self.shaper = PotentialShaper(self.gamma, cfg.shaping_a, cfg.shaping_b)
        self.rng = np.random.default_rng(cfg.seed)
        self.total_steps = 0
        self.reward_scale = (1.0 - self.gamma) if cfg.normalize_rewards else 1.0
        self.shaping_weight = (
            cfg.shaping_weight if cfg.shaping_weight is not None
            else 1.0 / (1.0 - self.gamma)
        )
        self.history: list[EpisodeStats] = []

    # ------------------------------------------------------------------
    def _oriented(self, window: np.ndarray) -> np.ndarray:
        """Rotate a stored (step_dim, window) array to the net layout."""
        return window.T if self._time_first else window

    def q_values(self, window: np.ndarray) -> np.ndarray:
        with no_grad():
            batch = self._oriented(window)[None, ...]
            return self.qnet.forward(batch).data[0]

    def select_action(self, window: np.ndarray, obs, epsilon: float) -> int:
        mask = valid_action_mask(self.env.action_list, obs)
        if self.rng.random() < epsilon:
            return int(self.rng.choice(np.flatnonzero(mask)))
        q = np.where(mask, self.q_values(window), -np.inf)
        return int(np.argmax(q))

    # ------------------------------------------------------------------
    def train(self, episodes: int, seed: int = 0,
              max_steps: int | None = None) -> list[EpisodeStats]:
        for episode in range(episodes):
            stats = self.train_episode(seed + episode, episode, max_steps)
            self.history.append(stats)
        return self.history

    def train_episode(self, seed: int, episode: int = 0,
                      max_steps: int | None = None) -> EpisodeStats:
        cfg = self.config
        obs = self.env.reset(seed=seed)
        self.encoder.reset()
        self.nstep.reset()
        window = self.encoder.update(obs)
        state = self.env.sim.state
        phi = self.shaper.potential(
            state.n_workstations_compromised(), state.n_servers_compromised()
        )
        env_return, shaped_return, discount_t = 0.0, 0.0, 1.0
        losses: list[float] = []
        horizon = self.env.config.tmax if max_steps is None else max_steps
        done, t = False, 0
        epsilon = self.eps_schedule(self.total_steps)
        info: dict = {}

        while not done and t < horizon:
            epsilon = self.eps_schedule(self.total_steps)
            action_idx = self.select_action(window, obs, epsilon)
            obs, reward, env_done, info = self.env.step(action_idx)
            t = info["t"]
            done = env_done or t >= horizon

            phi_next = self.shaper.potential_from_info(info)
            shaping = self.shaper.shape(phi, phi_next, done=done)
            phi = phi_next
            r_train = (reward + self.shaping_weight * shaping) * self.reward_scale

            env_return += discount_t * reward
            discount_t *= self.gamma
            shaped_return += r_train
            next_window = self.encoder.update(obs)
            for transition in self.nstep.push(
                window, action_idx, r_train, next_window, done
            ):
                self.replay.add(transition)
            window = next_window
            self.total_steps += 1

            if (
                len(self.replay) >= max(cfg.warmup, cfg.batch_size)
                and self.total_steps % cfg.update_every == 0
            ):
                losses.append(self.update())
            if self.total_steps % cfg.target_update == 0:
                self.target.copy_from(self.qnet)

        return EpisodeStats(
            episode=episode,
            env_return=env_return,
            shaped_return=shaped_return,
            steps=t,
            mean_loss=float(np.mean(losses)) if losses else 0.0,
            epsilon=epsilon,
            plcs_offline=int(info.get("n_plcs_offline", 0)),
        )

    # ------------------------------------------------------------------
    def update(self) -> float:
        cfg = self.config
        beta = self.beta_schedule(self.total_steps)
        indices, transitions, weights = self.replay.sample(cfg.batch_size, beta)
        states = np.stack([self._oriented(tr.state) for tr in transitions])
        next_states = np.stack(
            [self._oriented(tr.next_state) for tr in transitions]
        )
        actions = np.array([tr.action for tr in transitions], np.int64)
        rewards = np.array([tr.reward for tr in transitions])
        done = np.array([tr.done for tr in transitions], float)
        discount = np.array([tr.discount for tr in transitions])

        with no_grad():
            target_next = self.target.forward(next_states).data
            if cfg.double_dqn:
                best_next = self.qnet.forward(next_states).data.argmax(axis=1)
            else:
                best_next = target_next.argmax(axis=1)
            bootstrap = target_next[np.arange(len(transitions)), best_next]
        targets = rewards + discount * (1.0 - done) * bootstrap

        self.optimizer.zero_grad()
        q = self.qnet.forward(states)
        predicted = q.gather_rows(actions)
        loss = huber_loss(predicted, targets, delta=cfg.huber_delta,
                          weights=weights)
        loss.backward()
        self.optimizer.step()

        self.replay.update_priorities(indices, predicted.data - targets)
        return loss.item()
