"""Large-margin pretraining from expert demonstrations.

The paper's appendix reports pretraining with a target margin
delta = 0.05 and margin weighting lambda = 0.1 (selected by coordinate
ascent). Following DQfD, the pretraining loss combines a value-
regression term with a large-margin classification term that pushes the
greedy policy toward the demonstrated actions:

    L = huber(Q(s, aE) - G(s)) + lambda_margin * [max_a(Q(s,a) + m(a,aE)) - Q(s,aE)]

where G(s) is the demonstration's Monte-Carlo return-to-go. Using the
observed return instead of a bootstrapped target anchors the value
scale: with a bootstrap, the margin term and the max operator chase
each other upward until the tanh value heads saturate.

Demonstrations come from the DBN expert restricted to one action per
step, so they live in the same single-action decision space as the DQN
policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Adam, huber_loss, margin_loss
from repro.rl.dqn import DQNConfig
from repro.rl.features import ACSOFeaturizer, stack_features
from repro.rl.qnetwork import AttentionQNetwork
from repro.rl.replay import Transition
from repro.rl.shaping import PotentialShaper

__all__ = ["collect_demonstrations", "pretrain", "PretrainConfig"]


@dataclass
class PretrainConfig:
    iterations: int = 500
    batch_size: int = 64
    lr: float = 1e-3
    margin: float = 0.05  # paper's target margin delta
    margin_weight: float = 0.1  # paper's margin weighting lambda
    grad_clip: float = 10.0
    seed: int = 0


def collect_demonstrations(
    env,
    expert,
    featurizer: ACSOFeaturizer,
    qnet: AttentionQNetwork,
    episodes: int = 3,
    seed: int = 0,
    max_steps: int | None = None,
    dqn_config: DQNConfig | None = None,
) -> list[Transition]:
    """Run the (single-action) expert and record 1-step transitions.

    Rewards are shaped and normalized exactly as in the DQN trainer, and
    each transition carries its Monte-Carlo return-to-go, so pretraining
    and fine-tuning regress the same value scale.
    """
    cfg = dqn_config or DQNConfig()
    gamma = env.config.reward.gamma
    shaper = PotentialShaper(gamma, cfg.shaping_a, cfg.shaping_b)
    scale = (1.0 - gamma) if cfg.normalize_rewards else 1.0
    shaping_weight = (
        cfg.shaping_weight if cfg.shaping_weight is not None
        else 1.0 / (1.0 - gamma)
    )
    qnet.bind_topology(env.topology)
    action_index = {a: i for i, a in enumerate(qnet.action_list)}
    noop_idx = 0
    demos: list[Transition] = []

    for episode in range(episodes):
        obs = env.reset(seed=seed + episode)
        expert.reset(env)
        featurizer.reset()
        features = featurizer.update(obs)
        state = env.sim.state
        phi = shaper.potential(
            state.n_workstations_compromised(), state.n_servers_compromised()
        )
        horizon = env.config.tmax if max_steps is None else max_steps
        done, t = False, 0
        episode_transitions: list[Transition] = []
        while not done and t < horizon:
            actions = expert.act(obs)
            action = actions[0] if actions else None
            action_idx = action_index.get(action, noop_idx)
            obs, reward, env_done, info = env.step(actions[:1])
            t = info["t"]
            done = env_done or t >= horizon
            phi_next = shaper.potential_from_info(info)
            r = (reward + shaping_weight * shaper.shape(phi, phi_next, done)) * scale
            phi = phi_next
            next_features = featurizer.update(obs)
            episode_transitions.append(
                Transition(features, action_idx, r, next_features, done,
                           gamma, expert=True)
            )
            features = next_features

        # annotate Monte-Carlo return-to-go for value anchoring
        g = 0.0
        with_returns: list[Transition] = []
        for tr in reversed(episode_transitions):
            g = tr.reward + gamma * g
            with_returns.append(
                Transition(tr.state, tr.action, tr.reward, tr.next_state,
                           tr.done, tr.discount, expert=True, mc_return=g)
            )
        demos.extend(reversed(with_returns))
    return demos


def pretrain(
    qnet: AttentionQNetwork,
    demos: list[Transition],
    config: PretrainConfig | None = None,
) -> list[float]:
    """Optimize the value-regression + margin loss over demo batches."""
    cfg = config or PretrainConfig()
    if not demos:
        raise ValueError("no demonstrations provided")
    if any(d.mc_return is None for d in demos):
        raise ValueError("demonstrations must carry mc_return annotations")
    rng = np.random.default_rng(cfg.seed)
    optimizer = Adam(qnet.parameters(), lr=cfg.lr, grad_clip=cfg.grad_clip)
    losses: list[float] = []

    for _ in range(cfg.iterations):
        batch_idx = rng.integers(len(demos), size=min(cfg.batch_size, len(demos)))
        batch = [demos[int(i)] for i in batch_idx]
        states = stack_features([tr.state for tr in batch])
        actions = np.array([tr.action for tr in batch], np.int64)
        returns = np.array([tr.mc_return for tr in batch])

        optimizer.zero_grad()
        q = qnet.forward(*states)
        value = huber_loss(q.gather_rows(actions), returns)
        supervised = margin_loss(q, actions, margin=cfg.margin)
        loss = value + supervised * cfg.margin_weight
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses
