"""Q-networks: the attention architecture of Fig 5 and the
convolutional baseline of Table 7.

The attention network embeds every computing node, every PLC, and one
learned "no-action" seed token into a shared latent space, runs global
self-attention so each token sees the rest of the network, appends the
global PLC summary, and decodes per-type action values through shared
heads. All sub-graphs of a node type share parameters, so the
parameter count does not grow with the number of nodes -- the paper's
central scaling argument.

The convolutional baseline flattens the whole network into one vector
per time step and strides over the history window; its output layer is
one unit per action, so its size grows linearly with the network (329
outputs on the paper topology).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.topology import Topology
from repro.nn import (
    AttentionBlock,
    Conv1d,
    MLP,
    Module,
    Parameter,
    Tensor,
    concat,
)
from repro.rl.features import (
    GLOBAL_FEATURE_DIM,
    NODE_FEATURE_DIM,
    PLC_FEATURE_DIM,
    FeatureSet,
    stack_features,
)
from repro.sim.orchestrator import (
    HOST_ACTIONS,
    PLC_ACTIONS,
    SERVER_ACTIONS,
    DefenderAction,
    DefenderActionType,
)

__all__ = ["QNetConfig", "AttentionQNetwork", "ConvQNetwork"]


@dataclass(frozen=True)
class QNetConfig:
    d_model: int = 32
    n_heads: int = 2
    n_attention_layers: int = 1
    encoder_hidden: int = 64
    encoder_layers: int = 2
    head_hidden: int = 64
    final_tanh: bool = True
    #: value range of the tanh head in normalized-return units; the
    #: trainer scales rewards by (1 - gamma) so task returns are O(1),
    #: but shaped returns can reach +/- (A*nW + B*nS) on a fully
    #: compromised network -- the scale must cover that envelope
    q_scale: float = 24.0
    #: replace the output heads with NoisyLinear stacks (Rainbow's
    #: learned-exploration component; see benchmarks/bench_rl_ablation)
    noisy_heads: bool = False
    #: sigma0 initialization for noisy heads
    noisy_sigma0: float = 0.5

    @staticmethod
    def paper() -> "QNetConfig":
        """Exact Table 6 widths (4-layer encoders, 128-wide attention)."""
        return QNetConfig(
            d_model=32,
            n_heads=2,
            n_attention_layers=2,
            encoder_hidden=64,
            encoder_layers=4,
            head_hidden=128,
        )


def _encoder_dims(in_dim: int, hidden: int, out: int, layers: int) -> list[int]:
    return [in_dim] + [hidden] * max(0, layers - 1) + [out]


class AttentionQNetwork(Module):
    """Size-agnostic Q-network; bind a topology before use."""

    def __init__(self, config: QNetConfig | None = None, seed: int = 0):
        self.config = config or QNetConfig()
        rng = np.random.default_rng(seed)
        cfg = self.config
        self.node_encoder = MLP(
            _encoder_dims(NODE_FEATURE_DIM, cfg.encoder_hidden, cfg.d_model,
                          cfg.encoder_layers),
            rng=rng,
        )
        self.plc_encoder = MLP(
            _encoder_dims(PLC_FEATURE_DIM, cfg.encoder_hidden, cfg.d_model,
                          max(2, cfg.encoder_layers - 1)),
            rng=rng,
        )
        self.noop_seed = Parameter(rng.normal(scale=0.1, size=cfg.d_model))
        self.blocks = [
            AttentionBlock(cfg.d_model, cfg.n_heads, ff_hidden=2 * cfg.d_model,
                           rng=rng)
            for _ in range(cfg.n_attention_layers)
        ]
        head_in = cfg.d_model + GLOBAL_FEATURE_DIM
        self.host_head = self._make_head(head_in, len(HOST_ACTIONS), rng)
        self.server_head = self._make_head(head_in, len(SERVER_ACTIONS), rng)
        self.plc_head = self._make_head(head_in, len(PLC_ACTIONS), rng)
        self.noop_head = self._make_head(head_in, 1, rng)
        # topology binding (not parameters; re-computed per network size)
        self._host_ids: np.ndarray = np.zeros(0, np.int64)
        self._server_ids: np.ndarray = np.zeros(0, np.int64)
        self._n_nodes = 0
        self._n_plcs = 0
        self.action_list: list[DefenderAction] = []

    # ------------------------------------------------------------------
    def bind_topology(self, topology: Topology) -> "AttentionQNetwork":
        """Attach a network topology; parameters are unchanged.

        The same trained weights can therefore be evaluated on networks
        of different size (Section 4.4).
        """
        self._host_ids = np.array(
            [n.node_id for n in topology.nodes if not n.is_server], np.int64
        )
        self._server_ids = np.array(
            [n.node_id for n in topology.nodes if n.is_server], np.int64
        )
        self._n_nodes = topology.n_nodes
        self._n_plcs = topology.n_plcs
        actions: list[DefenderAction] = [DefenderAction(DefenderActionType.NOOP)]
        for node_id in self._host_ids:
            actions.extend(DefenderAction(a, int(node_id)) for a in HOST_ACTIONS)
        for node_id in self._server_ids:
            actions.extend(DefenderAction(a, int(node_id)) for a in SERVER_ACTIONS)
        for plc_id in range(self._n_plcs):
            actions.extend(DefenderAction(a, plc_id) for a in PLC_ACTIONS)
        self.action_list = actions
        return self

    @property
    def n_actions(self) -> int:
        return len(self.action_list)

    def clone(self, seed: int = 0) -> "AttentionQNetwork":
        """Fresh network of the same class and config (target nets)."""
        return type(self)(self.config, seed=seed)

    # ------------------------------------------------------------------
    def _make_head(self, head_in: int, out_dim: int, rng) -> Module:
        """Build one per-type output head (plain or noisy MLP)."""
        cfg = self.config
        dims = [head_in, cfg.head_hidden, out_dim]
        if cfg.noisy_heads:
            from repro.nn import NoisyMLP

            return NoisyMLP(dims, sigma0=cfg.noisy_sigma0, rng=rng)
        return MLP(dims, rng=rng)

    def _contextualize(self, node_feats, plc_feats, glob_feats):
        """Encoders + attention; returns (tokens, glob tensor, batch).

        Shared by this class and the dueling / distributional variants.
        """
        if self._n_nodes == 0:
            raise RuntimeError("bind_topology() must be called before forward()")
        node_feats = node_feats if isinstance(node_feats, Tensor) else Tensor(node_feats)
        plc_feats = plc_feats if isinstance(plc_feats, Tensor) else Tensor(plc_feats)
        glob_feats = glob_feats if isinstance(glob_feats, Tensor) else Tensor(glob_feats)
        batch = node_feats.shape[0]
        cfg = self.config

        node_tokens = self.node_encoder(node_feats)
        plc_tokens = self.plc_encoder(plc_feats)
        ones = Tensor(np.ones((batch, 1, 1)))
        noop_token = ones * self.noop_seed.reshape(1, 1, cfg.d_model)
        tokens = concat([node_tokens, plc_tokens, noop_token], axis=1)
        for block in self.blocks:
            tokens = block(tokens)
        return tokens, glob_feats, batch

    def _with_global(self, ctx: Tensor, glob_feats: Tensor, batch: int) -> Tensor:
        tiles = Tensor(np.ones((batch, ctx.shape[1], 1)))
        g = tiles * glob_feats.reshape(batch, 1, GLOBAL_FEATURE_DIM)
        return concat([ctx, g], axis=-1)

    def _split_contexts(self, tokens: Tensor):
        """(host, server-or-None, plc, noop) context token groups."""
        host_ctx = tokens[:, self._host_ids, :]
        server_ctx = (
            tokens[:, self._server_ids, :] if len(self._server_ids) else None
        )
        plc_ctx = tokens[:, self._n_nodes:self._n_nodes + self._n_plcs, :]
        noop_ctx = tokens[:, self._n_nodes + self._n_plcs:, :]
        return host_ctx, server_ctx, plc_ctx, noop_ctx

    def _head_outputs(self, tokens, glob_feats, batch, per_action: int = 1):
        """Concatenated head outputs in action-list order.

        Returns a (B, n_actions * per_action) tensor; ``per_action`` is
        1 for scalar Q heads and n_atoms for distributional heads.
        """
        host_ctx, server_ctx, plc_ctx, noop_ctx = self._split_contexts(tokens)
        parts = [
            self.noop_head(self._with_global(noop_ctx, glob_feats, batch))
            .reshape(batch, per_action)
        ]
        host_q = self.host_head(self._with_global(host_ctx, glob_feats, batch))
        parts.append(
            host_q.reshape(batch, len(self._host_ids) * len(HOST_ACTIONS) * per_action)
        )
        if server_ctx is not None:
            server_q = self.server_head(
                self._with_global(server_ctx, glob_feats, batch)
            )
            parts.append(
                server_q.reshape(
                    batch, len(self._server_ids) * len(SERVER_ACTIONS) * per_action
                )
            )
        if self._n_plcs:
            plc_q = self.plc_head(self._with_global(plc_ctx, glob_feats, batch))
            parts.append(
                plc_q.reshape(batch, self._n_plcs * len(PLC_ACTIONS) * per_action)
            )
        return concat(parts, axis=1)

    def _soft_clip(self, q: Tensor) -> Tensor:
        """Near-identity for |q| << q_scale, bounded at +/- q_scale
        (a bare tanh would saturate at initialization)."""
        cfg = self.config
        if not cfg.final_tanh:
            return q
        return (q * (1.0 / cfg.q_scale)).tanh() * cfg.q_scale

    def forward(self, node_feats, plc_feats, glob_feats) -> Tensor:
        """(B,N,Fn), (B,M,Fp), (B,G) -> (B, n_actions) Q-values.

        Action layout: [noop, host menus (host order), server menus,
        PLC menus], matching :attr:`action_list`.
        """
        tokens, glob, batch = self._contextualize(node_feats, plc_feats, glob_feats)
        q = self._head_outputs(tokens, glob, batch)
        return self._soft_clip(q)

    def q_values(self, features: FeatureSet) -> np.ndarray:
        """Inference helper for a single step."""
        from repro.nn import no_grad

        with no_grad():
            node, plc, glob = stack_features([features])
            return self.forward(node, plc, glob).data[0]


@dataclass(frozen=True)
class ConvNetConfig:
    window: int = 64
    channels: tuple[int, ...] = (64, 64, 64)
    kernel: int = 4
    stride: int = 4
    mlp_hidden: int = 128
    final_tanh: bool = True
    q_scale: float = 4.0

    @staticmethod
    def paper() -> "ConvNetConfig":
        """Table 7: three conv layers 256/128/64, MLP 256."""
        return ConvNetConfig(window=64, channels=(256, 128, 64), mlp_hidden=256)


class ConvQNetwork(Module):
    """Baseline temporal convolution network (Table 7).

    The output layer enumerates every action, so parameters grow with
    the protected network -- the scaling failure the attention
    architecture avoids.
    """

    #: history array layout for WindowedDQNTrainer: (step_dim, window)
    history_layout = "fw"

    def __init__(self, step_dim: int, n_actions: int,
                 config: ConvNetConfig | None = None, seed: int = 0):
        self.config = config or ConvNetConfig()
        cfg = self.config
        rng = np.random.default_rng(seed)
        dims = (step_dim, *cfg.channels)
        self.convs = [
            Conv1d(dims[i], dims[i + 1], cfg.kernel, cfg.stride, rng=rng)
            for i in range(len(cfg.channels))
        ]
        remaining = cfg.window
        for _ in cfg.channels:
            remaining = (remaining - cfg.kernel) // cfg.stride + 1
        if remaining < 1:
            raise ValueError("history window too small for conv stack")
        self.flat_dim = cfg.channels[-1] * remaining
        self.mlp = MLP([self.flat_dim, cfg.mlp_hidden, n_actions], rng=rng)
        self.n_actions = n_actions
        self.step_dim = step_dim

    def forward(self, history) -> Tensor:
        """(B, step_dim, window) -> (B, n_actions)."""
        x = history if isinstance(history, Tensor) else Tensor(history)
        for conv in self.convs:
            x = conv(x).leaky_relu()
        x = x.reshape(x.shape[0], self.flat_dim)
        q = self.mlp(x)
        if self.config.final_tanh:
            q = (q * (1.0 / self.config.q_scale)).tanh() * self.config.q_scale
        return q
