"""Experience replay: prioritized sampling (sum tree) and n-step
transition assembly (Rainbow components used by the paper: prioritized
experience replay and n-step TD loss, Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "SumTree",
    "PrioritizedReplay",
    "UniformReplay",
    "Transition",
    "NStepAssembler",
]


class SumTree:
    """Array-backed binary tree holding priorities; O(log n) ops."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.tree = np.zeros(2 * capacity)
        self.size = 0

    @property
    def total(self) -> float:
        return float(self.tree[1])

    def set(self, index: int, priority: float) -> None:
        if priority < 0:
            raise ValueError("priority must be non-negative")
        i = index + self.capacity
        # write the leaf exactly, then recompute each ancestor as the
        # sum of its children: propagating the delta instead leaves
        # floating-point residue in internal nodes after overwrites
        # (e.g. a tree of all-zero leaves with total ~1e-14), which
        # lets find() land on a zero-mass leaf
        self.tree[i] = priority
        i //= 2
        while i >= 1:
            self.tree[i] = self.tree[2 * i] + self.tree[2 * i + 1]
            i //= 2

    def get(self, index: int) -> float:
        return float(self.tree[index + self.capacity])

    def find(self, value: float) -> int:
        """Index of the leaf where the prefix sum crosses ``value``.

        The comparison is strict so zero-mass left subtrees are skipped
        (value 0.0 must land on the first leaf with positive mass).
        """
        i = 1
        while i < self.capacity:
            left = 2 * i
            if value < self.tree[left]:
                i = left
            else:
                value -= self.tree[left]
                i = left + 1
        return i - self.capacity


@dataclass(frozen=True)
class Transition:
    """An (n-step) transition over featurized states."""

    state: Any  # FeatureSet (or raw history for the conv baseline)
    action: int
    reward: float  # already n-step-discounted, shaped, normalized
    next_state: Any
    done: bool
    discount: float  # gamma ** n for bootstrapping
    expert: bool = False  # demonstration flag (DQfD-style pretraining)
    #: Monte-Carlo return-to-go (demonstrations only); anchors the
    #: pretraining value scale without a bootstrap runaway
    mc_return: float | None = None


class PrioritizedReplay:
    """Proportional prioritized replay (Schaul et al. 2016)."""

    def __init__(self, capacity: int, alpha: float = 0.6,
                 eps: float = 1e-3, seed: int = 0):
        self.capacity = capacity
        self.alpha = alpha
        self.eps = eps
        self.rng = np.random.default_rng(seed)
        self.tree = SumTree(capacity)
        self._data: list[Transition | None] = [None] * capacity
        self._next = 0
        self._size = 0
        self._max_priority = 1.0

    def __len__(self) -> int:
        return self._size

    def add(self, transition: Transition, priority: float | None = None) -> int:
        index = self._next
        self._data[index] = transition
        p = self._max_priority if priority is None else priority
        self.tree.set(index, (p + self.eps) ** self.alpha)
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)
        return index

    def sample(self, batch_size: int, beta: float = 0.4):
        """Returns (indices, transitions, importance weights)."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        total = self.tree.total
        segment = total / batch_size
        offsets = self.rng.random(batch_size) * segment
        values = offsets + np.arange(batch_size) * segment
        indices = np.array([self.tree.find(v) for v in values], np.int64)
        indices = np.clip(indices, 0, self._size - 1)
        priorities = np.array([self.tree.get(int(i)) for i in indices])
        probs = priorities / total
        weights = (self._size * probs) ** (-beta)
        weights = weights / weights.max()
        transitions = [self._data[int(i)] for i in indices]
        return indices, transitions, weights

    def update_priorities(self, indices, td_errors) -> None:
        for index, err in zip(indices, np.abs(np.asarray(td_errors, float))):
            self._max_priority = max(self._max_priority, float(err))
            self.tree.set(int(index), (float(err) + self.eps) ** self.alpha)


class UniformReplay:
    """Uniform-sampling replay with the prioritized-replay interface.

    ``sample`` returns unit importance weights and ``update_priorities``
    is a no-op, so the trainer code is identical for both buffers --
    the PER-vs-uniform ablation flips one config flag.
    """

    def __init__(self, capacity: int, seed: int = 0, **_ignored):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.rng = np.random.default_rng(seed)
        self._data: list[Transition | None] = [None] * capacity
        self._next = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, transition: Transition, priority: float | None = None) -> int:
        index = self._next
        self._data[index] = transition
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)
        return index

    def sample(self, batch_size: int, beta: float = 0.4):
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        indices = self.rng.integers(self._size, size=batch_size)
        transitions = [self._data[int(i)] for i in indices]
        return indices, transitions, np.ones(batch_size)

    def update_priorities(self, indices, td_errors) -> None:
        return None


class NStepAssembler:
    """Builds n-step transitions from a stream of 1-step experiences."""

    def __init__(self, n: int, gamma: float):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.gamma = gamma
        self._pending: list[tuple[Any, int, float]] = []

    def push(self, state, action: int, reward: float,
             next_state, done: bool) -> list[Transition]:
        """Feed one experience; returns any matured n-step transitions."""
        self._pending.append((state, action, reward))
        out: list[Transition] = []
        if done:
            # flush everything with progressively shorter horizons
            while self._pending:
                out.append(self._assemble(next_state, True))
                self._pending.pop(0)
            return out
        if len(self._pending) == self.n:
            out.append(self._assemble(next_state, False))
            self._pending.pop(0)
        return out

    def _assemble(self, bootstrap_state, done: bool) -> Transition:
        state, action, _ = self._pending[0]
        reward = 0.0
        for k, (_, _, r) in enumerate(self._pending):
            reward += (self.gamma ** k) * r
        return Transition(
            state=state,
            action=action,
            reward=reward,
            next_state=bootstrap_state,
            done=done,
            discount=self.gamma ** len(self._pending),
        )

    def reset(self) -> None:
        self._pending.clear()
