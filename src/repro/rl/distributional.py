"""Distributional (C51) value learning (Bellemare et al. 2017), the
remaining Rainbow component not used by the paper.

Instead of the expected return, the network predicts a categorical
distribution over returns on a fixed support of atoms. Training
minimizes the cross-entropy between the predicted distribution of the
taken action and the Bellman-projected target distribution. Acting is
unchanged: greedy over the distribution means, so
:class:`DistributionalAttentionQNetwork` is a drop-in for the plain
network everywhere a policy is needed.

The support must cover the normalized shaped-return envelope (the
trainer scales rewards by ``1 - gamma``; shaping adds up to about
+/- (A*nW + B*nS) on a fully compromised network), mirroring the
``q_scale`` choice of the scalar networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import Tensor, categorical_cross_entropy, no_grad
from repro.rl.dqn import DQNTrainer
from repro.rl.features import stack_features
from repro.rl.qnetwork import AttentionQNetwork, QNetConfig

__all__ = [
    "C51Config",
    "C51Trainer",
    "DistributionalAttentionQNetwork",
    "project_distribution",
]


@dataclass(frozen=True)
class C51Config:
    """Support of the categorical return distribution."""

    n_atoms: int = 51
    v_min: float = -24.0
    v_max: float = 24.0

    def __post_init__(self) -> None:
        if self.n_atoms < 2:
            raise ValueError("n_atoms must be >= 2")
        if not self.v_min < self.v_max:
            raise ValueError("v_min must be < v_max")

    @property
    def support(self) -> np.ndarray:
        return np.linspace(self.v_min, self.v_max, self.n_atoms)

    @property
    def delta_z(self) -> float:
        return (self.v_max - self.v_min) / (self.n_atoms - 1)


def project_distribution(
    next_probs: np.ndarray,
    rewards: np.ndarray,
    discounts: np.ndarray,
    c51: C51Config,
) -> np.ndarray:
    """Categorical projection of the Bellman-updated distribution.

    Parameters
    ----------
    next_probs : (B, Z)
        Atom probabilities of the bootstrap action at the next state.
    rewards : (B,)
        n-step discounted rewards.
    discounts : (B,)
        Bootstrap discount gamma^n, already zeroed for terminal
        transitions (so terminal targets collapse onto clip(r)).

    Returns the (B, Z) projected target distribution: each updated atom
    Tz = r + discount * z is clipped to the support and its mass split
    between the two neighbouring atoms in proportion to proximity.
    """
    support = c51.support
    batch, n_atoms = next_probs.shape
    if n_atoms != c51.n_atoms:
        raise ValueError(f"expected {c51.n_atoms} atoms, got {n_atoms}")
    tz = rewards[:, None] + discounts[:, None] * support[None, :]
    tz = np.clip(tz, c51.v_min, c51.v_max)
    b = (tz - c51.v_min) / c51.delta_z
    lower = np.floor(b).astype(np.int64)
    upper = np.ceil(b).astype(np.int64)
    # when b is integral, l == u and both proximity weights are zero;
    # widen one side at a time (the second test sees the updated l, so
    # exactly one neighbour receives the full mass)
    lower[(upper > 0) & (lower == upper)] -= 1
    upper[(lower == upper) & (lower < n_atoms - 1)] += 1

    target = np.zeros_like(next_probs)
    rows = np.repeat(np.arange(batch), n_atoms)
    np.add.at(
        target, (rows, lower.ravel()),
        (next_probs * (upper - b)).ravel(),
    )
    np.add.at(
        target, (rows, upper.ravel()),
        (next_probs * (b - lower)).ravel(),
    )
    # normalize away accumulated floating error
    return target / target.sum(axis=1, keepdims=True)


class DistributionalAttentionQNetwork(AttentionQNetwork):
    """Attention trunk with per-action categorical return heads."""

    def __init__(self, config: QNetConfig | None = None, seed: int = 0,
                 c51: C51Config | None = None):
        self.c51 = c51 or C51Config()
        super().__init__(config, seed)

    def clone(self, seed: int = 0) -> "DistributionalAttentionQNetwork":
        return type(self)(self.config, seed=seed, c51=self.c51)

    def _make_head(self, head_in: int, out_dim: int, rng):
        # each action gets n_atoms logits instead of one scalar
        return super()._make_head(head_in, out_dim * self.c51.n_atoms, rng)

    # ------------------------------------------------------------------
    def log_probs(self, node_feats, plc_feats, glob_feats) -> Tensor:
        """(B, n_actions, n_atoms) per-atom log-probabilities."""
        tokens, glob, batch = self._contextualize(
            node_feats, plc_feats, glob_feats
        )
        flat = self._head_outputs(
            tokens, glob, batch, per_action=self.c51.n_atoms
        )
        logits = flat.reshape(batch, self.n_actions, self.c51.n_atoms)
        return logits.log_softmax(axis=-1)

    def probs(self, node_feats, plc_feats, glob_feats) -> np.ndarray:
        """Inference-only atom probabilities."""
        from repro.nn import no_grad

        with no_grad():
            return np.exp(self.log_probs(node_feats, plc_feats, glob_feats).data)

    def forward(self, node_feats, plc_feats, glob_feats) -> Tensor:
        """Expected Q-values (B, n_actions): distribution mean per action.

        Keeping ``forward`` scalar-valued makes this network a drop-in
        policy for every consumer of the plain Q-network (greedy
        argmax, action masking, evaluation).
        """
        log_p = self.log_probs(node_feats, plc_feats, glob_feats)
        support = Tensor(self.c51.support.reshape(1, 1, self.c51.n_atoms))
        return (log_p.exp() * support).sum(axis=-1)


class C51Trainer(DQNTrainer):
    """Distributional variant of the DQN trainer.

    Replaces the Huber TD update with the categorical projection +
    cross-entropy loss. Priorities are the per-sample cross-entropy,
    the distributional analogue of |TD error|. Everything else
    (exploration, n-step assembly, shaping, replay) is inherited.
    """

    def __init__(self, env, qnet, featurizer, config=None):
        if not isinstance(qnet, DistributionalAttentionQNetwork):
            raise TypeError(
                "C51Trainer requires a DistributionalAttentionQNetwork"
            )
        super().__init__(env, qnet, featurizer, config)

    def update(self) -> float:
        cfg = self.config
        c51 = self.qnet.c51
        beta = self.beta_schedule(self.total_steps)
        indices, transitions, weights = self.replay.sample(cfg.batch_size, beta)
        states = stack_features([tr.state for tr in transitions])
        next_states = stack_features([tr.next_state for tr in transitions])
        actions = np.array([tr.action for tr in transitions], np.int64)
        rewards = np.array([tr.reward for tr in transitions])
        done = np.array([tr.done for tr in transitions], float)
        discount = np.array([tr.discount for tr in transitions])
        batch = len(transitions)

        with no_grad():
            target_probs_all = np.exp(self.target.log_probs(*next_states).data)
            if cfg.double_dqn:
                next_q = self.qnet.forward(*next_states).data
            else:
                next_q = (target_probs_all * c51.support).sum(axis=-1)
            best_next = next_q.argmax(axis=1)
        next_probs = target_probs_all[np.arange(batch), best_next]
        target_dist = project_distribution(
            next_probs, rewards, discount * (1.0 - done), c51
        )

        self.optimizer.zero_grad()
        log_p = self.qnet.log_probs(*states)
        chosen = log_p[np.arange(batch), actions]
        loss = categorical_cross_entropy(chosen, target_dist, weights=weights)
        loss.backward()
        self.optimizer.step()

        per_row = -(target_dist * chosen.data).sum(axis=-1)
        self.replay.update_priorities(indices, per_row)
        return loss.item()
