"""Feature extraction for the Q-networks.

The attention network consumes the DBN belief of every computing node
plus static identity features, per-PLC status tokens, and a small
global summary vector (the paper concatenates the PLC state vector with
the contextualized node vectors -- Fig 5).

The convolutional baseline consumes a raw observation history window
(paper appendix, Table 7): no DBN, just stacked per-step encodings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbn.filter import DBNFilter, DBNTables
from repro.dbn.states import N_STATES
from repro.net.nodes import NodeType, ServerRole
from repro.net.topology import Topology
from repro.sim.observations import Observation

__all__ = ["FeatureSet", "ACSOFeaturizer", "RawHistoryEncoder", "stack_features"]

_NODE_TYPES = (NodeType.WORKSTATION, NodeType.SERVER, NodeType.HMI)
_ROLES = (
    ServerRole.NONE,
    ServerRole.OPC,
    ServerRole.HISTORIAN,
    ServerRole.DOMAIN_CONTROLLER,
)

#: per-node feature layout: belief + type one-hot + role one-hot +
#: quarantined + busy + normalized alert severity
NODE_FEATURE_DIM = N_STATES + len(_NODE_TYPES) + len(_ROLES) + 3
PLC_FEATURE_DIM = 3  # disrupted, destroyed, busy
GLOBAL_FEATURE_DIM = 3  # frac disrupted, frac destroyed, frac believed comp.


@dataclass(frozen=True)
class FeatureSet:
    """One decision step's model input."""

    node: np.ndarray  # (N, NODE_FEATURE_DIM)
    plc: np.ndarray  # (M, PLC_FEATURE_DIM)
    glob: np.ndarray  # (GLOBAL_FEATURE_DIM,)


def stack_features(features: list[FeatureSet]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch FeatureSets into (B,N,F), (B,M,F), (B,G) arrays."""
    return (
        np.stack([f.node for f in features]),
        np.stack([f.plc for f in features]),
        np.stack([f.glob for f in features]),
    )


class ACSOFeaturizer:
    """DBN-filtered features for the attention Q-network."""

    def __init__(self, topology: Topology, tables: DBNTables):
        self.topology = topology
        self.dbn = DBNFilter(tables, topology)
        n = topology.n_nodes
        self._static = np.zeros((n, len(_NODE_TYPES) + len(_ROLES)))
        for node in topology.nodes:
            self._static[node.node_id, _NODE_TYPES.index(node.ntype)] = 1.0
            self._static[
                node.node_id, len(_NODE_TYPES) + _ROLES.index(node.role)
            ] = 1.0

    def reset(self) -> None:
        self.dbn.reset()

    def update(self, obs: Observation) -> FeatureSet:
        """Advance the DBN with ``obs`` and return model features."""
        beliefs = self.dbn.update(obs)
        n = self.topology.n_nodes
        severities = obs.alert_severity_per_node(n) / 3.0
        node = np.concatenate(
            [
                beliefs,
                self._static,
                obs.quarantined[:, None].astype(float),
                obs.node_busy[:, None].astype(float),
                severities[:, None],
            ],
            axis=1,
        )
        plc = np.stack(
            [
                obs.plc_disrupted.astype(float),
                obs.plc_destroyed.astype(float),
                obs.plc_busy.astype(float),
            ],
            axis=1,
        )
        m = max(1, self.topology.n_plcs)
        glob = np.array(
            [
                obs.plc_disrupted.sum() / m,
                obs.plc_destroyed.sum() / m,
                self.dbn.expected_compromised / max(1, n),
            ]
        )
        return FeatureSet(node=node, plc=plc, glob=glob)


class RawHistoryEncoder:
    """Sliding window of raw per-step observation encodings.

    Produces the (channels, window) input of the baseline convolutional
    network: per-node alert counts, scan results and busy flags, per-PLC
    status, and the global PLC fractions, with no belief filtering.
    """

    def __init__(self, topology: Topology, window: int = 64):
        self.topology = topology
        self.window = window
        self.step_dim = 6 * topology.n_nodes + 2 * topology.n_plcs + 2
        self._history = np.zeros((self.step_dim, window))

    def reset(self) -> None:
        self._history[:] = 0.0

    def encode_step(self, obs: Observation) -> np.ndarray:
        n = self.topology.n_nodes
        counts = obs.alert_counts_per_node(n).astype(float)  # (N, 3)
        scans = np.zeros(n)
        for result in obs.scan_results:
            scans[result.node_id] = 1.0 if result.detected else -1.0
        per_node = np.concatenate(
            [
                counts,
                scans[:, None],
                obs.node_busy[:, None].astype(float),
                obs.quarantined[:, None].astype(float),
            ],
            axis=1,
        ).ravel()
        per_plc = np.stack(
            [obs.plc_disrupted.astype(float), obs.plc_destroyed.astype(float)], axis=1
        ).ravel()
        m = max(1, self.topology.n_plcs)
        glob = np.array(
            [obs.plc_disrupted.sum() / m, obs.plc_destroyed.sum() / m]
        )
        return np.concatenate([per_node, per_plc, glob])

    def update(self, obs: Observation) -> np.ndarray:
        """Push a step and return the (step_dim, window) history."""
        self._history = np.roll(self._history, -1, axis=1)
        self._history[:, -1] = self.encode_step(obs)
        return self._history.copy()
