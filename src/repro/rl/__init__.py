"""Deep Q-learning stack for the ACSO agent (paper Section 4).

Components: prioritized n-step replay, the attention Q-network (Fig 5)
and the convolutional baseline (Table 7), potential-based reward
shaping (eq 6), the double-DQN trainer (eq 5), and large-margin
pretraining from expert demonstrations (appendix).
"""

from repro.rl.features import ACSOFeaturizer, FeatureSet, RawHistoryEncoder, stack_features
from repro.rl.qnetwork import AttentionQNetwork, ConvQNetwork, QNetConfig
from repro.rl.replay import (
    NStepAssembler,
    PrioritizedReplay,
    SumTree,
    Transition,
    UniformReplay,
)
from repro.rl.schedules import ExponentialDecay, LinearSchedule
from repro.rl.shaping import PotentialShaper
from repro.rl.dqn import DQNConfig, DQNTrainer
from repro.rl.dueling import DuelingAttentionQNetwork
from repro.rl.distributional import (
    C51Config,
    C51Trainer,
    DistributionalAttentionQNetwork,
    project_distribution,
)
from repro.rl.drqn import DRQNConfig, RecurrentQNetwork, WindowedDQNTrainer
from repro.rl.pretrain import collect_demonstrations, pretrain

__all__ = [
    "ACSOFeaturizer",
    "FeatureSet",
    "RawHistoryEncoder",
    "stack_features",
    "AttentionQNetwork",
    "ConvQNetwork",
    "QNetConfig",
    "SumTree",
    "PrioritizedReplay",
    "UniformReplay",
    "NStepAssembler",
    "Transition",
    "ExponentialDecay",
    "LinearSchedule",
    "PotentialShaper",
    "DQNConfig",
    "DQNTrainer",
    "DuelingAttentionQNetwork",
    "C51Config",
    "C51Trainer",
    "DistributionalAttentionQNetwork",
    "project_distribution",
    "DRQNConfig",
    "RecurrentQNetwork",
    "WindowedDQNTrainer",
    "collect_demonstrations",
    "pretrain",
]
