"""Scaled dot-product self-attention (Vaswani et al.), the core of the
paper's node-exchangeable Q-network: every node token attends to every
other, so the parameter count is independent of the network size.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.modules import LayerNorm, Linear, MLP, Module
from repro.nn.tensor import Tensor

__all__ = ["MultiHeadSelfAttention", "AttentionBlock"]


class MultiHeadSelfAttention(Module):
    def __init__(self, d_model: int, n_heads: int = 2,
                 rng: np.random.Generator | None = None):
        if d_model % n_heads:
            raise ValueError("d_model must be divisible by n_heads")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.qkv = Linear(d_model, 3 * d_model, rng=rng)
        self.out = Linear(d_model, d_model, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """x: (T, D) or (B, T, D) -> same shape."""
        squeeze = x.ndim == 2
        if squeeze:
            x = x.reshape(1, *x.shape)
        batch, tokens, _ = x.shape
        qkv = self.qkv(x)  # (B, T, 3D)
        qkv = qkv.reshape(batch, tokens, 3, self.n_heads, self.d_head)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, dh)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.d_head))
        weights = scores.softmax(axis=-1)
        attended = weights @ v  # (B, H, T, dh)
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, tokens, self.d_model)
        result = self.out(merged)
        if squeeze:
            result = result.reshape(tokens, self.d_model)
        return result


class AttentionBlock(Module):
    """Pre-norm transformer block: attention + feed-forward residuals."""

    def __init__(self, d_model: int, n_heads: int = 2, ff_hidden: int | None = None,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        ff_hidden = ff_hidden or 4 * d_model
        self.ln1 = LayerNorm(d_model)
        self.attn = MultiHeadSelfAttention(d_model, n_heads, rng=rng)
        self.ln2 = LayerNorm(d_model)
        self.ff = MLP([d_model, ff_hidden, d_model], rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        return x + self.ff(self.ln2(x))
