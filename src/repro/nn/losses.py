"""Loss functions: Huber (TD loss norm, eq 5), MSE, the DQfD-style
large-margin classification loss used for pretraining (appendix:
target margin delta = 0.05, margin weighting lambda = 0.1), and the
categorical cross-entropy used by the distributional (C51) trainer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["huber_loss", "mse_loss", "margin_loss", "categorical_cross_entropy"]


def _weighted_mean(loss: Tensor, weights) -> Tensor:
    if weights is None:
        return loss.mean()
    weights = np.asarray(weights, dtype=np.float64)
    return (loss * Tensor(weights)).sum() * (1.0 / float(weights.size))


def huber_loss(pred: Tensor, target, delta: float = 1.0, weights=None) -> Tensor:
    """Huber norm of (pred - target); ``weights`` are IS weights."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    err = pred - target.detach()
    abs_err = err.abs()
    quadratic = err * err * 0.5
    linear = abs_err * delta - 0.5 * delta * delta
    mask = (abs_err.data <= delta).astype(np.float64)
    loss = quadratic * Tensor(mask) + linear * Tensor(1.0 - mask)
    return _weighted_mean(loss, weights)


def mse_loss(pred: Tensor, target, weights=None) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    err = pred - target.detach()
    return _weighted_mean(err * err, weights)


def margin_loss(q_values: Tensor, expert_actions, margin: float = 0.05) -> Tensor:
    """Large-margin loss: max_a[Q(s,a) + m(a, a_E)] - Q(s, a_E).

    Zero when the expert action's value exceeds all others by at least
    ``margin``; pushes the greedy policy toward the demonstrations.
    """
    expert_actions = np.asarray(expert_actions, dtype=np.int64)
    batch, n_actions = q_values.shape
    bonus = np.full((batch, n_actions), margin)
    bonus[np.arange(batch), expert_actions] = 0.0
    augmented = q_values + Tensor(bonus)
    best = augmented.max(axis=1)
    expert_q = q_values.gather_rows(expert_actions)
    return (best - expert_q).mean()


def categorical_cross_entropy(
    log_probs: Tensor, target_probs, weights=None, eps: float = 1e-12
) -> Tensor:
    """Cross-entropy -sum_z m(z) log p(z) between a projected target
    distribution and predicted log-probabilities, per batch row.

    Used as the C51 training loss: ``target_probs`` is the Bellman-
    projected distribution (no gradient), ``log_probs`` the online
    network's per-atom log-probabilities for the taken actions.
    """
    target = np.asarray(
        target_probs.data if isinstance(target_probs, Tensor) else target_probs,
        dtype=np.float64,
    )
    if target.shape != log_probs.shape:
        raise ValueError(
            f"shape mismatch: target {target.shape} vs log_probs {log_probs.shape}"
        )
    per_row = -(log_probs * Tensor(target)).sum(axis=-1)
    return _weighted_mean(per_row, weights)
