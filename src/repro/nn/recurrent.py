"""Recurrent cells for history-dependent Q-networks.

The paper frames network defense as a partially observable problem and
cites deep recurrent Q-learning (Hausknecht and Stone 2015) as the
standard way to learn over observation sequences. The shipped ACSO
sidesteps recurrence with the DBN filter; :class:`GRU` provides the
recurrent alternative used by the DRQN baseline in
:mod:`repro.rl.drqn`, so the two designs can be compared on equal
footing.
"""

from __future__ import annotations


import numpy as np

from repro.nn.modules import Linear, Module
from repro.nn.tensor import Tensor, concat, stack

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """Gated recurrent unit (Cho et al. 2014).

    Update equations for input x_t and previous hidden state h_{t-1}:

        z_t = sigmoid(W_z [x_t, h_{t-1}] + b_z)      (update gate)
        r_t = sigmoid(W_r [x_t, h_{t-1}] + b_r)      (reset gate)
        n_t = tanh(W_n [x_t, r_t * h_{t-1}] + b_n)   (candidate)
        h_t = (1 - z_t) * n_t + z_t * h_{t-1}
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        joint = input_dim + hidden_dim
        self.update_gate = Linear(joint, hidden_dim, rng=rng)
        self.reset_gate = Linear(joint, hidden_dim, rng=rng)
        self.candidate = Linear(joint, hidden_dim, rng=rng)
        # bias the update gate towards carrying state so early training
        # does not wash out the history (standard LSTM/GRU trick)
        self.update_gate.bias.data[:] = 1.0

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """(B, input_dim), (B, hidden_dim) -> (B, hidden_dim)."""
        joint = concat([x, h], axis=-1)
        z = self.update_gate(joint).sigmoid()
        r = self.reset_gate(joint).sigmoid()
        joint_reset = concat([x, r * h], axis=-1)
        n = self.candidate(joint_reset).tanh()
        return (1.0 - z) * n + z * h

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim)))


class GRU(Module):
    """Runs a :class:`GRUCell` over a (B, T, input_dim) sequence.

    Returns either the full hidden sequence (B, T, hidden_dim) or only
    the final state, which is what a DRQN value head consumes.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None):
        self.cell = GRUCell(input_dim, hidden_dim, rng=rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor, h0: Tensor | None = None,
                return_sequence: bool = False) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        if x.ndim != 3:
            raise ValueError(f"GRU expects (B, T, F), got shape {x.shape}")
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else self.cell.initial_state(batch)
        outputs: list[Tensor] = []
        for t in range(steps):
            h = self.cell(x[:, t, :], h)
            if return_sequence:
                outputs.append(h)
        if return_sequence:
            return stack(outputs, axis=1)
        return h
