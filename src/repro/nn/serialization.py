"""Save and load module parameters as ``.npz`` archives."""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Module

__all__ = ["save_state", "load_state"]


def save_state(module: Module, path, **metadata) -> None:
    """Write a module's state dict (plus optional scalar metadata)."""
    state = module.state_dict()
    meta = {f"__meta__{k}": np.asarray(v) for k, v in metadata.items()}
    np.savez(path, **state, **meta)


def load_state(module: Module, path) -> dict[str, np.ndarray]:
    """Load parameters into ``module``; returns any stored metadata."""
    archive = np.load(path)
    state = {k: archive[k] for k in archive.files if not k.startswith("__meta__")}
    module.load_state_dict(state)
    return {
        k[len("__meta__"):]: archive[k]
        for k in archive.files
        if k.startswith("__meta__")
    }
