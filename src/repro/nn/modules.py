"""Neural-network building blocks on top of the autograd Tensor."""

from __future__ import annotations

import math

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Sequential",
    "MLP",
    "LayerNorm",
    "activation",
]


class Parameter(Tensor):
    """A tensor that is optimized and serialized."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery and state dicts."""

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        out: list[tuple[str, Parameter]] = []
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                out.append((full, value))
            elif isinstance(value, Module):
                out.extend(value.named_parameters(f"{full}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        out.extend(item.named_parameters(f"{full}.{i}."))
                    elif isinstance(item, Parameter):
                        out.append((f"{full}.{i}", item))
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        out.extend(item.named_parameters(f"{full}.{key}."))
                    elif isinstance(item, Parameter):
                        out.append((f"{full}.{key}", item))
        return out

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def child_modules(self):
        """Yield direct sub-modules (attributes, list/dict elements)."""
        for value in vars(self).values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield item

    def reset_noise(self) -> None:
        """Resample noise in any noisy sub-layers (no-op otherwise)."""
        for module in self.child_modules():
            module.reset_noise()

    def set_noise_enabled(self, enabled: bool) -> None:
        """Toggle parameter noise everywhere (evaluation uses means)."""
        if hasattr(self, "noise_enabled"):
            self.noise_enabled = enabled
        for module in self.child_modules():
            module.set_noise_enabled(enabled)

    def n_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in params.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data = np.array(state[name], dtype=np.float64)

    def copy_from(self, other: "Module") -> None:
        """Hard-copy parameters (target-network sync)."""
        self.load_state_dict(other.state_dict())


_ACTIVATIONS = {
    "relu": lambda x: x.relu(),
    "leaky_relu": lambda x: x.leaky_relu(),
    "tanh": lambda x: x.tanh(),
    "sigmoid": lambda x: x.sigmoid(),
    "identity": lambda x: x,
    None: lambda x: x,
}


def activation(name):
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise ValueError(f"unknown activation {name!r}") from None


class Linear(Module):
    """Affine map y = x W + b with Kaiming-uniform initialization."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None, bias: bool = True):
        rng = rng or np.random.default_rng(0)
        bound = math.sqrt(6.0 / in_features)
        self.weight = Parameter(rng.uniform(-bound, bound, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Sequential(Module):
    def __init__(self, *layers):
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x) if isinstance(layer, Module) else layer(x)
        return x


class MLP(Module):
    """Feed-forward stack; ``dims`` includes input and output sizes."""

    def __init__(self, dims, act: str = "leaky_relu", final_act=None,
                 rng: np.random.Generator | None = None):
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        rng = rng or np.random.default_rng(0)
        self.linears = [
            Linear(dims[i], dims[i + 1], rng=rng) for i in range(len(dims) - 1)
        ]
        self._act = activation(act)
        self._final_act = activation(final_act)

    def forward(self, x: Tensor) -> Tensor:
        for i, linear in enumerate(self.linears):
            x = linear(x)
            x = self._act(x) if i < len(self.linears) - 1 else self._final_act(x)
        return x


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5):
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta
