"""Gradient-based optimizers. The paper trains with Adam at lr 1e-4."""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Parameter

__all__ = ["SGD", "Adam"]


class _Optimizer:
    def __init__(self, params: list[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(_Optimizer):
    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data = p.data + v


class Adam(_Optimizer):
    def __init__(self, params, lr: float = 1e-4, betas=(0.9, 0.999),
                 eps: float = 1e-8, grad_clip: float | None = None):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.grad_clip = grad_clip
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def _clipped_grads(self) -> list[np.ndarray | None]:
        grads = [p.grad for p in self.params]
        if self.grad_clip is None:
            return grads
        norm = np.sqrt(sum(float((g ** 2).sum()) for g in grads if g is not None))
        if norm <= self.grad_clip or norm == 0.0:
            return grads
        scale = self.grad_clip / norm
        return [None if g is None else g * scale for g in grads]

    def step(self) -> None:
        self.t += 1
        bias1 = 1.0 - self.beta1 ** self.t
        bias2 = 1.0 - self.beta2 ** self.t
        for p, m, v, g in zip(self.params, self._m, self._v, self._clipped_grads()):
            if g is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
