"""Noisy linear layers (Fortunato et al. 2018), the Rainbow
exploration component.

The paper's training algorithm adopts three Rainbow extensions (double
DQN, prioritized replay, n-step loss) and explores with epsilon-greedy.
:class:`NoisyLinear` provides the fourth Rainbow ingredient -- learned,
state-conditional exploration -- used by the ablation study in
``benchmarks/bench_rl_ablation.py``.

Factorized Gaussian noise: with input size p and output size q the
layer holds learnable (mu, sigma) for weights and biases and perturbs

    w = mu_w + sigma_w * (f(eps_p) outer f(eps_q)),  f(x) = sign(x)*sqrt(|x|)

Noise is resampled explicitly via :meth:`reset_noise`; with
``noise_enabled = False`` the layer behaves as its mean weights
(the deterministic evaluation-time policy).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.modules import Module, Parameter, activation
from repro.nn.tensor import Tensor

__all__ = ["NoisyLinear", "NoisyMLP"]


def _scaled_noise(rng: np.random.Generator, size: int) -> np.ndarray:
    x = rng.normal(size=size)
    return np.sign(x) * np.sqrt(np.abs(x))


class NoisyLinear(Module):
    """Linear layer with factorized Gaussian parameter noise."""

    def __init__(self, in_features: int, out_features: int,
                 sigma0: float = 0.5, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        bound = 1.0 / math.sqrt(in_features)
        self.weight_mu = Parameter(
            rng.uniform(-bound, bound, (in_features, out_features))
        )
        self.bias_mu = Parameter(rng.uniform(-bound, bound, out_features))
        sigma_init = sigma0 / math.sqrt(in_features)
        self.weight_sigma = Parameter(
            np.full((in_features, out_features), sigma_init)
        )
        self.bias_sigma = Parameter(np.full(out_features, sigma_init))
        self._rng = rng
        self.noise_enabled = True
        self._eps_w = np.zeros((in_features, out_features))
        self._eps_b = np.zeros(out_features)
        self.reset_noise()

    def reset_noise(self) -> None:
        """Draw fresh factorized noise (call once per forward batch)."""
        eps_in = _scaled_noise(self._rng, self.in_features)
        eps_out = _scaled_noise(self._rng, self.out_features)
        self._eps_w = np.outer(eps_in, eps_out)
        self._eps_b = eps_out

    def forward(self, x: Tensor) -> Tensor:
        x = x if isinstance(x, Tensor) else Tensor(x)
        if self.noise_enabled:
            weight = self.weight_mu + self.weight_sigma * Tensor(self._eps_w)
            bias = self.bias_mu + self.bias_sigma * Tensor(self._eps_b)
        else:
            weight, bias = self.weight_mu, self.bias_mu
        return x @ weight + bias

    @property
    def mean_sigma(self) -> float:
        """Average |sigma| across weights; a learned-exploration gauge."""
        return float(np.abs(self.weight_sigma.data).mean())


class NoisyMLP(Module):
    """Feed-forward stack of :class:`NoisyLinear` layers.

    Drop-in replacement for :class:`repro.nn.MLP` in Q-network heads;
    with noise enabled the greedy policy explores through parameter
    perturbations instead of epsilon-greedy (Rainbow's exploration
    component).
    """

    def __init__(self, dims, act: str = "leaky_relu", final_act=None,
                 sigma0: float = 0.5, rng: np.random.Generator | None = None):
        if len(dims) < 2:
            raise ValueError("NoisyMLP needs at least input and output dims")
        rng = rng or np.random.default_rng(0)
        self.linears = [
            NoisyLinear(dims[i], dims[i + 1], sigma0=sigma0, rng=rng)
            for i in range(len(dims) - 1)
        ]
        self._act = activation(act)
        self._final_act = activation(final_act)

    def forward(self, x: Tensor) -> Tensor:
        for i, linear in enumerate(self.linears):
            x = linear(x)
            x = self._act(x) if i < len(self.linears) - 1 else self._final_act(x)
        return x
