"""A small numpy-based neural-network library with reverse-mode autodiff.

This substrate replaces PyTorch (unavailable in the reproduction
environment). It provides exactly what the paper's models need:
linear/MLP blocks, layer normalization, multi-head self-attention,
temporal 1-D convolution, Adam, and Huber / large-margin losses.
Gradients are verified against finite differences in the test suite.
"""

from repro.nn.tensor import Tensor, concat, stack, no_grad
from repro.nn.modules import (
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    Sequential,
    activation,
)
from repro.nn.attention import AttentionBlock, MultiHeadSelfAttention
from repro.nn.conv import Conv1d
from repro.nn.recurrent import GRU, GRUCell
from repro.nn.noisy import NoisyLinear, NoisyMLP
from repro.nn.optim import SGD, Adam
from repro.nn.losses import (
    categorical_cross_entropy,
    huber_loss,
    margin_loss,
    mse_loss,
)
from repro.nn.serialization import load_state, save_state

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "no_grad",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "LayerNorm",
    "Sequential",
    "activation",
    "MultiHeadSelfAttention",
    "AttentionBlock",
    "Conv1d",
    "GRU",
    "GRUCell",
    "NoisyLinear",
    "NoisyMLP",
    "SGD",
    "Adam",
    "categorical_cross_entropy",
    "huber_loss",
    "margin_loss",
    "mse_loss",
    "save_state",
    "load_state",
]
