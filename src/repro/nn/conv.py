"""Temporal 1-D convolution for the paper's baseline network (Table 7).

Implemented as an unfold (sliding windows with a scatter-add backward)
followed by a matmul, which keeps the whole op differentiable through
the existing Tensor primitives plus one custom unfold node.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.modules import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["unfold1d", "Conv1d"]


def unfold1d(x: Tensor, kernel: int, stride: int) -> Tensor:
    """(B, C, L) -> (B, L_out, C*kernel) sliding windows."""
    batch, channels, length = x.shape
    l_out = (length - kernel) // stride + 1
    if l_out <= 0:
        raise ValueError(f"kernel {kernel} too large for length {length}")
    idx = (np.arange(l_out)[:, None] * stride + np.arange(kernel)[None, :])
    windows = x.data[:, :, idx]  # (B, C, L_out, K)
    data = windows.transpose(0, 2, 1, 3).reshape(batch, l_out, channels * kernel)

    def backward(grad):
        g = grad.reshape(batch, l_out, channels, kernel).transpose(0, 2, 1, 3)
        out = np.zeros_like(x.data)
        np.add.at(out, (slice(None), slice(None), idx), g)
        return (out,)

    return Tensor._make(data, (x,), backward)


class Conv1d(Module):
    """y[b, :, t] = W @ window(x, t) + b, striding in the time axis."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 stride: int = 1, rng: np.random.Generator | None = None):
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel
        bound = math.sqrt(6.0 / fan_in)
        self.weight = Parameter(rng.uniform(-bound, bound, (fan_in, out_channels)))
        self.bias = Parameter(np.zeros(out_channels))
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        """(B, C_in, L) -> (B, C_out, L_out)."""
        windows = unfold1d(x, self.kernel, self.stride)  # (B, L_out, C_in*K)
        out = windows @ self.weight + self.bias  # (B, L_out, C_out)
        return out.swapaxes(1, 2)
