"""Reverse-mode automatic differentiation on numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations that
produced it; :meth:`Tensor.backward` walks the graph in reverse
topological order accumulating gradients. Broadcasting is supported in
elementwise ops and (batched) matmul; gradients are un-broadcast back
to the operand shapes.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["Tensor", "concat", "stack", "no_grad"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (inference / target computations)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # sum out prepended axes
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum over axes that were broadcast from size 1
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: tuple[Tensor, ...] = ()
        self._backward = None

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    @staticmethod
    def _make(data, parents, backward) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape), _unbroadcast(grad, other.shape))

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        return self._make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other):
        return self + (-self._coerce(other))

    def __rsub__(self, other):
        return self._coerce(other) + (-self)

    def __mul__(self, other):
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, exponent: float):
        data = self.data ** exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return self._make(data, (self,), backward)

    def __matmul__(self, other):
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # inner product
                return (grad * b, grad * a)
            if a.ndim == 1:  # (k,) @ (k, n)
                return (grad @ b.T, np.outer(a, grad))
            if b.ndim == 1:  # (m, k) @ (k,)
                return (np.outer(grad, b), a.T @ grad)
            ga = grad @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ grad
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # nonlinearities
    # ------------------------------------------------------------------
    def relu(self):
        mask = self.data > 0
        return self._make(self.data * mask, (self,), lambda g: (g * mask,))

    def leaky_relu(self, alpha: float = 0.01):
        slope = np.where(self.data > 0, 1.0, alpha)
        return self._make(self.data * slope, (self,), lambda g: (g * slope,))

    def tanh(self):
        out = np.tanh(self.data)
        return self._make(out, (self,), lambda g: (g * (1.0 - out ** 2),))

    def sigmoid(self):
        out = 1.0 / (1.0 + np.exp(-self.data))
        return self._make(out, (self,), lambda g: (g * out * (1.0 - out),))

    def exp(self):
        out = np.exp(self.data)
        return self._make(out, (self,), lambda g: (g * out,))

    def log(self):
        return self._make(np.log(self.data), (self,), lambda g: (g / self.data,))

    def sqrt(self):
        out = np.sqrt(self.data)
        return self._make(out, (self,), lambda g: (g * 0.5 / out,))

    def abs(self):
        sign = np.sign(self.data)
        return self._make(np.abs(self.data), (self,), lambda g: (g * sign,))

    def softmax(self, axis: int = -1):
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=axis, keepdims=True)

        def backward(grad):
            dot = (grad * out).sum(axis=axis, keepdims=True)
            return (out * (grad - dot),)

        return self._make(out, (self,), backward)

    def log_softmax(self, axis: int = -1):
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        probs = np.exp(out)

        def backward(grad):
            total = grad.sum(axis=axis, keepdims=True)
            return (grad - probs * total,)

        return self._make(out, (self,), backward)

    # ------------------------------------------------------------------
    # reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        denominator = (
            self.data.size if axis is None
            else np.prod([self.shape[a] for a in np.atleast_1d(axis)])
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(denominator))

    def max(self, axis: int = -1, keepdims: bool = False):
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            expanded = g if keepdims else np.expand_dims(g, axis)
            maxes = self.data.max(axis=axis, keepdims=True)
            mask = self.data == maxes
            # split gradient between ties to keep it a valid subgradient
            mask = mask / mask.sum(axis=axis, keepdims=True)
            return (mask * expanded,)

        return self._make(data, (self,), backward)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)
        return self._make(data, (self,), lambda g: (g.reshape(original),))

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))
        data = self.data.transpose(axes)
        return self._make(data, (self,), lambda g: (g.transpose(inverse),))

    def swapaxes(self, a: int, b: int):
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, key):
        data = self.data[key]

        def backward(grad):
            out = np.zeros_like(self.data)
            np.add.at(out, key, grad)
            return (out,)

        return self._make(data, (self,), backward)

    def gather_rows(self, indices) -> "Tensor":
        """Select ``self[i, indices[i]]`` for each row i of a 2-D tensor."""
        indices = np.asarray(indices, dtype=np.int64)
        rows = np.arange(self.shape[0])
        data = self.data[rows, indices]

        def backward(grad):
            out = np.zeros_like(self.data)
            np.add.at(out, (rows, indices), grad)
            return (out,)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # autodiff driver
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar output")
            grad = np.ones_like(self.data)

        topo: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: Tensor) -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    topo.append(current)
                    continue
                if id(current) in visited or not current.requires_grad:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    stack.append((parent, False))

        visit(self)
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            parent_grads = node._backward(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if not parent.requires_grad or parent_grad is None:
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + parent_grad
                else:
                    grads[id(parent)] = parent_grad


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an axis (differentiable)."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad):
        return tuple(np.split(grad, splits, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(data, tuple(tensors), backward)
