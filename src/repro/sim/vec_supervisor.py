"""Parent-side worker supervision for the parallel VectorEnv backends.

The process/shm backends keep one child process per contiguous lane
slice. A dead child used to be fatal: the parent tore the whole pool
down and raised. This module holds the state that makes worker death
*recoverable* instead — a per-lane **journal** mirroring just enough of
each lane's logical history to rebuild it from scratch:

* the lane's last reset seed, which follows the deterministic
  ``base_seed + i + num_envs * episode`` schedule (or was given
  explicitly to ``reset_env``/``rebuild_lane``);
* its episode count on that schedule;
* the actions applied since that reset (bounded by
  ``journal_limit``).

Because engines are deterministic and ``spec.build_env(seed=s)`` is
state-identical to ``env.reset(seed=s)``, replaying the journal against
a freshly spawned worker reconstructs every in-flight episode
bit-exactly: recovered trajectories equal fault-free ones. The journal
only ever records *completed* commands — the parent appends after a
reply arrives, and separately tracks the single in-flight command per
worker so it can be re-sent after a restore.

Lanes become unrecoverable when their seed is unknown (an env built or
reset without any seed) or when the journal overflows; the supervisor
then falls back to the old fail-fast contract (tear down and raise
:class:`~repro.sim.vec_backends.WorkerDiedError`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import vec_transport as vt

__all__ = [
    "SupervisionConfig",
    "LaneJournal",
    "WorkerSupervisor",
    "apply_restore",
]


@dataclass
class SupervisionConfig:
    """Knobs for worker fault recovery (all mutable on a live env via
    ``configure_supervision``)."""

    #: master switch; when off, any worker fault tears the env down and
    #: raises — the original fail-fast contract.
    enabled: bool = True
    #: seconds to wait for any single reply before declaring the worker
    #: wedged and killing it (``None`` = wait forever).
    step_timeout: float | None = None
    #: restarts allowed per worker before the degrade path (or failure);
    #: the budget resets when the pool is re-laned to a new job.
    max_restarts: int = 3
    #: exponential backoff before each respawn: ``base * 2**(n-1)``
    #: seconds, capped at ``backoff_cap``.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: when a worker exhausts its restart budget, fold its lane slice
    #: into the parent process (sync execution) instead of raising.
    degrade: bool = True
    #: per-lane action-journal bound; a lane whose episode outlives this
    #: many steps becomes unrecoverable (recovery falls back to
    #: fail-fast) rather than letting the journal grow without bound.
    journal_limit: int = 4096


class LaneJournal:
    """What the parent knows about one lane's reconstructible history."""

    __slots__ = ("kind", "seed", "episode_count", "actions", "overflowed")

    def __init__(self) -> None:
        self.kind = vt.RESTORE_VIRGIN
        self.seed = None
        self.episode_count = 0
        self.actions: list = []
        self.overflowed = False

    def begin_episode(self, kind: int, seed) -> None:
        self.kind = kind
        self.seed = seed
        self.actions = []
        self.overflowed = False


class WorkerSupervisor:
    """Journal + restart bookkeeping for one parallel backend.

    The owning env calls the ``note_*`` mirrors *after* each command's
    replies arrive, so on a fault the journal always describes the
    pre-command state and re-sending the in-flight command brings the
    respawned worker forward.
    """

    def __init__(self, config: SupervisionConfig, num_envs: int,
                 num_workers: int, base_seed) -> None:
        self.config = config
        self.num_envs = num_envs
        self.base_seed = base_seed
        self.lanes = [LaneJournal() for _ in range(num_envs)]
        self.restarts = [0] * num_workers
        self.stats: dict = {
            "faults": 0,
            "restarts": 0,
            "timeouts": 0,
            "corrupt_frames": 0,
            "degraded_workers": [],
            "last_fault": None,
        }

    # -- the lane seed schedule (mirrors VectorEnv._seed_for) ----------
    def _seed_for(self, i: int):
        if self.base_seed is None:
            return None
        return self.base_seed + i + self.num_envs * self.lanes[i].episode_count

    # -- command mirrors ----------------------------------------------
    def note_full_reset(self, has_seed: bool, seed) -> None:
        if has_seed:
            self.base_seed = seed
        for i, lane in enumerate(self.lanes):
            lane.episode_count = 0
            lane.begin_episode(vt.RESTORE_RESET, self._seed_for(i))

    def note_reset_env(self, i: int, seed) -> None:
        # episode count increments BEFORE the seed is derived — the
        # same order VectorEnv.reset_env uses.
        lane = self.lanes[i]
        lane.episode_count += 1
        lane.begin_episode(
            vt.RESTORE_RESET, seed if seed is not None else self._seed_for(i)
        )

    def note_step(self, actions, mask, dones, auto_reset: bool) -> None:
        limit = self.config.journal_limit
        for i, lane in enumerate(self.lanes):
            if mask is not None and not mask[i]:
                continue
            if lane.overflowed:
                pass
            elif len(lane.actions) >= limit:
                lane.overflowed = True
                lane.actions = []
            else:
                lane.actions.append(actions[i])
            if dones[i] and auto_reset:
                lane.episode_count += 1
                lane.begin_episode(vt.RESTORE_RESET, self._seed_for(i))

    def note_relane(self, seed) -> None:
        self.base_seed = seed
        for lane in self.lanes:
            lane.episode_count = 0
            lane.begin_episode(vt.RESTORE_VIRGIN, None)
        # a relane is a fresh job: give every worker a fresh budget
        self.restarts = [0] * len(self.restarts)

    def note_rebuild(self, i: int, seed) -> None:
        lane = self.lanes[i]
        lane.episode_count = 0
        if seed is None:
            seed = None if self.base_seed is None else self.base_seed + i
        lane.begin_episode(vt.RESTORE_REBUILT, seed)

    # -- recovery ------------------------------------------------------
    def slice_recoverable(self, lo: int, hi: int) -> bool:
        """Can lanes ``[lo, hi)`` be reconstructed bit-exactly?"""
        for i in range(lo, hi):
            lane = self.lanes[i]
            if lane.overflowed:
                return False
            if lane.kind == vt.RESTORE_VIRGIN:
                if self.base_seed is None:
                    return False
            elif lane.seed is None:
                return False
        return True

    def restore_states(self, lo: int, hi: int) -> list:
        """The journal slice in :func:`vt.encode_restore_cmd` form."""
        return [
            (lane.kind, lane.seed, lane.episode_count, list(lane.actions))
            for lane in self.lanes[lo:hi]
        ]

    def record_fault(self, worker: int, reason: str) -> None:
        self.stats["faults"] += 1
        self.stats["last_fault"] = f"worker {worker}: {reason}"


def apply_restore(venv, states, build_env=None) -> None:
    """Drive a worker-local :class:`VectorEnv` slice to a journaled state.

    ``states`` holds one ``(kind, seed, episode_count, actions)`` tuple
    per local lane. VIRGIN lanes are already correct as built from the
    payload; RESET lanes re-reset to the recorded seed; REBUILT lanes
    are reconstructed via ``build_env(local_i, seed)`` (the payload spec
    already reflects the rebuilt lane). Then the recorded actions replay
    in order — deterministically identical to the original trajectory —
    and the lane's episode counter is pinned so future auto/explicit
    resets continue the exact seed schedule.
    """
    for local_i, (kind, seed, episode_count, actions) in enumerate(states):
        if kind == vt.RESTORE_RESET:
            venv.restore_reset(local_i, seed)
        elif kind == vt.RESTORE_REBUILT:
            if build_env is None:
                raise RuntimeError(
                    "cannot restore a rebuilt lane without a spec payload"
                )
            venv.replace_env(local_i, build_env(local_i, seed))
        for action in actions:
            venv.replay_action(local_i, action)
        venv._episode_counts[local_i] = episode_count
