"""Parallel VectorEnv backends: worker processes and shared memory.

:class:`ProcessVectorEnv` partitions the lanes of a logical vector
environment across worker processes. Each worker hosts a plain
:class:`~repro.sim.vec_env.VectorEnv` over its lane slice, constructed
with ``lane_offset``/``total_envs`` so its per-lane seed schedule is
bit-identical to the single-process layout -- backend choice never
changes a trajectory. Workers are built from a serialized payload (a
:class:`~repro.scenarios.spec.ScenarioSpec` dict via
:mod:`repro.scenarios.serialization`, or a ``SimConfig`` dict via
:mod:`repro.config_io`), never from pickled environment objects, so any
registered scenario -- including user-defined ones -- can be shipped to
a worker pool.

:class:`ShmVectorEnv` is the same architecture with the numeric batches
(rewards, dones, action masks) exchanged through
``multiprocessing.shared_memory`` buffers instead of being pickled
through the command pipes; observations and info dicts still travel by
pipe. The saving grows with ``num_envs * n_actions`` (the mask batch
dominates).

On a single-core host both backends lose to ``sync`` (IPC overhead with
no parallelism to buy back); they pay off when workers can spread over
cores. ``repro.make_vec(id, n, backend="process")`` is the front door.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Sequence

import numpy as np

from repro.sim.vec_env import BaseVectorEnv, VecStep, VectorEnv, _UNSET

__all__ = [
    "ProcessVectorEnv",
    "ShmVectorEnv",
    "resolve_backend",
    "normalize_backend",
]

#: ``backend="auto"`` keeps the sync backend below this batch width --
#: the IPC cost of a worker pool only amortizes over a wide batch
AUTO_MIN_ENVS = 4


def resolve_backend(num_envs: int, num_workers: int | None = None,
                    cpu_count: int | None = None) -> str:
    """Pick a concrete backend for ``backend="auto"``.

    The process backend only pays off when worker processes can spread
    over spare cores *and* the batch is wide enough to amortize the
    per-step IPC; otherwise the in-process sync backend wins (see
    ``BENCH_vec_throughput.json``: process/shm lose ~1.5x on one CPU).
    Trajectories are backend-independent, so this is purely a
    performance choice.
    """
    if num_envs < 1:
        raise ValueError("num_envs must be >= 1")
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    workers = min(num_envs, cpu_count if num_workers is None else num_workers)
    if cpu_count <= 1 or workers <= 1 or num_envs < AUTO_MIN_ENVS:
        return "sync"
    return "process"


def normalize_backend(backend: str, num_envs: int,
                      num_workers: int | None = None) -> str:
    """Resolve ``"auto"`` and validate a backend name.

    The single dispatch gate shared by ``repro.make_vec``,
    ``repro.make_vec_from_specs``, and the CLI, so the auto heuristic
    and the error message cannot drift apart.
    """
    if backend == "auto":
        backend = resolve_backend(num_envs, num_workers=num_workers)
    if backend not in ("sync", "process", "shm"):
        raise ValueError(
            f"unknown backend {backend!r}; choose from "
            "('sync', 'process', 'shm', 'auto')"
        )
    return backend


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _build_envs(payload: dict, seeds: list[int | None], record_truth: bool,
                lane_lo: int = 0):
    if "specs" in payload:
        # heterogeneous lanes: one spec per global lane (attacker
        # populations, CEM candidate fan-outs); this worker builds the
        # slice starting at its lane offset
        from repro.scenarios.serialization import spec_from_dict

        specs = [spec_from_dict(entry)
                 for entry in payload["specs"][lane_lo:lane_lo + len(seeds)]]
        return [spec.build_env(seed=s, record_truth=record_truth)
                for spec, s in zip(specs, seeds)]
    if "spec" in payload:
        from repro.scenarios.serialization import spec_from_dict

        spec = spec_from_dict(payload["spec"])
        return [spec.build_env(seed=s, record_truth=record_truth) for s in seeds]
    import repro
    from repro.config_io import config_from_dict

    config = config_from_dict(payload["config"])
    return [repro.make_env(config, seed=s, record_truth=record_truth)
            for s in seeds]


def _attach_shm(shm_spec: dict | None, lane_lo: int, lane_hi: int):
    """Attach this worker's slices of the shared reward/done/mask buffers."""
    if shm_spec is None:
        return None, ()
    from multiprocessing import shared_memory

    handles = []
    for name in (shm_spec["rewards"], shm_spec["dones"], shm_spec["masks"]):
        # Workers (forked or spawned) share the parent's resource
        # tracker, where attaching re-registers the name as a set
        # dedup no-op; the parent's close()+unlink() is the single
        # owner of the segments, so workers only attach and close.
        handles.append(shared_memory.SharedMemory(name=name))
    n, a = shm_spec["num_envs"], shm_spec["n_actions"]
    rewards = np.ndarray((n,), dtype=np.float64, buffer=handles[0].buf)
    dones = np.ndarray((n,), dtype=bool, buffer=handles[1].buf)
    masks = np.ndarray((n, a), dtype=bool, buffer=handles[2].buf)
    views = {
        "rewards": rewards[lane_lo:lane_hi],
        "dones": dones[lane_lo:lane_hi],
        "masks": masks[lane_lo:lane_hi],
    }
    return views, tuple(handles)


def _worker_main(conn, payload: dict, lane_lo: int, lane_hi: int,
                 total_envs: int, base_seed: int | None, auto_reset: bool,
                 record_truth: bool, shm_spec: dict | None) -> None:
    """Command loop hosting one lane group of the logical vector env."""
    shm_views, shm_handles = None, ()
    try:
        seeds = [
            None if base_seed is None else base_seed + i
            for i in range(lane_lo, lane_hi)
        ]
        envs = _build_envs(payload, seeds, record_truth, lane_lo=lane_lo)
        venv = VectorEnv(envs, auto_reset=auto_reset, base_seed=base_seed,
                         lane_offset=lane_lo, total_envs=total_envs)
        shm_views, shm_handles = _attach_shm(shm_spec, lane_lo, lane_hi)
        conn.send(("ready", venv.n_actions, venv.reset_infos))
    except Exception as exc:  # construction failure: report, bail out
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return

    while True:
        try:
            command = conn.recv()
        except (EOFError, OSError):
            break
        try:
            kind = command[0]
            if kind == "step":
                _, actions, mask = command
                step = venv.step(actions, mask=mask)
                # auto-resets refresh per-lane reset infos; ship them so
                # the parent's reset_infos never go stale mid-episode
                if shm_views is not None:
                    shm_views["rewards"][:] = step.rewards
                    shm_views["dones"][:] = step.dones
                    conn.send(("ok", step.observations, step.infos,
                               venv.reset_infos))
                else:
                    conn.send(("ok", step.observations, step.rewards,
                               step.dones, step.infos, venv.reset_infos))
            elif kind == "masks":
                masks = venv.action_masks()
                if shm_views is not None:
                    shm_views["masks"][:] = masks
                    conn.send(("ok",))
                else:
                    conn.send(("ok", masks))
            elif kind == "reset":
                _, has_seed, seed = command
                obs = venv.reset(seed) if has_seed else venv.reset()
                conn.send(("ok", obs, venv.reset_infos))
            elif kind == "reset_env":
                _, local_i, seed = command
                obs = venv.reset_env(local_i, seed=seed)
                conn.send(("ok", obs, venv.reset_infos[local_i]))
            elif kind == "auto_reset":
                venv.auto_reset = bool(command[1])
                conn.send(("ok",))
            elif kind == "close":
                conn.send(("ok",))
                break
            else:
                conn.send(("error", f"unknown command {kind!r}"))
        except Exception as exc:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    for shm in shm_handles:
        shm.close()
    conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _partition(num_envs: int, num_workers: int) -> list[tuple[int, int]]:
    """Contiguous, near-even lane slices [lo, hi) per worker."""
    base, extra = divmod(num_envs, num_workers)
    bounds, lo = [], 0
    for w in range(num_workers):
        hi = lo + base + (1 if w < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ProcessVectorEnv(BaseVectorEnv):
    """Lockstep vector env with lanes spread over worker processes.

    ``payload`` describes how workers rebuild their environments:
    ``{"spec": <ScenarioSpec dict>}`` or ``{"config": <SimConfig
    dict>}`` (the latter uses the default FSM attacker, matching
    ``repro.make_env``). Prefer the :meth:`from_spec` /
    :meth:`from_config` constructors.

    The instance is also a context manager; :meth:`close` terminates
    the workers and is safe to call more than once.
    """

    _uses_shm = False

    def __init__(self, payload: dict, num_envs: int, *, seed: int | None = None,
                 auto_reset: bool = True, record_truth: bool = True,
                 num_workers: int | None = None,
                 start_method: str | None = None):
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        if not ("spec" in payload or "config" in payload or "specs" in payload):
            raise ValueError("payload needs a 'spec', 'specs', or 'config' entry")
        if "specs" in payload and len(payload["specs"]) != num_envs:
            raise ValueError(
                f"per-lane payload has {len(payload['specs'])} specs "
                f"for {num_envs} envs"
            )
        self.num_envs = num_envs
        self._lane_specs = None
        if "specs" in payload:
            from repro.scenarios.serialization import spec_from_dict

            self._lane_specs = [spec_from_dict(e) for e in payload["specs"]]
        self._lane_configs: list | None = None
        self._auto_reset = auto_reset
        self._closed = False
        self._procs: list = []
        self._conns: list = []
        self._template = _build_envs(payload, [None], record_truth)[0]

        if num_workers is None:
            num_workers = min(num_envs, os.cpu_count() or 1)
        num_workers = max(1, min(num_workers, num_envs))
        self._bounds = _partition(num_envs, num_workers)

        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = mp.get_context(start_method)

        shm_spec = self._setup_shm()
        try:
            for lo, hi in self._bounds:
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, payload, lo, hi, num_envs, seed,
                          auto_reset, record_truth, shm_spec),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            self.reset_infos = []
            for conn in self._conns:
                _, value, reset_infos = self._recv(conn)
                if value != self._template.n_actions:
                    raise RuntimeError(
                        "worker action space mismatch: "
                        f"{value} != {self._template.n_actions}"
                    )
                self.reset_infos.extend(reset_infos)
        except BaseException:
            self.close()
            raise

    # -- constructors --------------------------------------------------
    @classmethod
    def from_spec(cls, spec, num_envs: int, **kwargs) -> "ProcessVectorEnv":
        from repro.scenarios.serialization import spec_to_dict

        return cls({"spec": spec_to_dict(spec)}, num_envs, **kwargs)

    @classmethod
    def from_specs(cls, specs, **kwargs) -> "ProcessVectorEnv":
        """Heterogeneous lanes: lane ``i`` runs ``specs[i]``.

        All specs must share a topology (same action space; the workers'
        handshake enforces it). This is how the adversarial loops fan an
        attacker population or a CEM candidate batch over one lockstep
        vector environment.
        """
        from repro.scenarios.serialization import spec_to_dict

        specs = list(specs)
        if not specs:
            raise ValueError("from_specs needs at least one spec")
        return cls({"specs": [spec_to_dict(s) for s in specs]}, len(specs),
                   **kwargs)

    @classmethod
    def from_config(cls, config, num_envs: int, **kwargs) -> "ProcessVectorEnv":
        from repro.config_io import config_to_dict

        return cls({"config": config_to_dict(config)}, num_envs, **kwargs)

    # -- shm hooks (overridden by ShmVectorEnv) ------------------------
    def _setup_shm(self) -> dict | None:
        return None

    def _teardown_shm(self) -> None:
        pass

    # -- metadata ------------------------------------------------------
    @property
    def config(self):
        return self._template.config

    def lane_config(self, i: int):
        if self._lane_specs is None:
            return self._template.config
        if self._lane_configs is None:
            self._lane_configs = [s.build_config() for s in self._lane_specs]
        return self._lane_configs[i]

    @property
    def topology(self):
        return self._template.topology

    @property
    def n_actions(self) -> int:
        return self._template.n_actions

    @property
    def action_list(self):
        return self._template.action_list

    def policy_env(self, i: int):
        return self._template

    @property
    def num_workers(self) -> int:
        return len(self._bounds)

    @property
    def auto_reset(self) -> bool:
        return self._auto_reset

    @auto_reset.setter
    def auto_reset(self, value: bool) -> None:
        value = bool(value)
        self._auto_reset = value
        for conn in self._conns:
            conn.send(("auto_reset", value))
        for conn in self._conns:
            self._recv(conn)

    # -- plumbing ------------------------------------------------------
    def _recv(self, conn):
        try:
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                "a VectorEnv worker process died unexpectedly"
            ) from exc
        if reply[0] == "error":
            raise RuntimeError(f"VectorEnv worker failed: {reply[1]}")
        return reply

    def _worker_of(self, lane: int) -> tuple[int, int]:
        """(worker index, local lane index) owning a global lane."""
        for w, (lo, hi) in enumerate(self._bounds):
            if lo <= lane < hi:
                return w, lane - lo
        raise IndexError(f"lane {lane} out of range for {self.num_envs} envs")

    # -- lockstep interface --------------------------------------------
    def reset(self, seed=_UNSET) -> list:
        has_seed = seed is not _UNSET
        for conn in self._conns:
            conn.send(("reset", has_seed, seed if has_seed else None))
        observations: list = []
        infos: list = []
        for conn in self._conns:
            _, obs, reset_infos = self._recv(conn)
            observations.extend(obs)
            infos.extend(reset_infos)
        self.reset_infos = infos
        return observations

    def reset_env(self, i: int, seed: int | None = None):
        w, local = self._worker_of(i)
        self._conns[w].send(("reset_env", local, seed))
        _, obs, info = self._recv(self._conns[w])
        self.reset_infos[i] = info
        return obs

    def step(self, actions=None, mask: Sequence[bool] | None = None) -> VecStep:
        actions = self._split_actions(actions)
        if mask is not None:
            mask = list(mask)
            if len(mask) != self.num_envs:
                raise ValueError(
                    f"expected {self.num_envs} mask entries, got {len(mask)}"
                )
        for conn, (lo, hi) in zip(self._conns, self._bounds):
            conn.send(("step", actions[lo:hi],
                       None if mask is None else mask[lo:hi]))
        return self._collect_step()

    def _collect_step(self) -> VecStep:
        observations: list = []
        infos: list = []
        rewards = np.empty(self.num_envs)
        dones = np.empty(self.num_envs, dtype=bool)
        for conn, (lo, hi) in zip(self._conns, self._bounds):
            _, obs, rew, done, info, reset_infos = self._recv(conn)
            observations.extend(obs)
            infos.extend(info)
            rewards[lo:hi] = rew
            dones[lo:hi] = done
            self.reset_infos[lo:hi] = reset_infos
        return VecStep(observations, rewards, dones, infos)

    def action_masks(self) -> np.ndarray:
        for conn in self._conns:
            conn.send(("masks",))
        rows = []
        for conn in self._conns:
            _, masks = self._recv(conn)
            rows.append(masks)
        return np.concatenate(rows, axis=0)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._teardown_shm()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


class ShmVectorEnv(ProcessVectorEnv):
    """Process backend exchanging numeric batches via shared memory.

    Rewards, dones, and action-mask batches live in three
    ``multiprocessing.shared_memory`` segments written in place by the
    workers; only observations and info dicts are pickled through the
    pipes. The pipe acknowledgement doubles as the write barrier, and
    the parent copies batches out of the buffers before returning them,
    so callers may hold onto results across steps.
    """

    _uses_shm = True

    def _setup_shm(self) -> dict:
        from multiprocessing import shared_memory

        n, a = self.num_envs, self._template.n_actions
        self._shm = {
            "rewards": shared_memory.SharedMemory(create=True, size=max(1, n * 8)),
            "dones": shared_memory.SharedMemory(create=True, size=max(1, n)),
            "masks": shared_memory.SharedMemory(create=True, size=max(1, n * a)),
        }
        self._shm_rewards = np.ndarray((n,), dtype=np.float64,
                                       buffer=self._shm["rewards"].buf)
        self._shm_dones = np.ndarray((n,), dtype=bool,
                                     buffer=self._shm["dones"].buf)
        self._shm_masks = np.ndarray((n, a), dtype=bool,
                                     buffer=self._shm["masks"].buf)
        return {
            "rewards": self._shm["rewards"].name,
            "dones": self._shm["dones"].name,
            "masks": self._shm["masks"].name,
            "num_envs": n,
            "n_actions": a,
        }

    def _teardown_shm(self) -> None:
        shm = getattr(self, "_shm", None)
        if not shm:
            return
        self._shm = {}
        for segment in shm.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def _collect_step(self) -> VecStep:
        observations: list = []
        infos: list = []
        for conn, (lo, hi) in zip(self._conns, self._bounds):
            _, obs, info, reset_infos = self._recv(conn)
            observations.extend(obs)
            infos.extend(info)
            self.reset_infos[lo:hi] = reset_infos
        # the acks above are the write barrier; copy out of the buffers
        return VecStep(observations, self._shm_rewards.copy(),
                       self._shm_dones.copy(), infos)

    def action_masks(self) -> np.ndarray:
        for conn in self._conns:
            conn.send(("masks",))
        for conn in self._conns:
            self._recv(conn)
        return self._shm_masks.copy()
