"""Parallel VectorEnv backends: persistent worker pools, pickle-free.

:class:`ProcessVectorEnv` partitions the lanes of a logical vector
environment across worker processes. Each worker hosts a plain
:class:`~repro.sim.vec_env.VectorEnv` over its lane slice, constructed
with ``lane_offset``/``total_envs`` so its per-lane seed schedule is
bit-identical to the single-process layout -- backend choice never
changes a trajectory. Workers are built from a serialized payload (a
:class:`~repro.scenarios.spec.ScenarioSpec` dict via
:mod:`repro.scenarios.serialization`, or a ``SimConfig`` dict via
:mod:`repro.config_io`), never from pickled environment objects, so any
registered scenario -- including user-defined ones -- can be shipped to
a worker pool.

Two properties distinguish this layer from a throwaway fork-join:

* **Zero-pickle steady state.** Commands and replies on the per-step
  path (actions, observations, rewards, dones, step infos, masks)
  travel as explicit binary records (:mod:`repro.sim.vec_transport`)
  over ``Connection.send_bytes`` -- pickle runs only at pool
  construction. :class:`ShmVectorEnv` goes one step further and parks
  each worker's reply record in a preallocated
  ``multiprocessing.shared_memory`` slab, so the pipes carry one
  acknowledgement byte per worker per step. Payloads the wire format
  cannot express (exotic custom actions) fall back to the legacy
  pickled protocol for that one message; correctness never depends on
  the fast path.
* **Persistent pools.** A live pool can be re-laned onto new scenario
  specs (:meth:`ProcessVectorEnv.relane` / ``rebuild_lane``) instead of
  being torn down and re-spawned: workers rebuild their lane slice from
  the new spec dicts and the seed schedule restarts exactly as in a
  fresh construction, so reuse is bit-exact. :class:`VecPool` caches
  pools by geometry and hands them out across CEM generations and
  self-play rounds (``repro.make_vec_from_specs(...,
  reuse_pool=True)``).

On a single-core host both backends lose to ``sync`` (IPC overhead with
no parallelism to buy back); they pay off when workers can spread over
cores. ``repro.make_vec(id, n, backend="process")`` is the front door.
Shared-memory segments are released from every exit path -- happy-path
``close()``, constructor failures, worker crashes mid-command, and the
finalizer -- so a dying pool cannot leave ``/dev/shm`` residue.

**Fault tolerance.** Worker death is supervised, not fatal: the parent
keeps a per-lane action journal (:mod:`repro.sim.vec_supervisor`),
detects faults at every pipe boundary (EOF, send failure, optional
per-step timeout, CRC frame mismatch), respawns the dead worker from
the serialized payload, and replays each lane's recorded history
against it — recovered trajectories are bit-identical to fault-free
ones because lane seeding follows the fixed ``seed + i + N * episode``
schedule and the engines are deterministic. Restarts are budgeted with
exponential backoff; a worker that keeps dying is folded into the
parent process (its lane slice runs sync) as a last resort. When a
slice cannot be reconstructed (unseeded lanes, journal overflow) or
supervision is disabled, the old fail-fast contract applies: teardown
plus :class:`WorkerDiedError`. The chaos harness
(:mod:`repro.testing.faults`) drives these paths for real in tests and
CI.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import pickle  # repro: allow[forbidden-import] -- control-channel fallback only: per-step hot-path replies use the binary wire format; pickle carries rare error/legacy frames
import threading
import time
from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.sim import vec_transport as vt
from repro.sim.vec_env import BaseVectorEnv, VecStep, VectorEnv, _UNSET
from repro.sim.vec_supervisor import (
    SupervisionConfig,
    WorkerSupervisor,
    apply_restore,
)

__all__ = [
    "ProcessVectorEnv",
    "ShmVectorEnv",
    "VecPool",
    "WorkerDiedError",
    "SupervisionConfig",
    "default_pool",
    "resolve_backend",
    "normalize_backend",
]

#: ``backend="auto"`` keeps the sync backend below this batch width --
#: the IPC cost of a worker pool only amortizes over a wide batch
AUTO_MIN_ENVS = 4

#: shared-memory reply slot per worker (spillover goes through the pipe)
DEFAULT_SLOT_BYTES = 1 << 20

_MASKS_CMD = bytes((vt.OP_MASKS,))
_CLOSE_CMD = bytes((vt.OP_CLOSE,))
_OK_REPLY = bytes((vt.ST_OK,))
_SHM_ACK = bytes((vt.ST_SHM,))


class WorkerDiedError(RuntimeError):
    """A worker process died and its lanes could not be (or were
    configured not to be) recovered. The env has been torn down; the
    message always contains "died" for compatibility with callers that
    matched the old fail-fast error."""


class _RespawnError(Exception):
    """Internal: one respawn attempt failed; burns a restart budget unit."""


def resolve_backend(num_envs: int, num_workers: int | None = None,
                    cpu_count: int | None = None) -> str:
    """Pick a concrete backend for ``backend="auto"``.

    The process backend only pays off when worker processes can spread
    over spare cores *and* the batch is wide enough to amortize the
    per-step IPC; otherwise the in-process sync backend wins (see
    ``BENCH_vec_throughput.json``). Trajectories are backend-
    independent, so this is purely a performance choice.
    """
    if num_envs < 1:
        raise ValueError("num_envs must be >= 1")
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    workers = min(num_envs, cpu_count if num_workers is None else num_workers)
    if cpu_count <= 1 or workers <= 1 or num_envs < AUTO_MIN_ENVS:
        return "sync"
    return "process"


def normalize_backend(backend: str, num_envs: int,
                      num_workers: int | None = None) -> str:
    """Resolve ``"auto"`` and validate a backend name.

    The single dispatch gate shared by ``repro.make_vec``,
    ``repro.make_vec_from_specs``, and the CLI, so the auto heuristic
    and the error message cannot drift apart.
    """
    if backend == "auto":
        backend = resolve_backend(num_envs, num_workers=num_workers)
    if backend not in ("sync", "batched", "process", "shm"):
        raise ValueError(
            f"unknown backend {backend!r}; choose from "
            "('sync', 'batched', 'process', 'shm', 'auto')"
        )
    return backend


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _build_envs(payload: dict, seeds: list[int | None], record_truth: bool,
                lane_lo: int = 0):
    if "specs" in payload:
        # heterogeneous lanes: one spec per global lane (attacker
        # populations, CEM candidate fan-outs); this worker builds the
        # slice starting at its lane offset
        from repro.scenarios.serialization import spec_from_dict

        specs = [spec_from_dict(entry)
                 for entry in payload["specs"][lane_lo:lane_lo + len(seeds)]]
        return [spec.build_env(seed=s, record_truth=record_truth)
                for spec, s in zip(specs, seeds)]
    if "spec" in payload:
        from repro.scenarios.serialization import spec_from_dict

        spec = spec_from_dict(payload["spec"])
        return [spec.build_env(seed=s, record_truth=record_truth) for s in seeds]
    import repro
    from repro.config_io import config_from_dict

    config = config_from_dict(payload["config"])
    return [repro.make_env(config, seed=s, record_truth=record_truth)
            for s in seeds]


class _LaneGroupExecutor:
    """Command executor over one lane slice of the logical vector env.

    Pure compute: decodes a command, drives the worker-local
    :class:`VectorEnv`, returns the encoded reply record (or a legacy
    tuple for payloads the wire format cannot express). It runs in two
    places: inside every worker process (wrapped by :class:`_Worker`,
    which owns the pipe/shm transport), and inside the *parent* when a
    repeatedly-failing worker is degraded to in-process execution —
    identical semantics either way, which is what makes the degrade
    path bit-exact. The optional ``injector``
    (:class:`repro.testing.faults.FaultInjector`) arms the chaos
    harness on the step/relane paths; the parent's degraded executors
    never inject.
    """

    def __init__(self, payload: dict, lane_lo: int, lane_hi: int,
                 total_envs: int, base_seed: int | None, auto_reset: bool,
                 record_truth: bool, injector=None):
        self.payload = payload
        self.lane_lo = lane_lo
        self.lane_hi = lane_hi
        self.total_envs = total_envs
        self.record_truth = record_truth
        self.injector = injector
        self.closed = False
        self.corrupt_reply = False
        self.venv = self._build_group(payload, base_seed, auto_reset)

    # -- construction / relane ----------------------------------------
    def _build_group(self, payload: dict, base_seed: int | None,
                     auto_reset: bool) -> VectorEnv:
        seeds = [
            None if base_seed is None else base_seed + i
            for i in range(self.lane_lo, self.lane_hi)
        ]
        envs = _build_envs(payload, seeds, self.record_truth,
                           lane_lo=self.lane_lo)
        return VectorEnv(envs, auto_reset=auto_reset, base_seed=base_seed,
                         lane_offset=self.lane_lo, total_envs=self.total_envs)

    @property
    def dims(self) -> vt.Dims:
        return vt.dims_of(self.venv.envs[0])

    def relane(self, msg: dict) -> bytearray:
        """Rebuild lanes from fresh spec dicts on the live process.

        A ``{"lane": i, "spec": {...}}`` message rebuilds one local
        lane in place (its episode count restarts at zero); a
        ``{"payload": ..., "seed": ..., "auto_reset": ...}`` message
        rebuilds the whole slice exactly as at construction time, so a
        re-laned pool is bit-identical to a freshly spawned one.
        """
        if "lane" in msg:
            from repro.scenarios.serialization import spec_from_dict

            local_i = msg["lane"]
            spec = spec_from_dict(msg["spec"])
            seed = msg.get("seed")
            venv = self.venv
            if seed is None and venv._base_seed is not None:
                seed = venv._base_seed + self.lane_lo + local_i
            env = spec.build_env(seed=seed, record_truth=self.record_truth)
            venv.replace_env(local_i, env)
            if "specs" in self.payload:
                specs = list(self.payload["specs"])
                specs[self.lane_lo + local_i] = msg["spec"]
                self.payload = {**self.payload, "specs": specs}
        else:
            self.payload = msg["payload"]
            self.venv = self._build_group(
                msg["payload"], msg.get("seed"),
                bool(msg.get("auto_reset", True)),
            )
        return vt.encode_relane_reply(self.dims, self.venv.reset_infos)

    # -- deterministic recovery ---------------------------------------
    def _rebuild_env(self, local_i: int, seed):
        from repro.scenarios.serialization import spec_from_dict

        spec = spec_from_dict(self.payload["specs"][self.lane_lo + local_i])
        return spec.build_env(seed=seed, record_truth=self.record_truth)

    def restore(self, states) -> bytes:
        build = self._rebuild_env if "specs" in self.payload else None
        apply_restore(self.venv, states, build_env=build)
        return _OK_REPLY

    # -- commands ------------------------------------------------------
    def do_step(self, actions, mask):
        injector = self.injector
        if injector is not None:
            # chaos harness: may kill this process, wedge the step, or
            # flag this reply for post-seal corruption
            self.corrupt_reply = injector.on_step()
        venv = self.venv
        step = venv.step(actions, mask=mask)
        changed = []
        if venv.auto_reset:
            # only auto-reset lanes refresh their reset infos; masked
            # lanes report done=True without resetting
            changed = [
                (i, venv.reset_infos[i])
                for i in range(venv.num_envs)
                if step.dones[i] and (mask is None or mask[i])
            ]
        infos = step.infos
        if not venv.auto_reset:
            # only an auto-reset produces a legitimate final; strip any
            # stale one here so the legacy pickled fallback below can't
            # leak what the binary encoder already refuses to ship
            infos = [
                {k: v for k, v in info.items() if k != "final_observation"}
                if "final_observation" in info else info
                for info in infos
            ]
        try:
            return vt.encode_step_reply(step.observations, step.rewards,
                                        step.dones, infos, changed,
                                        auto_reset=venv.auto_reset)
        except vt.EncodeError:
            # un-encodable payload (e.g. a custom env wrapper smuggling
            # objects into info): legacy pickled reply for this step
            return ("ok", step.observations, step.rewards,
                    step.dones, infos, list(venv.reset_infos))

    def handle(self, raw):
        """One binary command -> one reply (record bytes or legacy tuple)."""
        try:
            op = raw[0]
            if op == vt.OP_STEP:
                actions, mask = vt.decode_step_cmd(raw, self.venv.num_envs)
                return self.do_step(actions, mask)
            if op == vt.OP_MASKS:
                return vt.encode_masks_reply(self.venv.action_masks())
            if op == vt.OP_RESET:
                has_seed, seed = vt.decode_reset_cmd(raw)
                obs = self.venv.reset(seed) if has_seed else self.venv.reset()
                return vt.encode_reset_reply(obs, self.venv.reset_infos)
            if op == vt.OP_RESET_ENV:
                local_i, seed = vt.decode_reset_env_cmd(raw)
                obs = self.venv.reset_env(local_i, seed=seed)
                return vt.encode_reset_env_reply(
                    obs, self.venv.reset_infos[local_i])
            if op == vt.OP_AUTO_RESET:
                self.venv.auto_reset = bool(raw[1])
                return _OK_REPLY
            if op == vt.OP_RELANE:
                if self.injector is not None:
                    self.injector.on_relane()
                msg = json.loads(bytes(raw[1:]).decode("utf-8"))
                return self.relane(msg)
            if op == vt.OP_RESTORE:
                states = vt.decode_restore_cmd(raw, self.venv.num_envs)
                return self.restore(states)
            if op == vt.OP_CLOSE:
                self.closed = True
                return _OK_REPLY
            if op == vt.PICKLE_PROTO:
                return self.handle_legacy(pickle.loads(raw))
            return vt.encode_error(f"unknown opcode 0x{op:02x}")
        except Exception as exc:
            return vt.encode_error(f"{type(exc).__name__}: {exc}")

    def handle_legacy(self, command):
        """A pickled-tuple command (the fallback for unencodable payloads)."""
        try:
            if command[0] == "step":
                return self.do_step(command[1], command[2])
            if command[0] == "restore":
                return self.restore(command[1])
            if command[0] == "close":
                self.closed = True
                return _OK_REPLY
            return vt.encode_error(f"unknown legacy command {command[0]!r}")
        except Exception as exc:
            return vt.encode_error(f"{type(exc).__name__}: {exc}")


class _Worker:
    """Transport shell around a :class:`_LaneGroupExecutor` in a worker
    process: pipe command loop, shared-memory reply slot, optional CRC
    frame sealing (and the chaos harness's post-seal byte corruption).
    """

    def __init__(self, conn, executor: _LaneGroupExecutor,
                 shm_spec: dict | None, frame_check: bool):
        self.conn = conn
        self.executor = executor
        self.frame_check = frame_check
        self.shm = None
        self.slot_lo = 0
        self.slot_bytes = 0
        if shm_spec is not None:
            from multiprocessing import shared_memory

            # Workers (forked or spawned) share the parent's resource
            # tracker, where attaching re-registers the name as a set
            # dedup no-op; the parent's teardown is the single owner of
            # the segment, so workers only attach and close.
            self.shm = shared_memory.SharedMemory(name=shm_spec["name"])
            self.slot_bytes = shm_spec["slot_bytes"]
            self.slot_lo = shm_spec["worker_index"] * self.slot_bytes
        self._ack = (vt.seal_frame(bytearray(_SHM_ACK)) if frame_check
                     else _SHM_ACK)

    @property
    def dims(self) -> vt.Dims:
        return self.executor.dims

    def reply(self, record) -> None:
        # errors and one-byte acks go straight down the pipe even on the
        # shm backend, so the parent never mistakes a slab ack for a
        # successful restore/close acknowledgement
        direct = len(record) <= 1 or record[0] == vt.ST_ERR
        if self.frame_check:
            record = vt.seal_frame(record)
        if self.executor.corrupt_reply:
            # chaos harness: flip one byte *after* sealing so the parent
            # sees a CRC mismatch on a really-delivered frame
            self.executor.corrupt_reply = False
            record = bytearray(record)
            record[len(record) // 2] ^= 0xFF
        if (not direct and self.shm is not None
                and len(record) + 4 <= self.slot_bytes):
            buf = self.shm.buf
            lo = self.slot_lo
            vt._U32.pack_into(buf, lo, len(record))
            buf[lo + 4:lo + 4 + len(record)] = record
            self.conn.send_bytes(self._ack)
        else:
            self.conn.send_bytes(record)

    def run(self) -> None:
        conn = self.conn
        executor = self.executor
        while True:
            try:
                raw = conn.recv_bytes()
            except (EOFError, OSError):
                break
            result = executor.handle(raw)
            try:
                if isinstance(result, tuple):
                    if self.frame_check:
                        # the parent unseals every frame, so even the
                        # pickled fallback must carry a CRC trailer
                        self.reply(bytearray(pickle.dumps(result)))
                    else:
                        conn.send(result)
                else:
                    self.reply(result)
            except (BrokenPipeError, OSError):
                break
            if executor.closed:
                break
        if self.shm is not None:
            self.shm.close()
        conn.close()


def _worker_main(conn, payload: dict, lane_lo: int, lane_hi: int,
                 total_envs: int, base_seed: int | None, auto_reset: bool,
                 record_truth: bool, shm_spec: dict | None,
                 worker_index: int = 0, num_workers: int = 1,
                 frame_check: bool = False) -> None:
    """Process entry point: build the lane group, then serve commands."""
    try:
        injector = None
        try:
            from repro.testing.faults import FaultInjector, plan_from_env

            plan = plan_from_env()
            if plan is not None:
                injector = FaultInjector(plan, worker_index, num_workers)
        except Exception:
            injector = None  # a broken fault plan must never break real runs
        executor = _LaneGroupExecutor(payload, lane_lo, lane_hi, total_envs,
                                      base_seed, auto_reset, record_truth,
                                      injector=injector)
        worker = _Worker(conn, executor, shm_spec, frame_check)
        conn.send(("ready", tuple(worker.dims), executor.venv.reset_infos))
    except Exception as exc:  # construction failure: report, bail out
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    worker.run()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _partition(num_envs: int, num_workers: int) -> list[tuple[int, int]]:
    """Contiguous, near-even lane slices [lo, hi) per worker."""
    base, extra = divmod(num_envs, num_workers)
    bounds, lo = [], 0
    for w in range(num_workers):
        hi = lo + base + (1 if w < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ProcessVectorEnv(BaseVectorEnv):
    """Lockstep vector env with lanes spread over worker processes.

    ``payload`` describes how workers rebuild their environments:
    ``{"spec": <ScenarioSpec dict>}``, ``{"specs": [...]}`` (one per
    lane), or ``{"config": <SimConfig dict>}`` (the latter uses the
    default FSM attacker, matching ``repro.make_env``). Prefer the
    :meth:`from_spec` / :meth:`from_specs` / :meth:`from_config`
    constructors.

    The per-step protocol is pickle-free (see
    :mod:`repro.sim.vec_transport`); a live instance can be re-laned
    onto new specs with :meth:`relane` / :meth:`rebuild_lane` instead
    of being re-spawned. The instance is also a context manager;
    :meth:`close` terminates the workers and is safe to call more than
    once -- unless the env is owned by a :class:`VecPool`, in which
    case ``close()`` is a soft release and the pool's ``close()``
    performs the real teardown.
    """

    _uses_shm = False

    def __init__(self, payload: dict, num_envs: int, *, seed: int | None = None,
                 auto_reset: bool = True, record_truth: bool = True,
                 num_workers: int | None = None,
                 start_method: str | None = None,
                 slot_bytes: int = DEFAULT_SLOT_BYTES,
                 supervision: "SupervisionConfig | bool | None" = None,
                 frame_check: bool | None = None):
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        if not ("spec" in payload or "config" in payload or "specs" in payload):
            raise ValueError("payload needs a 'spec', 'specs', or 'config' entry")
        if "specs" in payload and len(payload["specs"]) != num_envs:
            raise ValueError(
                f"per-lane payload has {len(payload['specs'])} specs "
                f"for {num_envs} envs"
            )
        self.num_envs = num_envs
        self._payload = payload
        self._lane_specs = None
        if "specs" in payload:
            from repro.scenarios.serialization import spec_from_dict

            self._lane_specs = [spec_from_dict(e) for e in payload["specs"]]
        self._lane_configs: list | None = None
        self._template_env = None
        self._record_truth = record_truth
        self._auto_reset = auto_reset
        self._closed = False
        self._pool: "VecPool | None" = None
        self._pool_leased = False
        self._slab = None
        self._dims: vt.Dims | None = None

        if num_workers is None:
            num_workers = min(num_envs, os.cpu_count() or 1)
        num_workers = max(1, min(num_workers, num_envs))
        self._bounds = _partition(num_envs, num_workers)
        self._procs: list = [None] * num_workers
        self._conns: list = [None] * num_workers
        #: degraded workers: a parent-side executor replaces the process
        self._local: list = [None] * num_workers
        #: the single in-flight command per worker, re-sent after recovery
        self._inflight: list = [None] * num_workers

        if supervision is None or supervision is True:
            sup_config = SupervisionConfig()
        elif supervision is False:
            sup_config = SupervisionConfig(enabled=False)
        else:
            sup_config = supervision
        self._sup = WorkerSupervisor(sup_config, num_envs, num_workers, seed)
        if frame_check is None:
            from repro.testing.faults import frame_check_from_env

            frame_check = frame_check_from_env()
        self._frame_check = bool(frame_check)

        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(start_method)

        try:
            self._shm_base = self._setup_shm(slot_bytes)
            for w in range(num_workers):
                self._launch_worker(w)
            self.reset_infos = []
            for conn in self._conns:
                _, dims, reset_infos = self._recv_handshake(conn)
                self._check_dims(vt.Dims(*dims))
                self.reset_infos.extend(reset_infos)
        except BaseException:
            self._hard_close()
            raise

    # -- constructors --------------------------------------------------
    @classmethod
    def from_spec(cls, spec, num_envs: int, **kwargs) -> "ProcessVectorEnv":
        from repro.scenarios.serialization import spec_to_dict

        return cls({"spec": spec_to_dict(spec)}, num_envs, **kwargs)

    @classmethod
    def from_specs(cls, specs, **kwargs) -> "ProcessVectorEnv":
        """Heterogeneous lanes: lane ``i`` runs ``specs[i]``.

        All specs must share a topology (same action space; the workers'
        handshake enforces it). This is how the adversarial loops fan an
        attacker population or a CEM candidate batch over one lockstep
        vector environment.
        """
        from repro.scenarios.serialization import spec_to_dict

        specs = list(specs)
        if not specs:
            raise ValueError("from_specs needs at least one spec")
        return cls({"specs": [spec_to_dict(s) for s in specs]}, len(specs),
                   **kwargs)

    @classmethod
    def from_config(cls, config, num_envs: int, **kwargs) -> "ProcessVectorEnv":
        from repro.config_io import config_to_dict

        return cls({"config": config_to_dict(config)}, num_envs, **kwargs)

    # -- shm hooks (overridden by ShmVectorEnv) ------------------------
    def _setup_shm(self, slot_bytes: int) -> dict | None:
        return None

    def _teardown_shm(self) -> None:
        pass

    def _read_slot(self, worker_index: int):
        raise RuntimeError("no shared-memory slab on this backend")

    # -- metadata ------------------------------------------------------
    def _template(self):
        """A parent-side environment of lane 0's scenario, built lazily.

        Only metadata consumers (``config`` / ``topology`` /
        ``action_list`` / ``policy_env``) pay for it; a pool that is
        purely stepped never builds one.
        """
        if self._template_env is None:
            self._template_env = _build_envs(
                self._payload, [None], self._record_truth)[0]
        return self._template_env

    def _check_dims(self, dims: vt.Dims) -> None:
        if self._dims is None:
            self._dims = dims
        elif dims != self._dims:
            raise RuntimeError(
                "worker action space mismatch: "
                f"{dims.n_actions} != {self._dims.n_actions} "
                "(all lanes of a vector env must share a topology)"
            )

    @property
    def config(self):
        return self._template().config

    def lane_config(self, i: int):
        if self._lane_specs is None:
            return self._template().config
        if self._lane_configs is None:
            self._lane_configs = [s.build_config() for s in self._lane_specs]
        return self._lane_configs[i]

    @property
    def topology(self):
        return self._template().topology

    @property
    def n_actions(self) -> int:
        return self._dims.n_actions

    @property
    def action_list(self):
        return self._template().action_list

    def policy_env(self, i: int):
        return self._template()

    @property
    def num_workers(self) -> int:
        return len(self._bounds)

    @property
    def auto_reset(self) -> bool:
        return self._auto_reset

    @auto_reset.setter
    def auto_reset(self, value: bool) -> None:
        value = bool(value)
        self._auto_reset = value
        if self._closed:
            return  # nothing to sync; lets cleanup paths restore the flag
        cmd = bytes((vt.OP_AUTO_RESET, 1 if value else 0))
        for w in range(len(self._bounds)):
            self._dispatch(w, cmd)
        self._recv_group()

    # -- supervision ---------------------------------------------------
    @property
    def fault_stats(self) -> dict:
        """Monotonic fault counters: ``faults``, ``restarts``,
        ``timeouts``, ``corrupt_frames``, ``degraded_workers``,
        ``last_fault``. Pooled callers snapshot before/after a job to
        attribute faults to it."""
        stats = dict(self._sup.stats)
        stats["degraded_workers"] = list(stats["degraded_workers"])
        return stats

    def configure_supervision(self, **kwargs) -> "ProcessVectorEnv":
        """Adjust :class:`SupervisionConfig` knobs on the live env
        (e.g. ``step_timeout=30.0`` per serve job, ``enabled=False`` to
        restore the fail-fast contract)."""
        config = self._sup.config
        for key, value in kwargs.items():
            if not hasattr(config, key):
                raise TypeError(f"unknown supervision option {key!r}")
            setattr(config, key, value)
        return self

    # -- plumbing ------------------------------------------------------
    def _dispatch(self, w: int, cmd, legacy: bool = False) -> None:
        """Deliver one command to worker ``w``, tracking it in flight.

        The in-flight command is what a respawned worker re-executes
        after its deterministic restore, so a fault at any point
        between send and reply is recoverable. Degraded (in-parent)
        workers execute lazily at receive time.
        """
        if self._closed:
            raise WorkerDiedError(
                "a VectorEnv worker process died unexpectedly "
                "(env already torn down)"
            )
        self._inflight[w] = (cmd, legacy)
        if self._local[w] is not None:
            return
        try:
            if legacy:
                self._conns[w].send(cmd)
            else:
                self._conns[w].send_bytes(cmd)
        except (BrokenPipeError, OSError) as exc:
            self._recover_worker(w, f"send failed ({type(exc).__name__})")

    def _recv_group(self) -> list:
        """One reply per worker, draining *every* pipe before raising.

        Raising on the first worker error would leave the other
        workers' replies queued in their pipes, desynchronizing the
        protocol for every later command (and poisoning a pooled env).
        Application errors (ST_ERR) therefore drain the whole group
        first; an unrecoverable dead worker has already torn the env
        down inside :meth:`_recv_worker`, so there is nothing left to
        drain.
        """
        replies: list = []
        first_error: Exception | None = None
        for w in range(len(self._bounds)):
            if self._closed and first_error is not None:
                break  # a dead worker hard-closed us mid-drain
            try:
                replies.append(self._recv_worker(w))
            except RuntimeError as exc:
                replies.append(None)
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return replies

    def _recv_handshake(self, conn):
        try:
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                "a VectorEnv worker process died during construction"
            ) from exc
        if reply[0] == "error":
            raise RuntimeError(f"VectorEnv worker failed: {reply[1]}")
        return reply

    def _recv_worker(self, w: int):
        """One reply from worker ``w``: binary record, shm-slot view,
        or legacy tuple.

        Every fault signal lands here — pipe EOF, step timeout, CRC
        mismatch — and flows into :meth:`_recover_worker`, which either
        brings a fresh worker to the exact pre-fault state (and re-sends
        the in-flight command, so this loop simply waits again) or
        tears the env down and raises :class:`WorkerDiedError`.
        """
        while True:
            if self._local[w] is not None:
                cmd, legacy = self._inflight[w]
                executor = self._local[w]
                body = (executor.handle_legacy(cmd) if legacy
                        else executor.handle(cmd))
                return self._finish_reply(body)
            conn = self._conns[w]
            config = self._sup.config
            timeout = config.step_timeout if config.enabled else None
            try:
                if timeout is not None and not conn.poll(timeout):
                    self._sup.stats["timeouts"] += 1
                    self._recover_worker(w, f"no reply within {timeout}s")
                    continue
                raw = conn.recv_bytes()
            except (EOFError, OSError) as exc:
                self._recover_worker(w, f"pipe closed ({type(exc).__name__})")
                continue
            if self._frame_check:
                try:
                    raw = vt.open_frame(raw)
                except vt.FrameError as exc:
                    self._sup.stats["corrupt_frames"] += 1
                    self._recover_worker(w, str(exc))
                    continue
            if raw[0] == vt.ST_SHM and len(raw) == 1:
                body = self._read_slot(w)
                if self._frame_check:
                    try:
                        body = vt.open_frame(body)
                    except vt.FrameError as exc:
                        self._sup.stats["corrupt_frames"] += 1
                        self._recover_worker(w, str(exc))
                        continue
            else:
                body = raw
            return self._finish_reply(body)

    @staticmethod
    def _finish_reply(body):
        """Shared reply postprocessing: application errors and the
        legacy pickled fallback (which, under frame checking, may even
        arrive through the shm slab)."""
        if isinstance(body, tuple):  # a degraded executor's legacy reply
            return body
        first = body[0]
        if first == vt.ST_ERR:
            raise RuntimeError(
                f"VectorEnv worker failed: {vt.decode_error(body)}")
        if first == vt.PICKLE_PROTO:
            reply = pickle.loads(body)
            if reply[0] == "error":
                raise RuntimeError(f"VectorEnv worker failed: {reply[1]}")
            return reply
        return body

    # -- fault recovery ------------------------------------------------
    def _fail(self, reason: str) -> None:
        """The fail-fast path: tear everything down and raise."""
        self._pool = None
        self._hard_close()
        raise WorkerDiedError(
            f"a VectorEnv worker process died unexpectedly ({reason})"
        )

    def _reap_worker(self, w: int) -> None:
        conn = self._conns[w]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            self._conns[w] = None
        proc = self._procs[w]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
                if proc.is_alive():  # pragma: no cover - stuck in a syscall
                    proc.kill()
                    proc.join(timeout=1.0)
            else:
                proc.join(timeout=1.0)
            self._procs[w] = None

    def _recover_worker(self, w: int, reason: str) -> None:
        """Replace a dead/wedged worker, restoring its lanes bit-exactly.

        Falls back to the old fail-fast contract (teardown +
        :class:`WorkerDiedError`) when supervision is off or the slice's
        history cannot be reconstructed; falls forward to the degrade
        path (the slice runs in-parent) when the restart budget runs
        out.
        """
        sup = self._sup
        lo, hi = self._bounds[w]
        sup.record_fault(w, reason)
        self._reap_worker(w)
        if self._closed:
            raise WorkerDiedError(
                f"a VectorEnv worker process died unexpectedly ({reason})"
            )
        if not (sup.config.enabled and sup.slice_recoverable(lo, hi)):
            self._fail(reason)
        config = sup.config
        while True:
            if sup.restarts[w] >= config.max_restarts:
                if config.degrade:
                    self._degrade_worker(w)
                    return
                self._fail(f"restart budget exhausted after: {reason}")
            sup.restarts[w] += 1
            sup.stats["restarts"] += 1
            delay = min(config.backoff_cap,
                        config.backoff_base * (2 ** (sup.restarts[w] - 1)))
            if delay > 0:
                time.sleep(delay)
            try:
                self._respawn_worker(w)
                return
            except _RespawnError:
                self._reap_worker(w)

    def _respawn_worker(self, w: int) -> None:
        """One respawn attempt: fresh process, deterministic restore,
        re-sent in-flight command. Any failure raises
        :class:`_RespawnError` and burns a restart budget unit."""
        lo, hi = self._bounds[w]
        try:
            self._launch_worker(w)
            _, dims, _ = self._recv_handshake(self._conns[w])
            self._check_dims(vt.Dims(*dims))
        except RuntimeError as exc:
            raise _RespawnError(str(exc)) from exc
        states = self._sup.restore_states(lo, hi)
        try:
            restore_cmd, legacy = vt.encode_restore_cmd(states), False
        except vt.EncodeError:
            # journaled actions the wire format cannot express: pickle
            restore_cmd, legacy = ("restore", states), True
        conn = self._conns[w]
        try:
            if legacy:
                conn.send(restore_cmd)
            else:
                conn.send_bytes(restore_cmd)
            raw = conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise _RespawnError(
                f"died during restore ({type(exc).__name__})") from exc
        if self._frame_check:
            try:
                raw = vt.open_frame(raw)
            except vt.FrameError as exc:
                raise _RespawnError(str(exc)) from exc
        if raw[0] == vt.ST_ERR:
            raise _RespawnError(f"restore failed: {vt.decode_error(raw)}")
        if self._inflight[w] is not None:
            cmd, cmd_legacy = self._inflight[w]
            try:
                if cmd_legacy:
                    conn.send(cmd)
                else:
                    conn.send_bytes(cmd)
            except (BrokenPipeError, OSError) as exc:
                raise _RespawnError(
                    f"died re-sending command ({type(exc).__name__})"
                ) from exc

    def _degrade_worker(self, w: int) -> None:
        """Last resort: fold the slice into the parent process.

        The slice's executor is the same class the worker process runs,
        restored from the same journal — execution becomes sync (the
        parallelism is gone) but trajectories stay bit-identical. No
        injector is attached, so a degraded slice is also immune to the
        chaos harness.
        """
        lo, hi = self._bounds[w]
        try:
            executor = _LaneGroupExecutor(
                self._payload, lo, hi, self.num_envs, self._sup.base_seed,
                self._auto_reset, self._record_truth,
            )
            executor.restore(self._sup.restore_states(lo, hi))
            self._check_dims(executor.dims)
        except Exception as exc:
            self._fail(f"degrade failed: {type(exc).__name__}: {exc}")
        self._local[w] = executor
        self._sup.stats["degraded_workers"].append(w)

    def _launch_worker(self, w: int) -> None:
        """Spawn worker ``w``'s process and pipe (no handshake; the
        caller collects it — in bulk at construction, inline on
        respawn)."""
        lo, hi = self._bounds[w]
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        worker_spec = (None if self._shm_base is None
                       else {**self._shm_base, "worker_index": w})
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._payload, lo, hi, self.num_envs,
                  self._sup.base_seed, self._auto_reset, self._record_truth,
                  worker_spec, w, len(self._bounds), self._frame_check),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[w] = proc
        self._conns[w] = parent_conn

    def _worker_of(self, lane: int) -> tuple[int, int]:
        """(worker index, local lane index) owning a global lane."""
        for w, (lo, hi) in enumerate(self._bounds):
            if lo <= lane < hi:
                return w, lane - lo
        raise IndexError(f"lane {lane} out of range for {self.num_envs} envs")

    # -- lockstep interface --------------------------------------------
    def reset(self, seed=_UNSET) -> list:
        has_seed = seed is not _UNSET
        cmd = vt.encode_reset_cmd(has_seed, seed if has_seed else None)
        for w in range(len(self._bounds)):
            self._dispatch(w, cmd)
        replies = self._recv_group()
        observations: list = []
        infos: list = []
        for reply, (lo, hi) in zip(replies, self._bounds):
            obs, reset_infos = vt.decode_reset_reply(reply, hi - lo, self._dims)
            observations.extend(obs)
            infos.extend(reset_infos)
        self.reset_infos = infos
        self._sup.note_full_reset(has_seed, seed if has_seed else None)
        return observations

    def reset_env(self, i: int, seed: int | None = None):
        w, local = self._worker_of(i)
        self._dispatch(w, vt.encode_reset_env_cmd(local, seed))
        reply = self._recv_worker(w)
        obs, info = vt.decode_reset_env_reply(reply, self._dims)
        self.reset_infos[i] = info
        self._sup.note_reset_env(i, seed)
        return obs

    def step(self, actions=None, mask: Sequence[bool] | None = None) -> VecStep:
        actions = self._split_actions(actions)
        if mask is not None:
            mask = list(mask)
            if len(mask) != self.num_envs:
                raise ValueError(
                    f"expected {self.num_envs} mask entries, got {len(mask)}"
                )
        for w, (lo, hi) in enumerate(self._bounds):
            group_mask = None if mask is None else mask[lo:hi]
            try:
                self._dispatch(w, vt.encode_step_cmd(actions[lo:hi],
                                                     group_mask))
            except vt.EncodeError:
                # exotic action payload: pickle this one command
                self._dispatch(w, ("step", actions[lo:hi], group_mask),
                               legacy=True)
        result = self._collect_step()
        self._sup.note_step(actions, mask, result.dones, self._auto_reset)
        return result

    def _collect_step(self) -> VecStep:
        replies = self._recv_group()
        observations: list = []
        infos: list = []
        rewards = np.empty(self.num_envs)
        dones = np.empty(self.num_envs, dtype=bool)
        for reply, (lo, hi) in zip(replies, self._bounds):
            if isinstance(reply, tuple):  # legacy pickled fallback
                _, obs, rew, done, info, reset_infos = reply
                self.reset_infos[lo:hi] = reset_infos
            else:
                obs, rew, done, info, changed = vt.decode_step_reply(
                    reply, hi - lo, self._dims)
                for local_i, reset_info in changed:
                    self.reset_infos[lo + local_i] = reset_info
            observations.extend(obs)
            infos.extend(info)
            rewards[lo:hi] = rew
            dones[lo:hi] = done
        return VecStep(observations, rewards, dones, infos)

    def action_masks(self) -> np.ndarray:
        for w in range(len(self._bounds)):
            self._dispatch(w, _MASKS_CMD)
        rows = []
        for reply, (lo, hi) in zip(self._recv_group(), self._bounds):
            if isinstance(reply, tuple):
                rows.append(reply[1])
            else:
                rows.append(vt.decode_masks_reply(reply, hi - lo, self._dims))
        return np.concatenate(rows, axis=0)

    # -- persistent-pool interface -------------------------------------
    def relane(self, specs, *, seed: int | None = None,
               auto_reset: bool = True) -> "ProcessVectorEnv":
        """Rebuild every lane from ``specs`` on the live worker pool.

        Equivalent to closing this env and constructing
        ``from_specs(specs, seed=seed, auto_reset=auto_reset)`` -- same
        per-lane construction seeds, zeroed episode counts, fresh
        ``reset_infos`` -- but without re-spawning processes or
        re-importing the world. ``specs`` must match ``num_envs``
        (lane counts are part of the pool geometry; :class:`VecPool`
        spawns a new pool when the width changes).
        """
        from repro.scenarios.serialization import spec_to_dict

        if self._closed:
            raise RuntimeError("cannot relane a closed vector env")
        specs = list(specs)
        if len(specs) != self.num_envs:
            raise ValueError(
                f"relane needs {self.num_envs} specs, got {len(specs)}"
            )
        payload = {"specs": [spec_to_dict(s) for s in specs]}
        body = json.dumps(
            {"payload": payload, "seed": seed, "auto_reset": auto_reset}
        ).encode("utf-8")
        cmd = bytes((vt.OP_RELANE,)) + body
        for w in range(len(self._bounds)):
            self._dispatch(w, cmd)
        self._finish_relane(specs, payload)
        self._auto_reset = auto_reset
        self._sup.note_relane(seed)
        return self

    def rebuild_lane(self, i: int, spec, *, seed: int | None = None) -> None:
        """Rebuild one lane in place from ``spec`` (live pool).

        The lane's episode count restarts at zero, and with
        ``seed=None`` the lane draws its construction seed from the
        pool's base-seed schedule, exactly as at construction time.
        """
        from repro.scenarios.serialization import spec_to_dict

        if self._closed:
            raise RuntimeError("cannot rebuild a lane of a closed vector env")
        if self._lane_specs is None:
            raise ValueError(
                "rebuild_lane needs a spec-built vector env "
                "(from_spec/from_specs); this one was built from a raw config"
            )
        w, local = self._worker_of(i)
        body = json.dumps(
            {"lane": local, "spec": spec_to_dict(spec), "seed": seed}
        ).encode("utf-8")
        self._dispatch(w, bytes((vt.OP_RELANE,)) + body)
        lo, hi = self._bounds[w]
        reply = self._recv_worker(w)
        dims, reset_infos = vt.decode_relane_reply(reply, hi - lo)
        self._check_dims(dims)
        self.reset_infos[lo:hi] = reset_infos
        self._lane_specs[i] = spec
        self._lane_configs = None
        # keep construction metadata honest: the payload (what a future
        # relane/template build starts from) and the lazily built
        # template must reflect the rebuilt lane
        self._payload = {"specs": [spec_to_dict(s) for s in self._lane_specs]}
        self._template_env = None
        self._sup.note_rebuild(i, seed)

    def _finish_relane(self, specs: list, payload: dict) -> None:
        replies = self._recv_group()
        reset_infos: list = []
        dims_seen: list[vt.Dims] = []
        for reply, (lo, hi) in zip(replies, self._bounds):
            dims, infos = vt.decode_relane_reply(reply, hi - lo)
            dims_seen.append(dims)
            reset_infos.extend(infos)
        if any(dims != dims_seen[0] for dims in dims_seen[1:]):
            raise ValueError(
                "relane specs disagree on the action space; all lanes of a "
                "vector env must share a topology"
            )
        # a relane may legitimately move the pool to a different network
        # preset; the workers' agreed geometry becomes the new contract
        self._dims = dims_seen[0]
        self.reset_infos = reset_infos
        self._payload = payload
        self._lane_specs = list(specs)
        self._lane_configs = None
        self._template_env = None

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Release the env; a pool-owned env is only *released*.

        For a standalone env this terminates the workers and unlinks
        any shared-memory segments. For an env handed out by a
        :class:`VecPool` it is a soft release -- the lease returns to
        the pool, the workers stay alive for the next ``acquire``, and
        the pool's own ``close()`` performs the real teardown.
        """
        if self._pool is not None and not self._closed:
            self._pool.release(self)
            return
        self._hard_close()

    def shutdown(self) -> None:
        """Terminate the workers even if a pool owns this env."""
        self._pool = None
        self._hard_close()

    def _hard_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool = None
        try:
            for conn in self._conns:
                if conn is None:
                    continue
                try:
                    conn.send_bytes(_CLOSE_CMD)
                except (BrokenPipeError, OSError):
                    pass
            for w, conn in enumerate(self._conns):
                if conn is None:
                    continue
                # a bounded grace period: a healthy worker acks CLOSE in
                # microseconds; one that stays silent is wedged (or mid
                # crash) and gets terminated instead of a long join —
                # eviction of a hung pool must not block its caller.
                graceful = False
                try:
                    if conn.poll(0.25):
                        conn.recv_bytes()
                        graceful = True
                except (EOFError, OSError):
                    graceful = True  # already dead: join returns at once
                conn.close()
                proc = self._procs[w]
                if proc is None:
                    continue
                if graceful:
                    proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
                    if proc.is_alive():  # pragma: no cover
                        proc.kill()
                        proc.join(timeout=1.0)
        finally:
            self._teardown_shm()
            self._local = [None] * len(self._bounds)

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self._hard_close()
        except Exception:
            pass


class ShmVectorEnv(ProcessVectorEnv):
    """Process backend whose replies travel through shared memory.

    Every worker owns a fixed slot in one preallocated
    ``multiprocessing.shared_memory`` slab and parks its encoded reply
    record there (observations, rewards, dones, structured infos,
    masks); the pipe then carries a single acknowledgement byte, which
    doubles as the write barrier. The parent decodes straight out of
    the slab into fresh objects, so callers may hold onto results
    across steps. Records larger than the slot (pathological alert
    floods) spill over to the pipe transparently.

    The parent is the single owner of the slab: it is unlinked from
    every teardown path (``close()``, constructor failure, worker
    crash, finalizer), so no ``/dev/shm`` residue survives the env.
    """

    _uses_shm = True

    def _setup_shm(self, slot_bytes: int) -> dict:
        from multiprocessing import shared_memory

        if slot_bytes < 4096:
            raise ValueError("slot_bytes must be at least 4096")
        self._slot_bytes = slot_bytes
        self._slab = shared_memory.SharedMemory(
            create=True, size=len(self._bounds) * slot_bytes)
        return {"name": self._slab.name, "slot_bytes": slot_bytes}

    def _teardown_shm(self) -> None:
        slab = getattr(self, "_slab", None)
        if slab is None:
            return
        self._slab = None
        try:
            slab.close()
        finally:
            try:
                slab.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def _read_slot(self, worker_index: int):
        buf = self._slab.buf
        lo = worker_index * self._slot_bytes
        (length,) = vt._U32.unpack_from(buf, lo)
        # decoding copies every field out of the slab (frombuffer +
        # astype/copy), so handing out a transient view is safe
        return memoryview(buf)[lo + 4:lo + 4 + length]


# ----------------------------------------------------------------------
# persistent pools
# ----------------------------------------------------------------------
class VecPool:
    """A cache of live worker-pool vector envs, re-laned instead of
    re-spawned.

    :meth:`acquire` hands out a :class:`ProcessVectorEnv` /
    :class:`ShmVectorEnv` for a batch of scenario specs. When a live
    pool with the same geometry (backend, lane count, worker count)
    already exists, its workers are re-laned onto the new specs --
    bit-identical to a fresh construction, without paying process
    startup -- otherwise a new pool is spawned and cached. Envs handed
    out by a pool treat ``close()`` as a soft release, so existing
    ``with venv:`` call sites work unchanged; the pool's own
    :meth:`close` (or the interpreter exit hook on
    :func:`default_pool`) performs the real teardown.

    The CEM attacker oracle, the self-play loop, and the ``repro
    serve`` job service are the intended users: one pool serves every
    generation of every round (or every queued job). ``spawns`` and
    ``reuses`` count pool constructions and re-lanings -- a healthy
    CEM run reports ``spawns == 1``.

    **Thread safety.** Every pool operation (acquire, release, close,
    stats) holds one internal lock, so concurrent acquisitions cannot
    corrupt the cache or double-spawn, and eviction never tears down
    an env that is currently checked out (the cache may temporarily
    exceed ``max_pools`` until leases are released). Note the pinned
    *sequential* semantics are unchanged: re-acquiring a geometry
    without releasing it first re-lanes the same env (the caller is
    assumed to have abandoned it). Threads that share one pool must
    therefore use distinct geometries or serialize their use of each
    env -- the serve layer holds its own job-level lock for exactly
    this reason.
    """

    def __init__(self, max_pools: int = 4):
        if max_pools < 1:
            raise ValueError("max_pools must be >= 1")
        self.max_pools = max_pools
        self._pools: "OrderedDict[tuple, ProcessVectorEnv]" = OrderedDict()
        self._lock = threading.RLock()
        self._closed = False
        self.spawns = 0
        self.reuses = 0

    def acquire(self, specs, *, seed: int | None = None,
                backend: str = "process", num_workers: int | None = None,
                auto_reset: bool = True, record_truth: bool = True,
                start_method: str | None = None) -> ProcessVectorEnv:
        """A ready vector env over ``specs``, reusing live workers."""
        if backend not in ("process", "shm"):
            raise ValueError(
                f"VecPool backs worker-pool backends, not {backend!r}"
            )
        specs = list(specs)
        if not specs:
            raise ValueError("acquire needs at least one spec")
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot acquire from a closed VecPool")
            key = (backend, len(specs), num_workers, record_truth,
                   start_method)
            venv = self._pools.get(key)
            if venv is not None and not venv._closed:
                try:
                    venv.relane(specs, seed=seed, auto_reset=auto_reset)
                    self.reuses += 1
                    self._pools.move_to_end(key)
                    venv._pool_leased = True
                    return venv
                except RuntimeError:
                    # dead or wedged pool; fall through and respawn
                    venv.shutdown()
            cls = ProcessVectorEnv if backend == "process" else ShmVectorEnv
            venv = cls.from_specs(
                specs, seed=seed, auto_reset=auto_reset,
                record_truth=record_truth, num_workers=num_workers,
                start_method=start_method,
            )
            venv._pool = self
            venv._pool_leased = True
            self.spawns += 1
            old = self._pools.pop(key, None)
            if old is not None:
                old.shutdown()
            self._pools[key] = venv
            self._evict_over_budget()
            return venv

    def release(self, venv: ProcessVectorEnv) -> None:
        """Return a lease (the soft ``close()`` of a pooled env)."""
        with self._lock:
            venv._pool_leased = False
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Evict LRU entries beyond ``max_pools`` -- but never one that
        is checked out; those wait for their :meth:`release`."""
        excess = len(self._pools) - self.max_pools
        if excess <= 0:
            return
        for key, venv in list(self._pools.items()):
            if excess <= 0:
                break
            if venv._pool_leased and not venv._closed:
                continue
            del self._pools[key]
            venv.shutdown()
            excess -= 1

    @property
    def stats(self) -> dict:
        with self._lock:
            return {"spawns": self.spawns, "reuses": self.reuses,
                    "live_pools": len(self._pools)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._pools)

    def close(self) -> None:
        """Terminate every cached pool (idempotent)."""
        with self._lock:
            self._closed = True
            pools, self._pools = list(self._pools.values()), OrderedDict()
        for venv in pools:
            venv.shutdown()

    def __enter__(self) -> "VecPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass


_DEFAULT_POOL: VecPool | None = None
_DEFAULT_POOL_LOCK = threading.Lock()


def default_pool() -> VecPool:
    """The process-wide :class:`VecPool` behind ``reuse_pool=True``.

    Created on first use (thread-safely) and closed at interpreter
    exit; callers that want deterministic teardown should hold their
    own :class:`VecPool`.
    """
    global _DEFAULT_POOL
    with _DEFAULT_POOL_LOCK:
        if _DEFAULT_POOL is None or _DEFAULT_POOL._closed:
            import atexit

            _DEFAULT_POOL = VecPool()
            atexit.register(_DEFAULT_POOL.close)
        return _DEFAULT_POOL
