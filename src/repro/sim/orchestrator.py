"""Defender (ACSO) actions: investigations and mitigations.

Reproduces the paper's Tables 3 and 4:

* Investigations (Table 3) stochastically detect malware on the target
  node and never raise false alarms. Detection probabilities are
  ``detect_prob``; when the node carries the *Malware Cleaned*
  condition, the probability is multiplied by
  ``(1 - cleanup_effectiveness)`` -- at the nominal effectiveness of 0.5
  this halves detection, matching the paper's "with/without cleaned"
  columns (0.03/0.01 read as 0.03 base, ~0.015 cleaned; the PDF
  typography merges these digits with the duration column).
* Mitigations (Table 4) return the node to nominal unless the listed
  countermeasure condition is present. Re-imaging has no
  countermeasure. Quarantine toggles a workstation between its home
  VLAN and the level's quarantine VLAN.

Durations for mitigations are not printed in the paper; DESIGN.md
Section 5 documents the values chosen here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


from repro.net.nodes import Condition, NodeType
from repro.net.topology import Topology
from repro.sim.state import NetworkState

__all__ = [
    "DefenderActionType",
    "DefenderActionSpec",
    "DEFENDER_ACTION_SPECS",
    "DefenderAction",
    "HOST_ACTIONS",
    "SERVER_ACTIONS",
    "PLC_ACTIONS",
    "enumerate_actions",
    "scan_detection_prob",
    "apply_mitigation",
]


class DefenderActionType(enum.Enum):
    NOOP = "noop"
    SIMPLE_SCAN = "simple_scan"
    ADVANCED_SCAN = "advanced_scan"
    HUMAN_ANALYSIS = "human_analysis"
    REBOOT = "reboot"
    RESET_PASSWORD = "reset_password"
    REIMAGE = "reimage"
    QUARANTINE = "quarantine"
    RESET_PLC = "reset_plc"
    REPLACE_PLC = "replace_plc"


@dataclass(frozen=True)
class DefenderActionSpec:
    atype: DefenderActionType
    duration: int  # hours until the action completes
    cost_host: float
    cost_server: float
    detect_prob: float = 0.0  # investigations only; per completed action
    per_hour_detection: bool = False  # advanced scan draws each hour
    countermeasure: Condition | None = None  # mitigation blocked by this
    targets: str = "node"  # "node" | "plc" | "none"

    def cost(self, is_server: bool) -> float:
        return self.cost_server if is_server else self.cost_host

    @property
    def is_investigation(self) -> bool:
        return self.detect_prob > 0.0


_T = DefenderActionType

#: Tables 3 and 4 plus DESIGN.md Section 5 durations.
DEFENDER_ACTION_SPECS: dict[DefenderActionType, DefenderActionSpec] = {
    _T.NOOP: DefenderActionSpec(_T.NOOP, 0, 0.0, 0.0, targets="none"),
    _T.SIMPLE_SCAN: DefenderActionSpec(
        _T.SIMPLE_SCAN, 2, 0.01, 0.01, detect_prob=0.03
    ),
    _T.ADVANCED_SCAN: DefenderActionSpec(
        _T.ADVANCED_SCAN, 8, 0.03, 0.03, detect_prob=0.05, per_hour_detection=True
    ),
    _T.HUMAN_ANALYSIS: DefenderActionSpec(
        _T.HUMAN_ANALYSIS, 8, 0.05, 0.05, detect_prob=0.5
    ),
    _T.REBOOT: DefenderActionSpec(
        _T.REBOOT, 1, 0.01, 0.03, countermeasure=Condition.REBOOT_PERSIST
    ),
    _T.RESET_PASSWORD: DefenderActionSpec(
        _T.RESET_PASSWORD, 2, 0.03, 0.05, countermeasure=Condition.CRED_PERSIST
    ),
    _T.REIMAGE: DefenderActionSpec(_T.REIMAGE, 8, 0.05, 0.1),
    _T.QUARANTINE: DefenderActionSpec(_T.QUARANTINE, 1, 0.02, 0.02),
    _T.RESET_PLC: DefenderActionSpec(_T.RESET_PLC, 1, 0.02, 0.02, targets="plc"),
    _T.REPLACE_PLC: DefenderActionSpec(_T.REPLACE_PLC, 24, 0.04, 0.04, targets="plc"),
}

#: Action menus per target class; ordering fixes the Q-network layout.
HOST_ACTIONS = (
    _T.SIMPLE_SCAN, _T.ADVANCED_SCAN, _T.HUMAN_ANALYSIS,
    _T.REBOOT, _T.RESET_PASSWORD, _T.REIMAGE, _T.QUARANTINE,
)
SERVER_ACTIONS = (
    _T.SIMPLE_SCAN, _T.ADVANCED_SCAN, _T.HUMAN_ANALYSIS,
    _T.REBOOT, _T.RESET_PASSWORD, _T.REIMAGE,
)
PLC_ACTIONS = (_T.RESET_PLC, _T.REPLACE_PLC)


@dataclass(frozen=True)
class DefenderAction:
    """One defender decision; ``target`` indexes nodes or PLCs."""

    atype: DefenderActionType
    target: int | None = None

    @property
    def is_noop(self) -> bool:
        return self.atype is DefenderActionType.NOOP


NOOP = DefenderAction(DefenderActionType.NOOP)


def enumerate_actions(topology: Topology) -> list[DefenderAction]:
    """Full flat action list: NOOP, then per-node menus, then per-PLC.

    On the paper network this enumerates 329 actions -- matching the
    output dimension of the paper's baseline network (Table 7).
    """
    actions = [NOOP]
    for node in topology.nodes:
        menu = SERVER_ACTIONS if node.is_server else HOST_ACTIONS
        actions.extend(DefenderAction(a, node.node_id) for a in menu)
    for plc in topology.plcs:
        actions.extend(DefenderAction(a, plc.plc_id) for a in PLC_ACTIONS)
    return actions


def scan_detection_prob(
    spec: DefenderActionSpec,
    state: NetworkState,
    node_id: int,
    cleanup_effectiveness: float,
) -> float:
    """Detection probability of a completed investigation on a node.

    Zero when no malware is present (investigations never false-alarm).
    Advanced scans draw once per hour of their window; the equivalent
    completion-time probability 1 - (1-p)^duration is used.
    """
    if not state.is_compromised(node_id):
        return 0.0
    p = spec.detect_prob
    if state.has_condition(node_id, Condition.CLEANED):
        p *= 1.0 - cleanup_effectiveness
    if spec.per_hour_detection:
        p = 1.0 - (1.0 - p) ** spec.duration
    return p


def apply_mitigation(
    action: DefenderAction, state: NetworkState, topology: Topology
) -> bool:
    """Apply a completed mitigation. Returns True if state changed."""
    atype = action.atype
    if atype in (_T.REBOOT, _T.RESET_PASSWORD, _T.REIMAGE):
        node_id = action.target
        spec = DEFENDER_ACTION_SPECS[atype]
        if spec.countermeasure is not None and state.has_condition(
            node_id, spec.countermeasure
        ):
            return False
        # return the node to nominal: all compromise conditions are
        # removed except SCANNED, which models recon knowledge held by
        # the attacker rather than state on the machine (quarantine is
        # the action that invalidates recon, via the location change)
        had = bool(state.conditions[node_id, Condition.COMPROMISED])
        scanned = bool(state.conditions[node_id, Condition.SCANNED])
        state.clear_node(node_id)
        if scanned:
            state.conditions[node_id, Condition.SCANNED] = True
        return had

    if atype is _T.QUARANTINE:
        node_id = action.target
        node = topology.nodes[node_id]
        if node.ntype is NodeType.SERVER:
            return False  # servers cannot be quarantined
        if state.is_quarantined(node_id):
            state.move_node(node_id, node.home_vlan)
        else:
            state.move_node(node_id, topology.quarantine_vlan_for(node))
        return True

    if atype is _T.RESET_PLC:
        plc_id = action.target
        changed = bool(state.plc_disrupted[plc_id] or state.plc_firmware[plc_id])
        state.plc_disrupted[plc_id] = False
        state.plc_firmware[plc_id] = False
        return changed

    if atype is _T.REPLACE_PLC:
        plc_id = action.target
        changed = bool(
            state.plc_destroyed[plc_id]
            or state.plc_disrupted[plc_id]
            or state.plc_firmware[plc_id]
        )
        state.plc_destroyed[plc_id] = False
        state.plc_disrupted[plc_id] = False
        state.plc_firmware[plc_id] = False
        return changed

    raise ValueError(f"not a mitigation: {atype}")  # pragma: no cover
