"""INASIM: the ICS network attack simulator (paper Section 3.1 + appendix)."""

from repro.sim.apt_actions import (
    APT_ACTION_SPECS,
    APTActionRequest,
    APTActionType,
    APTKnowledge,
    APTView,
)
from repro.sim.engine import Simulation, StepResult
from repro.sim.env import InasimEnv
from repro.sim.events import Event, EventQueue
from repro.sim.ids import IDSModule
from repro.sim.observations import Alert, AlertSource, Observation, ScanResult
from repro.sim.orchestrator import (
    DEFENDER_ACTION_SPECS,
    DefenderAction,
    DefenderActionType,
    enumerate_actions,
)
from repro.sim.batched_engine import BatchedVectorEnv
from repro.sim.reward import RewardModule
from repro.sim.state import NetworkState
from repro.sim.trace import EpisodeTrace, TraceStep, record_episode, verify_determinism
from repro.sim.vec_backends import ProcessVectorEnv, ShmVectorEnv, WorkerDiedError
from repro.sim.vec_env import BaseVectorEnv, VecStep, VectorEnv
from repro.sim.vec_supervisor import SupervisionConfig

__all__ = [
    "APT_ACTION_SPECS",
    "APTActionRequest",
    "APTActionType",
    "APTKnowledge",
    "APTView",
    "Simulation",
    "StepResult",
    "InasimEnv",
    "Event",
    "EventQueue",
    "IDSModule",
    "Alert",
    "AlertSource",
    "Observation",
    "ScanResult",
    "DEFENDER_ACTION_SPECS",
    "DefenderAction",
    "DefenderActionType",
    "enumerate_actions",
    "RewardModule",
    "NetworkState",
    "EpisodeTrace",
    "TraceStep",
    "record_episode",
    "verify_determinism",
    "VecStep",
    "BaseVectorEnv",
    "BatchedVectorEnv",
    "VectorEnv",
    "ProcessVectorEnv",
    "ShmVectorEnv",
    "SupervisionConfig",
    "WorkerDiedError",
]
