"""Intrusion detection system model (Section 3.1 + appendix IDS module).

Three alert channels:

1. **Action alerts** -- each APT action attempt may alert with its base
   rate; message actions multiply the rate by the device factor of every
   device on the path (switch x1, router x2, firewall x5).
2. **Passive alerts** -- each compromised node alerts with hourly
   probability 0.1, reduced by cleanup effectiveness when the node has
   the Malware Cleaned condition. Severity reflects compromise depth.
3. **False alerts** -- per PERA level per hour, severity 1/2/3 fire with
   probability 5e-2 / 5e-3 / 2.5e-3 and are attributed to a random node
   on that level.
"""

from __future__ import annotations

import numpy as np

from repro.config import IDSConfig
from repro.net.nodes import Condition
from repro.net.topology import Topology
from repro.sim.apt_actions import APTActionRequest, APT_ACTION_SPECS
from repro.sim.observations import Alert, AlertSource
from repro.sim.state import NetworkState

__all__ = ["IDSModule"]


class IDSModule:
    def __init__(self, config: IDSConfig, topology: Topology, rng: np.random.Generator):
        self.config = config
        self.topology = topology
        self.rng = rng
        self._nodes_by_level = {
            level: [n.node_id for n in topology.nodes if n.level == level]
            for level in (1, 2)
        }
        # per-topology invariants for the false-alert channel: level node
        # pools as arrays (rng.choice would otherwise re-convert each call)
        self._false_levels = [
            (level, np.asarray(nodes, dtype=np.int64))
            for level, nodes in self._nodes_by_level.items()
            if nodes
        ]
        self._false_rates = tuple(config.false_alert_rates)
        self._n_false_draws = len(self._false_levels) * len(self._false_rates)
        self._rate_buf = np.empty(topology.n_nodes)

    # ------------------------------------------------------------------
    # channel 1: APT action alerts (drawn at launch)
    # ------------------------------------------------------------------
    def action_alert(
        self, req: APTActionRequest, state: NetworkState, t: int
    ) -> Alert | None:
        spec = APT_ACTION_SPECS[req.atype]
        rate = spec.alert_rate
        if rate <= 0.0:
            return None
        alert_node = req.source
        if spec.is_message:
            dst_vlan = self._destination_vlan(req, state)
            rate *= self.topology.alert_factor(
                state.node_vlan[req.source], dst_vlan, self.config
            )
            if req.target_node is not None:
                alert_node = req.target_node
        if self.rng.random() < min(1.0, rate):
            return Alert(t, spec.severity, alert_node, source=AlertSource.APT_ACTION)
        return None

    def _destination_vlan(self, req: APTActionRequest, state: NetworkState) -> str:
        if req.target_vlan is not None:
            return req.target_vlan
        if req.target_node is not None:
            return state.node_vlan[req.target_node]
        if req.target_plc is not None:
            return self.topology.plcs[req.target_plc].vlan
        return state.node_vlan[req.source]

    # ------------------------------------------------------------------
    # channel 2: passive alerts on compromised nodes
    # ------------------------------------------------------------------
    def passive_alerts(
        self, state: NetworkState, t: int, cleanup_effectiveness: float
    ) -> list[Alert]:
        alerts: list[Alert] = []
        conditions = state.conditions
        compromised = state.compromised_ids()
        if compromised.size == 0:
            return alerts
        rates = self._rate_buf[:compromised.size]
        rates.fill(self.config.passive_alert_rate)
        cleaned = conditions[compromised, Condition.CLEANED]
        rates[cleaned] *= 1.0 - cleanup_effectiveness
        draws = self.rng.random(compromised.size) < rates
        if not draws.any():
            return alerts
        admin = conditions[:, Condition.ADMIN]
        for node_id in compromised[draws].tolist():
            severity = 2 if admin[node_id] else 1
            alerts.append(Alert(t, severity, node_id, source=AlertSource.PASSIVE))
        return alerts

    # ------------------------------------------------------------------
    # channel 3: false alerts
    # ------------------------------------------------------------------
    def false_alerts(self, t: int) -> list[Alert]:
        alerts: list[Alert] = []
        rng = self.rng
        # one batched uniform draw covers every (level, severity) channel
        draws = rng.random(self._n_false_draws).tolist()
        j = 0
        for level, nodes in self._false_levels:
            severity = 0
            for rate in self._false_rates:
                severity += 1
                if draws[j] < rate:
                    # same stream as rng.choice(nodes) (Generator.choice
                    # reduces to one integers() draw for a plain 1-D
                    # pool) without its per-call validation overhead
                    node_id = int(nodes[rng.integers(0, len(nodes))])
                    alerts.append(
                        Alert(t, severity, node_id, source=AlertSource.FALSE)
                    )
                j += 1
        return alerts
