"""APT action definitions and execution (paper Table 5).

Each action has a success probability, a Binomial(n, p) duration
distribution in hours, a base IDS alert rate, and a severity class.
"Message" actions originate on one node and act on another object
through the network; their alert rate is multiplied by the device factor
of every networking device on the path (appendix, IDS module).

Preconditions are re-validated when an action *completes*: if the
defender has, for example, re-imaged the source node mid-action, the
action fails silently. This is what forces the FSM attacker to revert
to earlier phases after successful mitigations.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import APTConfig
from repro.net.nodes import Condition, ServerRole
from repro.net.topology import Topology
from repro.sim.state import NetworkState

__all__ = [
    "APTActionType",
    "APTActionSpec",
    "APT_ACTION_SPECS",
    "APTActionRequest",
    "APTKnowledge",
    "APTView",
    "sample_duration",
    "apply_apt_action",
]


class APTActionType(enum.Enum):
    # lateral movement
    SCAN_VLAN = "scan_vlan"
    COMPROMISE = "compromise"
    REBOOT_PERSIST = "reboot_persist"
    ESCALATE = "escalate"
    CRED_PERSIST = "cred_persist"
    CLEANUP = "cleanup"
    # vertical movement
    DISCOVER_VLAN = "discover_vlan"
    DISCOVER_SERVER = "discover_server"
    ANALYZE_HISTORIAN = "analyze_historian"
    # attack
    DISCOVER_PLC = "discover_plc"
    FLASH_FIRMWARE = "flash_firmware"
    DISRUPT_PLC = "disrupt_plc"
    DESTROY_PLC = "destroy_plc"


@dataclass(frozen=True)
class APTActionSpec:
    atype: APTActionType
    success_prob: float
    time_n: int  # Binomial n
    time_p: float  # Binomial p
    alert_rate: float
    is_message: bool  # message actions multiply alert rate by device factors
    severity: int  # IDS alert severity if an alert fires

    @property
    def expected_duration(self) -> float:
        return self.time_n * self.time_p


def _spec(atype, success, n, p, rate, message, severity) -> APTActionSpec:
    return APTActionSpec(atype, success, n, p, rate, message, severity)


#: Table 5, verbatim. Severity classes follow DESIGN.md Section 5.
APT_ACTION_SPECS: dict[APTActionType, APTActionSpec] = {
    APTActionType.SCAN_VLAN: _spec(APTActionType.SCAN_VLAN, 1.0, 60, 0.9, 0.01, True, 1),
    APTActionType.COMPROMISE: _spec(APTActionType.COMPROMISE, 0.9, 60, 0.8, 0.05, True, 2),
    APTActionType.REBOOT_PERSIST: _spec(APTActionType.REBOOT_PERSIST, 1.0, 4, 0.9, 0.05, False, 2),
    APTActionType.ESCALATE: _spec(APTActionType.ESCALATE, 1.0, 22, 0.9, 0.05, False, 2),
    APTActionType.CRED_PERSIST: _spec(APTActionType.CRED_PERSIST, 1.0, 4, 0.9, 0.05, False, 2),
    APTActionType.CLEANUP: _spec(APTActionType.CLEANUP, 1.0, 4, 0.9, 0.05, False, 2),
    APTActionType.DISCOVER_VLAN: _spec(APTActionType.DISCOVER_VLAN, 1.0, 60, 0.9, 0.05, True, 1),
    APTActionType.DISCOVER_SERVER: _spec(APTActionType.DISCOVER_SERVER, 1.0, 60, 0.9, 0.01, True, 1),
    APTActionType.ANALYZE_HISTORIAN: _spec(APTActionType.ANALYZE_HISTORIAN, 1.0, 600, 0.9, 0.0, False, 2),
    APTActionType.DISCOVER_PLC: _spec(APTActionType.DISCOVER_PLC, 1.0, 24, 0.875, 0.03, True, 1),
    APTActionType.FLASH_FIRMWARE: _spec(APTActionType.FLASH_FIRMWARE, 1.0, 1, 1.0, 0.5, True, 3),
    APTActionType.DISRUPT_PLC: _spec(APTActionType.DISRUPT_PLC, 1.0, 8, 0.9, 0.9, True, 3),
    APTActionType.DESTROY_PLC: _spec(APTActionType.DESTROY_PLC, 1.0, 1, 1.0, 1.0, True, 3),
}


def sample_duration(
    spec: APTActionSpec, rng: np.random.Generator, time_scale: float = 1.0
) -> int:
    """Sample an action duration in hours (Binomial, scaled, min 1)."""
    hours = rng.binomial(spec.time_n, spec.time_p)
    return max(1, math.ceil(hours / time_scale))


@dataclass(frozen=True)
class APTActionRequest:
    """An attacker decision: run ``atype`` from ``source`` on ``target``.

    ``target_node`` / ``target_vlan`` / ``target_plc`` are mutually
    exclusive; which one applies depends on the action type.
    """

    atype: APTActionType
    source: int
    target_node: int | None = None
    target_vlan: str | None = None
    target_plc: int | None = None

    def target_key(self) -> tuple:
        return (self.atype, self.target_node, self.target_vlan, self.target_plc)


@dataclass
class APTKnowledge:
    """What the attacker has learned about the network.

    The APT has full knowledge of nodes under its control (Section 3.1
    appendix); everything else must be discovered. ``known_vlan``
    records where a node was when last scanned -- if the defender moved
    it (quarantine), actions against the stale location fail until the
    node is re-scanned.
    """

    scanned_vlans: set[str] = field(default_factory=set)
    discovered_vlans: set[str] = field(default_factory=set)
    discovered_servers: set[int] = field(default_factory=set)
    discovered_plcs: set[int] = field(default_factory=set)
    known_vlan: dict[int, str] = field(default_factory=dict)
    historian_analyzed: bool = False
    historian_analysis_started: bool = False


class APTView:
    """Read-only view handed to attacker policies each decision step.

    The underlying state is frozen for the duration of one attacker
    decision, so the controlled-node queries are memoized per view.
    A plain ``__slots__`` class rather than a dataclass: one view is
    built per attacker consult, which makes construction cost part of
    the per-step budget.
    """

    __slots__ = (
        "t", "state", "knowledge", "topology", "labor_available",
        "in_flight", "_key_set", "_controlled", "_controlled_by_level",
        "_controlled_hmis",
    )

    def __init__(
        self,
        t: int,
        state: NetworkState,
        knowledge: APTKnowledge,
        topology: Topology,
        labor_available: int,
        in_flight: list[APTActionRequest],
        key_set=None,
    ):
        self.t = t
        self.state = state
        self.knowledge = knowledge
        self.topology = topology
        self.labor_available = labor_available
        self.in_flight = in_flight
        #: optional precomputed target keys (any set-like supporting
        #: membership and iteration), e.g. the engine's live tally
        self._key_set = key_set
        self._controlled: list[int] | None = None
        self._controlled_by_level: dict[int, list[int]] = {}
        self._controlled_hmis: list[int] | None = None

    def controlled_nodes(self) -> list[int]:
        """Nodes the APT has command and control on, excluding quarantined
        nodes it cannot currently reach."""
        if self._controlled is None:
            self._controlled = self.state.reachable_compromised()
        return self._controlled

    def controlled_in_level(self, level: int) -> list[int]:
        cached = self._controlled_by_level.get(level)
        if cached is None:
            levels = self.topology.node_levels
            cached = [i for i in self.controlled_nodes() if levels[i] == level]
            self._controlled_by_level[level] = cached
        return cached

    def controlled_hmis(self) -> list[int]:
        """Controlled nodes that are HMIs (memoized per view; used by
        both phase criteria and sub-policies within one decision)."""
        cached = self._controlled_hmis
        if cached is None:
            hmis = self.topology.hmi_id_set
            cached = [n for n in self.controlled_nodes() if n in hmis]
            self._controlled_hmis = cached
        return cached

    def in_flight_keys(self) -> set[tuple]:
        keys = self._key_set
        if keys is None:
            keys = self._key_set = {req.target_key() for req in self.in_flight}
        return keys


def _source_ok(state: NetworkState, source: int) -> bool:
    return state.is_compromised(source) and not state.is_quarantined(source)


def _reachable(topology: Topology, state: NetworkState, source: int, vlan: str) -> bool:
    return topology.reachable(state.node_vlan[source], vlan)


def apply_apt_action(
    req: APTActionRequest,
    state: NetworkState,
    knowledge: APTKnowledge,
    topology: Topology,
    config: APTConfig,
    rng: np.random.Generator,
) -> bool:
    """Apply a completed APT action. Returns True if it took effect."""
    atype = req.atype

    if atype is APTActionType.SCAN_VLAN:
        vlan = req.target_vlan
        if not _source_ok(state, req.source) or not _reachable(topology, state, req.source, vlan):
            return False
        for node_id in topology.nodes_in_vlan(vlan, state.node_vlan):
            state.set_condition(node_id, Condition.SCANNED)
            knowledge.known_vlan[node_id] = vlan
        knowledge.scanned_vlans.add(vlan)
        return True

    if atype is APTActionType.COMPROMISE:
        target = req.target_node
        actual_vlan = state.node_vlan[target]
        if not _source_ok(state, req.source):
            return False
        if knowledge.known_vlan.get(target) != actual_vlan:
            return False  # stale location: node was moved since last scan
        if not state.has_condition(target, Condition.SCANNED):
            return False
        if not _reachable(topology, state, req.source, actual_vlan):
            return False
        return state.set_condition(target, Condition.COMPROMISED)

    if atype in (
        APTActionType.REBOOT_PERSIST,
        APTActionType.ESCALATE,
        APTActionType.CRED_PERSIST,
        APTActionType.CLEANUP,
    ):
        target = req.target_node
        if not state.is_compromised(target):
            return False
        cond = {
            APTActionType.REBOOT_PERSIST: Condition.REBOOT_PERSIST,
            APTActionType.ESCALATE: Condition.ADMIN,
            APTActionType.CRED_PERSIST: Condition.CRED_PERSIST,
            APTActionType.CLEANUP: Condition.CLEANED,
        }[atype]
        return state.set_condition(target, cond)

    if atype is APTActionType.DISCOVER_VLAN:
        if not _source_ok(state, req.source):
            return False
        knowledge.discovered_vlans.update(topology.ops_vlans())
        return True

    if atype is APTActionType.DISCOVER_SERVER:
        vlan = req.target_vlan
        if not _source_ok(state, req.source) or not _reachable(topology, state, req.source, vlan):
            return False
        for node_id in topology.nodes_in_vlan(vlan, state.node_vlan):
            if topology.nodes[node_id].is_server:
                knowledge.discovered_servers.add(node_id)
                state.set_condition(node_id, Condition.SCANNED)
                knowledge.known_vlan[node_id] = vlan
        return True

    if atype is APTActionType.ANALYZE_HISTORIAN:
        historian = topology.server(ServerRole.HISTORIAN)
        if historian is None:
            return False
        if not state.has_condition(historian.node_id, Condition.ADMIN):
            return False
        knowledge.historian_analyzed = True
        return True

    if atype is APTActionType.DISCOVER_PLC:
        vlan = req.target_vlan
        if not _source_ok(state, req.source) or not _reachable(topology, state, req.source, vlan):
            return False
        undiscovered = [
            p.plc_id for p in topology.plcs
            if p.vlan == vlan and p.plc_id not in knowledge.discovered_plcs
        ]
        if not undiscovered:
            return True
        k = min(config.plcs_per_discovery, len(undiscovered))
        chosen = rng.choice(len(undiscovered), size=k, replace=False)
        knowledge.discovered_plcs.update(undiscovered[int(i)] for i in chosen)
        return True

    if atype in (
        APTActionType.FLASH_FIRMWARE,
        APTActionType.DISRUPT_PLC,
        APTActionType.DESTROY_PLC,
    ):
        plc_id = req.target_plc
        plc = topology.plcs[plc_id]
        if not _source_ok(state, req.source):
            return False
        if not state.has_condition(req.source, Condition.ADMIN):
            return False
        if not _reachable(topology, state, req.source, plc.vlan):
            return False
        if state.plc_destroyed[plc_id]:
            return False
        if atype is APTActionType.FLASH_FIRMWARE:
            state.plc_firmware[plc_id] = True
            return True
        if atype is APTActionType.DISRUPT_PLC:
            state.plc_disrupted[plc_id] = True
            return True
        # DESTROY_PLC: destruction requires previously flashed firmware
        if not state.plc_firmware[plc_id]:
            return False
        state.plc_destroyed[plc_id] = True
        return True

    raise ValueError(f"unhandled APT action {atype}")  # pragma: no cover
