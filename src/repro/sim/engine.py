"""The network simulation engine.

One :meth:`Simulation.step` call advances the clock by one hour (the
paper's decision resolution). Within a step:

1. defender actions chosen from the previous observation are launched
   (each occupies its target until completion);
2. the attacker policy observes its view and launches new actions,
   limited by its labor budget;
3. the clock advances and all actions completing by the new hour take
   effect (with preconditions re-validated);
4. the IDS emits passive and false alerts;
5. the reward module scores the step and a new observation is built.

Episodes are deterministic given (config, attacker policy, seed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.config import SimConfig
from repro.net.nodes import NodeType
from repro.net.topology import Topology, build_topology
from repro.sim.apt_actions import (
    APT_ACTION_SPECS,
    APTActionRequest,
    APTActionType,
    APTKnowledge,
    APTView,
    apply_apt_action,
    sample_duration,
)
from repro.sim.events import EventQueue
from repro.sim.ids import IDSModule
from repro.sim.observations import Alert, Observation, ScanResult
from repro.sim.orchestrator import (
    DEFENDER_ACTION_SPECS,
    DefenderAction,
    apply_mitigation,
    enumerate_actions,
    scan_detection_prob,
)
from repro.sim.reward import RewardModule
from repro.sim.state import NetworkState
from repro.utils.rng import RngFactory

__all__ = ["Simulation", "StepResult"]


@dataclass
class StepResult:
    observation: Observation
    reward: float
    done: bool
    info: dict[str, Any]


class Simulation:
    """INASIM core: network state, event queue, IDS, attacker, reward."""

    def __init__(self, config: SimConfig, attacker, seed: int | None = None,
                 record_truth: bool = True):
        self.config = config
        self.attacker = attacker
        self.topology: Topology = build_topology(config.topology)
        self.reward_module = RewardModule(config.reward)
        self.actions: list[DefenderAction] = enumerate_actions(self.topology)
        self.record_truth = record_truth
        self._skip_saturated = bool(getattr(attacker, "skip_when_saturated", False))
        self._attacker_observe = getattr(attacker, "observe", None)
        self._mark_phase_dirty = getattr(attacker, "mark_phase_dirty", None)
        self._labor_rate = int(config.apt.labor_rate)
        self.reset(seed)

    # ------------------------------------------------------------------
    def reset(self, seed: int | None = None) -> Observation:
        self.rngs = RngFactory(seed)
        self.state = NetworkState(self.topology)
        self.ids = IDSModule(self.config.ids, self.topology, self.rngs.child("ids"))
        self.knowledge = APTKnowledge()
        self.queue = EventQueue()
        self._apt_rng = self.rngs.child("apt")
        self._def_rng = self.rngs.child("defender")
        self.in_flight: list[APTActionRequest] = []
        #: multiset of in-flight target keys, maintained incrementally
        #: so each attacker consult skips re-deriving them from scratch
        self._in_flight_keys: dict[tuple, int] = {}
        #: latest busy-until hour across all nodes/PLCs; lets hot paths
        #: rule out any active busy window with one scalar compare
        self._max_busy = 0
        self._beachhead_rng = self.rngs.child("beachhead")
        self._reintrusion_at: int | None = None
        self._phase_stale = True
        self._beachhead = self._establish_beachhead()
        self.attacker.reset(self.rngs.child("attacker-policy"))
        return self._observation([], [])

    def _establish_beachhead(self) -> int:
        """Initial intrusion: the APT controls one random L2 workstation."""
        candidates = [
            n.node_id for n in self.topology.nodes
            if n.ntype is NodeType.WORKSTATION and n.level == 2
        ]
        node_id = int(self._beachhead_rng.choice(candidates))
        from repro.net.nodes import Condition

        self.state.set_condition(node_id, Condition.SCANNED)
        self.state.set_condition(node_id, Condition.COMPROMISED)
        self.knowledge.known_vlan[node_id] = self.state.node_vlan[node_id]
        return node_id

    def _apt_has_access(self) -> bool:
        """True while the APT controls at least one reachable node."""
        return self.state.has_reachable_compromise()

    def _maybe_reintrude(self, t1: int) -> bool:
        """APTs that lose all access mount a new initial intrusion
        (e.g. fresh social engineering) after a re-intrusion delay.
        Without this, a single lucky eviction ends a six-month campaign,
        which contradicts the persistence that defines APTs (Section 3).
        Returns True when a new beachhead was just established.
        """
        if self._apt_has_access():
            self._reintrusion_at = None
            return False
        if self._reintrusion_at is None:
            apt = self.config.apt
            n = max(1, round(apt.reintrusion_hours / 0.9))
            delay = self._beachhead_rng.binomial(n, 0.9) / apt.time_scale
            self._reintrusion_at = t1 + max(1, int(delay))
        elif t1 >= self._reintrusion_at:
            self._beachhead = self._establish_beachhead()
            self._reintrusion_at = None
            return True
        return False

    # ------------------------------------------------------------------
    # step phases -- the batched engine drives these per lane and
    # replaces only the trailing IDS/reward/observation assembly with
    # array programs, so the per-lane dynamics live in exactly one place
    # ------------------------------------------------------------------
    def step_launch(
        self, defender_actions: Iterable[DefenderAction], t0: int
    ) -> list[DefenderAction]:
        """Phase 1: launch defender actions chosen from the last obs."""
        launched: list[DefenderAction] = []
        for action in defender_actions:
            if self._launch_defender(action, t0):
                launched.append(action)
        return launched

    def step_attacker(self, t0: int, t1: int, alerts: list[Alert]) -> None:
        """Phase 2: attacker turn.

        An attacker that recomputes its decisions from the live state
        (skip_when_saturated) is not consulted while its labor budget is
        exhausted -- its requests would be truncated away regardless.
        Its *reported* phase is a pure function of (state, knowledge),
        so while skipping it only needs a refresh (observe(); draws no
        randomness) after those inputs actually changed -- completions,
        re-intrusion, or the knowledge updates of a previous act().
        """
        labor_available = max(0, self._labor_rate - len(self.in_flight))
        if labor_available > 0 or not self._skip_saturated:
            # the view aliases the live in-flight list/key multiset; both
            # are only read inside act()/observe(), before any launch
            # below mutates them
            view = APTView(
                t0, self.state, self.knowledge, self.topology,
                labor_available, self.in_flight,
                self._in_flight_keys.keys(),
            )
            requests = list(self.attacker.act(view))[:labor_available]
            for req in requests:
                self._launch_apt(req, t0, alerts, t1)
            self._phase_stale = True  # act() may mutate knowledge after
        elif self._attacker_observe is not None and self._phase_stale:
            self._attacker_observe(APTView(
                t0, self.state, self.knowledge, self.topology,
                labor_available, self.in_flight,
                self._in_flight_keys.keys(),
            ))
            self._phase_stale = False

    def step_advance(
        self, t1: int, scan_results: list[ScanResult]
    ) -> tuple[float, list[DefenderAction]]:
        """Phases 3+4: advance the clock, apply completions, re-intrude."""
        self.state.t = t1
        completed_cost = 0.0
        completed_defender: list[DefenderAction] = []
        due = self.queue.pop_due(t1)
        if due:
            self._phase_stale = True
            if self._mark_phase_dirty is not None:
                self._mark_phase_dirty()
        for payload in due:
            kind = payload[0]
            if kind == "apt":
                _, req, success = payload
                self._complete_apt(req, success)
            else:
                _, action = payload
                completed_cost += self._complete_defender(action, t1, scan_results)
                completed_defender.append(action)

        if self._maybe_reintrude(t1):
            self._phase_stale = True
            if self._mark_phase_dirty is not None:
                self._mark_phase_dirty()
        return completed_cost, completed_defender

    # ------------------------------------------------------------------
    def step(self, defender_actions: Iterable[DefenderAction]) -> StepResult:
        t0 = self.state.t
        t1 = t0 + 1
        alerts: list[Alert] = []
        scan_results: list[ScanResult] = []

        launched = self.step_launch(defender_actions, t0)
        self.step_attacker(t0, t1, alerts)
        completed_cost, completed_defender = self.step_advance(t1, scan_results)

        # 5. passive and false alerts for this hour
        alerts.extend(
            self.ids.passive_alerts(
                self.state, t1, self.config.apt.cleanup_effectiveness
            )
        )
        alerts.extend(self.ids.false_alerts(t1))

        # 5. reward (PLC / compromise tallies computed once, shared with
        # the info dict below — these reductions are per-step hot path)
        state = self.state
        n_compromised = state.n_compromised()
        n_srv = state.n_servers_compromised()
        n_destroyed = int(np.count_nonzero(state.plc_destroyed))
        n_offline = int(np.count_nonzero(state.plc_disrupted | state.plc_destroyed))
        n_disrupted = n_offline - n_destroyed  # disrupted & not destroyed
        breakdown = self.reward_module.compute(
            n_disrupted,
            n_destroyed,
            completed_cost,
            t1,
            self.config.tmax,
        )
        done = t1 >= self.config.tmax

        observation = self._observation(alerts, scan_results)
        observation.completed_actions = completed_defender
        info: dict[str, Any] = {
            "t": t1,
            "reward_breakdown": breakdown,
            "it_cost": completed_cost,
            "n_compromised": n_compromised,
            "n_ws_compromised": n_compromised - n_srv,
            "n_srv_compromised": n_srv,
            "n_plcs_offline": n_offline,
            "n_plcs_disrupted": n_disrupted,
            "n_plcs_destroyed": n_destroyed,
            "launched": launched,
            "completed": completed_defender,
            "apt_phase": getattr(self.attacker, "phase_name", None),
        }
        if self.record_truth:
            info["conditions"] = state.conditions.copy()
        return StepResult(observation, breakdown.total, done, info)

    # ------------------------------------------------------------------
    def _launch_defender(self, action: DefenderAction, t0: int) -> bool:
        if action.is_noop:
            return False
        spec = DEFENDER_ACTION_SPECS[action.atype]
        until = t0 + spec.duration
        if spec.targets == "node":
            if self.state.node_busy_until[action.target] > t0:
                return False
            self.state.node_busy_until[action.target] = until
        elif spec.targets == "plc":
            if self.state.plc_busy_until[action.target] > t0:
                return False
            self.state.plc_busy_until[action.target] = until
        if until > self._max_busy:
            self._max_busy = until
        self.queue.push(until, ("def", action))
        return True

    def _launch_apt(
        self, req: APTActionRequest, t0: int, alerts: list[Alert], alert_t: int
    ) -> None:
        spec = APT_ACTION_SPECS[req.atype]
        success = self._apt_rng.random() < spec.success_prob
        duration = sample_duration(spec, self._apt_rng, self.config.apt.time_scale)
        alert = self.ids.action_alert(req, self.state, alert_t)
        if alert is not None:
            alerts.append(alert)
        if req.atype is APTActionType.ANALYZE_HISTORIAN:
            self.knowledge.historian_analysis_started = True
            if self._mark_phase_dirty is not None:
                self._mark_phase_dirty()
        self.queue.push(t0 + duration, ("apt", req, success))
        self.in_flight.append(req)
        key = req.target_key()
        keys = self._in_flight_keys
        keys[key] = keys.get(key, 0) + 1

    def _complete_apt(self, req: APTActionRequest, success: bool) -> None:
        self.in_flight.remove(req)
        key = req.target_key()
        keys = self._in_flight_keys
        count = keys.get(key, 0) - 1
        if count > 0:
            keys[key] = count
        else:
            keys.pop(key, None)
        applied = False
        if success:
            applied = apply_apt_action(
                req, self.state, self.knowledge, self.topology,
                self.config.apt, self._apt_rng,
            )
        if req.atype is APTActionType.ANALYZE_HISTORIAN and not applied:
            # analysis was interrupted; the FSM must re-start it
            self.knowledge.historian_analysis_started = self.knowledge.historian_analyzed

    def _complete_defender(
        self, action: DefenderAction, t1: int, scan_results: list[ScanResult]
    ) -> float:
        spec = DEFENDER_ACTION_SPECS[action.atype]
        if spec.targets == "plc":
            apply_mitigation(action, self.state, self.topology)
            return spec.cost_host
        node = self.topology.nodes[action.target]
        if spec.is_investigation:
            p = scan_detection_prob(
                spec, self.state, action.target,
                self.config.apt.cleanup_effectiveness,
            )
            detected = bool(self._def_rng.random() < p)
            scan_results.append(ScanResult(t1, action.target, detected, action.atype))
        else:
            apply_mitigation(action, self.state, self.topology)
        return spec.cost(node.is_server)

    # ------------------------------------------------------------------
    def _observation(
        self, alerts: list[Alert], scan_results: list[ScanResult]
    ) -> Observation:
        state = self.state
        t = state.t
        quarantined = state.quarantined.copy()
        return Observation(
            t=t,
            alerts=alerts,
            scan_results=scan_results,
            plc_disrupted=state.plc_disrupted.copy(),
            plc_destroyed=state.plc_destroyed.copy(),
            node_busy=state.node_busy_until > t,
            plc_busy=state.plc_busy_until > t,
            quarantined=quarantined,
        )
