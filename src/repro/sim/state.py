"""Dynamic network state: node compromise conditions and PLC status.

Conditions are stored as a boolean matrix (nodes x conditions) so the
DBN filter, reward module, and shaping potential can read counts with
vectorized operations. The prerequisite chain of Table 1 is enforced on
every write.
"""

from __future__ import annotations

from bisect import insort

import numpy as np

from repro.net.nodes import CONDITION_PREREQS, Condition, NodeType
from repro.net.topology import Topology

__all__ = ["NetworkState"]


class NetworkState:
    def __init__(self, topology: Topology):
        self.topology = topology
        n, m = topology.n_nodes, topology.n_plcs
        self.t = 0
        #: bumped by every mutator method; phase-caching consumers
        #: (FSMAttacker) use it to notice out-of-band state edits
        self.version = 0
        self.conditions = np.zeros((n, len(Condition)), dtype=bool)
        self.node_vlan: list[str] = [node.home_vlan for node in topology.nodes]
        self._home_vlan: list[str] = list(self.node_vlan)
        #: boolean mirror of "node is off its home VLAN", kept in sync by
        #: :meth:`move_node` so hot paths avoid per-node string compares
        self.quarantined = np.zeros(n, dtype=bool)
        self.plc_firmware = np.zeros(m, dtype=bool)
        self.plc_disrupted = np.zeros(m, dtype=bool)
        self.plc_destroyed = np.zeros(m, dtype=bool)
        #: hour until which a defender action occupies each node / PLC
        self.node_busy_until = np.zeros(n, dtype=np.int64)
        self.plc_busy_until = np.zeros(m, dtype=np.int64)
        self._is_server = np.array(
            [node.ntype is NodeType.SERVER for node in topology.nodes]
        )
        # incremental compromise bookkeeping: every COMPROMISED write goes
        # through set_condition/clear_node, so the sorted id list, the
        # membership set, and the server tally stay exact and O(1) to read
        self._comp_ids: list[int] = []
        self._comp_set: set[int] = set()
        self._comp_arr: np.ndarray | None = None
        self._n_srv_comp = 0
        self._quar_set: set[int] = set()

    # ------------------------------------------------------------------
    # condition manipulation
    # ------------------------------------------------------------------
    def set_condition(self, node_id: int, cond: Condition) -> bool:
        """Set a compromise condition if its Table 1 prerequisite holds."""
        prereq = CONDITION_PREREQS[cond]
        if prereq is not None and not self.conditions[node_id, prereq]:
            return False
        self.version += 1
        self.conditions[node_id, cond] = True
        if cond is Condition.COMPROMISED and node_id not in self._comp_set:
            insort(self._comp_ids, node_id)
            self._comp_set.add(node_id)
            self._comp_arr = None
            if self._is_server[node_id]:
                self._n_srv_comp += 1
        return True

    def has_condition(self, node_id: int, cond: Condition) -> bool:
        return bool(self.conditions[node_id, cond])

    def clear_node(self, node_id: int) -> None:
        """Return a node to nominal (all compromise conditions removed)."""
        self.version += 1
        self.conditions[node_id, :] = False
        if node_id in self._comp_set:
            self._comp_set.discard(node_id)
            self._comp_ids.remove(node_id)
            self._comp_arr = None
            if self._is_server[node_id]:
                self._n_srv_comp -= 1

    def is_compromised(self, node_id: int) -> bool:
        return bool(self.conditions[node_id, Condition.COMPROMISED])

    def is_quarantined(self, node_id: int) -> bool:
        return bool(self.quarantined[node_id])

    def move_node(self, node_id: int, vlan: str) -> None:
        if vlan not in self.topology.vlans:
            raise KeyError(f"unknown VLAN {vlan!r}")
        self.version += 1
        self.node_vlan[node_id] = vlan
        off_home = vlan != self._home_vlan[node_id]
        self.quarantined[node_id] = off_home
        if off_home:
            self._quar_set.add(node_id)
        else:
            self._quar_set.discard(node_id)

    # ------------------------------------------------------------------
    # busy bookkeeping (one defender action per node / PLC at a time)
    # ------------------------------------------------------------------
    def node_busy(self, node_id: int) -> bool:
        return bool(self.node_busy_until[node_id] > self.t)

    def plc_busy(self, plc_id: int) -> bool:
        return bool(self.plc_busy_until[plc_id] > self.t)

    # ------------------------------------------------------------------
    # aggregate queries
    # ------------------------------------------------------------------
    def compromised_mask(self) -> np.ndarray:
        return self.conditions[:, Condition.COMPROMISED].copy()

    def compromised_ids(self) -> np.ndarray:
        """Ascending ids of compromised nodes (cached between writes)."""
        arr = self._comp_arr
        if arr is None:
            arr = self._comp_arr = np.array(self._comp_ids, dtype=np.intp)
        return arr

    def reachable_compromised(self) -> list[int]:
        """Ascending compromised node ids the APT can still reach."""
        if not self._quar_set:
            return list(self._comp_ids)
        quarantined = self._quar_set
        return [i for i in self._comp_ids if i not in quarantined]

    def has_reachable_compromise(self) -> bool:
        """True while at least one compromised node is unquarantined."""
        return not self._comp_set <= self._quar_set

    def n_compromised(self) -> int:
        return len(self._comp_ids)

    def n_workstations_compromised(self) -> int:
        return len(self._comp_ids) - self._n_srv_comp

    def n_servers_compromised(self) -> int:
        return self._n_srv_comp

    def n_plcs_disrupted(self) -> int:
        """Disrupted but not destroyed (destruction subsumes disruption)."""
        return int((self.plc_disrupted & ~self.plc_destroyed).sum())

    def n_plcs_destroyed(self) -> int:
        return int(self.plc_destroyed.sum())

    def n_plcs_offline(self) -> int:
        # plain-Python counting: PLC arrays are a handful of elements,
        # and this runs inside the attacker's per-step criteria walk
        destroyed = self.plc_destroyed.tolist()
        return sum(
            1 for p, d in zip(self.plc_disrupted.tolist(), destroyed) if p or d
        )

    def snapshot(self) -> dict:
        """Ground-truth snapshot used for logging and DBN learning."""
        return {
            "t": self.t,
            "conditions": self.conditions.copy(),
            "node_vlan": list(self.node_vlan),
            "plc_disrupted": self.plc_disrupted.copy(),
            "plc_destroyed": self.plc_destroyed.copy(),
            "plc_firmware": self.plc_firmware.copy(),
        }
