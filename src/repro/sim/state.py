"""Dynamic network state: node compromise conditions and PLC status.

Conditions are stored as a boolean matrix (nodes x conditions) so the
DBN filter, reward module, and shaping potential can read counts with
vectorized operations. The prerequisite chain of Table 1 is enforced on
every write.
"""

from __future__ import annotations

import numpy as np

from repro.net.nodes import CONDITION_PREREQS, Condition, NodeType
from repro.net.topology import Topology

__all__ = ["NetworkState"]


class NetworkState:
    def __init__(self, topology: Topology):
        self.topology = topology
        n, m = topology.n_nodes, topology.n_plcs
        self.t = 0
        self.conditions = np.zeros((n, len(Condition)), dtype=bool)
        self.node_vlan: list[str] = [node.home_vlan for node in topology.nodes]
        self.plc_firmware = np.zeros(m, dtype=bool)
        self.plc_disrupted = np.zeros(m, dtype=bool)
        self.plc_destroyed = np.zeros(m, dtype=bool)
        #: hour until which a defender action occupies each node / PLC
        self.node_busy_until = np.zeros(n, dtype=np.int64)
        self.plc_busy_until = np.zeros(m, dtype=np.int64)
        self._is_server = np.array(
            [node.ntype is NodeType.SERVER for node in topology.nodes]
        )

    # ------------------------------------------------------------------
    # condition manipulation
    # ------------------------------------------------------------------
    def set_condition(self, node_id: int, cond: Condition) -> bool:
        """Set a compromise condition if its Table 1 prerequisite holds."""
        prereq = CONDITION_PREREQS[cond]
        if prereq is not None and not self.conditions[node_id, prereq]:
            return False
        self.conditions[node_id, cond] = True
        return True

    def has_condition(self, node_id: int, cond: Condition) -> bool:
        return bool(self.conditions[node_id, cond])

    def clear_node(self, node_id: int) -> None:
        """Return a node to nominal (all compromise conditions removed)."""
        self.conditions[node_id, :] = False

    def is_compromised(self, node_id: int) -> bool:
        return bool(self.conditions[node_id, Condition.COMPROMISED])

    def is_quarantined(self, node_id: int) -> bool:
        return self.node_vlan[node_id] != self.topology.nodes[node_id].home_vlan

    def move_node(self, node_id: int, vlan: str) -> None:
        if vlan not in self.topology.vlans:
            raise KeyError(f"unknown VLAN {vlan!r}")
        self.node_vlan[node_id] = vlan

    # ------------------------------------------------------------------
    # busy bookkeeping (one defender action per node / PLC at a time)
    # ------------------------------------------------------------------
    def node_busy(self, node_id: int) -> bool:
        return bool(self.node_busy_until[node_id] > self.t)

    def plc_busy(self, plc_id: int) -> bool:
        return bool(self.plc_busy_until[plc_id] > self.t)

    # ------------------------------------------------------------------
    # aggregate queries
    # ------------------------------------------------------------------
    def compromised_mask(self) -> np.ndarray:
        return self.conditions[:, Condition.COMPROMISED].copy()

    def n_compromised(self) -> int:
        return int(self.conditions[:, Condition.COMPROMISED].sum())

    def n_workstations_compromised(self) -> int:
        mask = self.conditions[:, Condition.COMPROMISED] & ~self._is_server
        return int(mask.sum())

    def n_servers_compromised(self) -> int:
        mask = self.conditions[:, Condition.COMPROMISED] & self._is_server
        return int(mask.sum())

    def n_plcs_disrupted(self) -> int:
        """Disrupted but not destroyed (destruction subsumes disruption)."""
        return int((self.plc_disrupted & ~self.plc_destroyed).sum())

    def n_plcs_destroyed(self) -> int:
        return int(self.plc_destroyed.sum())

    def n_plcs_offline(self) -> int:
        return int((self.plc_disrupted | self.plc_destroyed).sum())

    def snapshot(self) -> dict:
        """Ground-truth snapshot used for logging and DBN learning."""
        return {
            "t": self.t,
            "conditions": self.conditions.copy(),
            "node_vlan": list(self.node_vlan),
            "plc_disrupted": self.plc_disrupted.copy(),
            "plc_destroyed": self.plc_destroyed.copy(),
            "plc_firmware": self.plc_firmware.copy(),
        }
