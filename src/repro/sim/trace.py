"""Episode trace recording, JSONL serialization, and replay checks.

A trace is the defender-visible record of one episode -- actions
launched, alert volumes, rewards, and compromise telemetry per step --
plus enough metadata (seed, policy, horizon) to re-run it. Traces
support three workflows a deployed ACSO needs:

* **debugging**: inspect exactly what a policy saw and did at any hour;
* **regression**: :func:`verify_determinism` replays an episode and
  compares traces, guarding the simulator's determinism contract
  (episodes are a pure function of config, policy, and seed);
* **data export**: JSONL files feed external analysis without
  unpickling Python objects.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro.sim.orchestrator import DefenderAction, DefenderActionType

__all__ = ["TraceStep", "EpisodeTrace", "record_episode", "verify_determinism"]


@dataclass(frozen=True)
class TraceStep:
    """One hour of defender-visible history."""

    t: int
    #: actions launched this step, as (action type value, target)
    actions: tuple[tuple[str, int | None], ...]
    reward: float
    it_cost: float
    n_alerts: int
    #: alert count by severity (1, 2, 3)
    alerts_by_severity: tuple[int, int, int]
    n_compromised: int
    n_plcs_offline: int
    apt_phase: str | None = None


@dataclass
class EpisodeTrace:
    """A full recorded episode."""

    seed: int | None
    policy: str
    steps: list[TraceStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def total_reward(self) -> float:
        return sum(s.reward for s in self.steps)

    @property
    def total_it_cost(self) -> float:
        return sum(s.it_cost for s in self.steps)

    @property
    def total_alerts(self) -> int:
        return sum(s.n_alerts for s in self.steps)

    def actions_taken(self) -> list[DefenderAction]:
        """Reconstruct the launched DefenderAction objects."""
        out = []
        for step in self.steps:
            for atype_value, target in step.actions:
                out.append(
                    DefenderAction(DefenderActionType(atype_value), target)
                )
        return out

    # ------------------------------------------------------------------
    def to_jsonl(self, path) -> None:
        """Write one header line then one line per step."""
        with open(path, "w") as handle:
            header = {"seed": self.seed, "policy": self.policy,
                      "n_steps": len(self.steps)}
            handle.write(json.dumps(header) + "\n")
            for step in self.steps:
                record = asdict(step)
                record["actions"] = [list(a) for a in step.actions]
                record["alerts_by_severity"] = list(step.alerts_by_severity)
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def from_jsonl(cls, path) -> "EpisodeTrace":
        with open(path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        if not lines:
            raise ValueError(f"empty trace file: {path}")
        header, records = lines[0], lines[1:]
        steps = [
            TraceStep(
                t=r["t"],
                actions=tuple(
                    (a[0], a[1]) for a in r["actions"]
                ),
                reward=r["reward"],
                it_cost=r["it_cost"],
                n_alerts=r["n_alerts"],
                alerts_by_severity=tuple(r["alerts_by_severity"]),
                n_compromised=r["n_compromised"],
                n_plcs_offline=r["n_plcs_offline"],
                apt_phase=r.get("apt_phase"),
            )
            for r in records
        ]
        if header.get("n_steps") != len(steps):
            raise ValueError(
                f"trace truncated: header says {header.get('n_steps')} "
                f"steps, file has {len(steps)}"
            )
        return cls(seed=header.get("seed"), policy=header.get("policy", "?"),
                   steps=steps)


def record_episode(env, policy, seed: int | None = None,
                   max_steps: int | None = None) -> EpisodeTrace:
    """Run one episode and capture its trace."""
    obs = env.reset(seed=seed)
    policy.reset(env)
    horizon = env.config.tmax if max_steps is None else min(
        max_steps, env.config.tmax
    )
    trace = EpisodeTrace(seed=seed, policy=getattr(policy, "name", "?"))
    done, t = False, 0
    while not done and t < horizon:
        actions = policy.act(obs)
        obs, reward, done, info = env.step(actions)
        t = info["t"]
        severities = [0, 0, 0]
        for alert in obs.alerts:
            severities[alert.severity - 1] += 1
        trace.steps.append(
            TraceStep(
                t=t,
                actions=tuple(
                    (a.atype.value, a.target) for a in info["launched"]
                ),
                reward=reward,
                it_cost=info["it_cost"],
                n_alerts=len(obs.alerts),
                alerts_by_severity=tuple(severities),
                n_compromised=info["n_compromised"],
                n_plcs_offline=info["n_plcs_offline"],
                apt_phase=info.get("apt_phase"),
            )
        )
    return trace


def verify_determinism(env_factory, policy_factory, seed: int = 0,
                       max_steps: int | None = None) -> bool:
    """Record the same episode twice from fresh objects and compare.

    Returns True when the traces match step for step -- the
    reproducibility contract every experiment in this repository
    depends on.
    """
    first = record_episode(env_factory(), policy_factory(), seed=seed,
                           max_steps=max_steps)
    second = record_episode(env_factory(), policy_factory(), seed=seed,
                            max_steps=max_steps)
    return first.steps == second.steps
