"""Lockstep vectorized environments: N independent simulations per step.

The ROADMAP's scale story starts here: every consumer that previously
stepped one :class:`~repro.sim.env.InasimEnv` at a time (the evaluation
fan-out, the DQN collector, the CLI) drives a vector environment
instead and amortizes per-step Python overhead over ``num_envs``
simulations.

Three backends implement one contract (:class:`BaseVectorEnv`):

* ``sync`` -- :class:`VectorEnv`, every lane stepped in-process (this
  module);
* ``process`` -- :class:`~repro.sim.vec_backends.ProcessVectorEnv`,
  lanes partitioned across worker processes talking over pipes;
* ``shm`` -- :class:`~repro.sim.vec_backends.ShmVectorEnv`, the process
  backend with reward/done/action-mask batches exchanged through
  ``multiprocessing.shared_memory`` instead of pickle.

Semantics follow the Gym ``VectorEnv`` contract:

* :meth:`reset` seeds env ``i`` with ``seed + i`` and returns the list
  of initial observations;
* :meth:`step` advances every environment by one hour and returns
  stacked numpy reward/done batches plus per-env observations and info
  dicts;
* with ``auto_reset`` (the default) an environment that finishes its
  episode is immediately reset with a fresh deterministic seed
  (``seed + i + num_envs * episode_count``); the terminal observation
  is preserved in ``info["final_observation"]`` and the returned
  observation is the first of the next episode;
* :meth:`action_masks` stacks the per-env action-validity masks into a
  ``(num_envs, n_actions)`` batch for the RL stack.

Episodes are deterministic given (config, seed): two vector envs built
from the same scenario and reset with the same seed produce identical
batched trajectories **regardless of backend** -- the parity tests in
``tests/test_vec_backends.py`` pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.sim.env import InasimEnv
from repro.sim.observations import Observation

__all__ = ["BaseVectorEnv", "VectorEnv", "VecStep"]

_UNSET = object()


@dataclass
class VecStep:
    """One lockstep transition of all environments."""

    observations: list[Observation]
    rewards: np.ndarray  # (num_envs,) float64
    dones: np.ndarray  # (num_envs,) bool
    infos: list[dict[str, Any]]

    def __iter__(self) -> Iterator:
        """Unpack like a Gym step: obs, rewards, dones, infos."""
        return iter((self.observations, self.rewards, self.dones, self.infos))


def _reset_info(env: InasimEnv) -> dict[str, Any]:
    """Ground-truth tallies of a freshly reset lane (shaping bootstrap)."""
    state = env.sim.state
    return {
        "t": state.t,
        "n_compromised": state.n_compromised(),
        "n_ws_compromised": state.n_workstations_compromised(),
        "n_srv_compromised": state.n_servers_compromised(),
    }


class BaseVectorEnv:
    """The lockstep vector-environment contract all backends satisfy.

    Subclasses implement :meth:`reset`, :meth:`reset_env`, :meth:`step`,
    :meth:`action_masks`, and :meth:`close`, and expose ``num_envs``,
    ``config``, ``topology``, ``n_actions``, ``action_list``,
    ``auto_reset``, and ``reset_infos`` (per-lane ground-truth tallies
    refreshed by every reset).
    """

    num_envs: int
    reset_infos: list[dict[str, Any]]

    # -- construction-time metadata -----------------------------------
    @property
    def config(self):
        raise NotImplementedError

    def lane_config(self, i: int):
        """The :class:`~repro.config.SimConfig` lane ``i`` runs.

        Equal to :attr:`config` for homogeneous vector envs; backends
        built from per-lane scenario specs (attacker populations, CEM
        candidate fan-outs) report each lane's own configuration.
        """
        return self.config

    @property
    def topology(self):
        raise NotImplementedError

    @property
    def n_actions(self) -> int:
        raise NotImplementedError

    @property
    def action_list(self):
        raise NotImplementedError

    def policy_env(self, i: int):
        """The environment handed to ``DefenderPolicy.reset`` for lane
        ``i`` (policies read static structure: topology, action list)."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self.num_envs

    # -- lockstep interface -------------------------------------------
    def reset(self, seed=_UNSET) -> list[Observation]:
        raise NotImplementedError

    def reset_env(self, i: int, seed: int | None = None) -> Observation:
        raise NotImplementedError

    def step(self, actions=None, mask: Sequence[bool] | None = None) -> VecStep:
        raise NotImplementedError

    def action_masks(self) -> np.ndarray:
        raise NotImplementedError

    def sample_actions(self, rng) -> np.ndarray:
        """Uniform random valid action index per environment.

        One batched draw over the ``(num_envs, n_actions)`` mask: lane
        ``i`` takes the ``floor(u_i * k_i)``-th of its ``k_i`` valid
        actions, located with a cumulative-sum scan instead of a
        per-row ``rng.choice`` loop.
        """
        masks = self.action_masks()
        counts = masks.sum(axis=1)
        if not counts.all():
            raise ValueError("an environment has no valid action to sample")
        picks = (rng.random(masks.shape[0]) * counts).astype(np.int64)
        np.minimum(picks, counts - 1, out=picks)  # guard u == 1.0 edge
        cumulative = np.cumsum(masks, axis=1)
        return np.argmax(cumulative > picks[:, None], axis=1).astype(np.int64)

    # -- lifecycle ----------------------------------------------------
    def close(self) -> None:
        """Release backend resources (workers, shared buffers)."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- shared helpers -----------------------------------------------
    def _split_actions(self, actions) -> list:
        if actions is None:
            return [None] * self.num_envs
        if isinstance(actions, np.ndarray):
            if actions.shape != (self.num_envs,):
                raise ValueError(
                    f"action array shape {actions.shape} != ({self.num_envs},)"
                )
            return list(actions)
        actions = list(actions)
        if len(actions) != self.num_envs:
            raise ValueError(
                f"expected {self.num_envs} actions, got {len(actions)}"
            )
        return actions


class VectorEnv(BaseVectorEnv):
    """Run ``len(envs)`` independent simulations in lockstep, in-process.

    All environments must share a topology (same action space); build
    them from one scenario via :func:`repro.make_vec`.

    ``lane_offset`` / ``total_envs`` place this instance inside a larger
    logical vector environment: lane ``i`` here is global lane
    ``lane_offset + i`` of ``total_envs``, and the auto-reset reseeding
    schedule uses the *global* geometry. The parallel backends use this
    to run worker-local ``VectorEnv`` groups whose per-lane seed
    schedules are bit-identical to the single-process layout.
    """

    def __init__(self, envs: Sequence[InasimEnv], *, auto_reset: bool = True,
                 base_seed: int | None = None, lane_offset: int = 0,
                 total_envs: int | None = None):
        envs = list(envs)
        if not envs:
            raise ValueError("VectorEnv needs at least one environment")
        n_actions = envs[0].n_actions
        for env in envs[1:]:
            if env.n_actions != n_actions:
                raise ValueError(
                    "all environments must share an action space "
                    f"({env.n_actions} != {n_actions}); build them from "
                    "one scenario"
                )
        self.envs = envs
        self.num_envs = len(envs)
        self.auto_reset = auto_reset
        self._base_seed = base_seed
        self._lane_offset = lane_offset
        self._total_envs = total_envs if total_envs is not None else len(envs)
        self._episode_counts = [0] * self.num_envs
        self._last_obs: list[Observation | None] = [None] * self.num_envs
        self.reset_infos = [_reset_info(env) for env in envs]

    # ------------------------------------------------------------------
    @property
    def config(self):
        return self.envs[0].config

    def lane_config(self, i: int):
        return self.envs[i].config

    @property
    def topology(self):
        return self.envs[0].topology

    @property
    def n_actions(self) -> int:
        return self.envs[0].n_actions

    @property
    def action_list(self):
        return self.envs[0].action_list

    def policy_env(self, i: int):
        return self.envs[i]

    # ------------------------------------------------------------------
    def _seed_for(self, i: int) -> int | None:
        if self._base_seed is None:
            return None
        return (self._base_seed + self._lane_offset + i
                + self._total_envs * self._episode_counts[i])

    def reset(self, seed: int | None | object = _UNSET) -> list[Observation]:
        """Reset every environment; env ``i`` gets ``seed + i``."""
        if seed is not _UNSET:
            self._base_seed = seed  # type: ignore[assignment]
        self._episode_counts = [0] * self.num_envs
        obs = [env.reset(seed=self._seed_for(i))
               for i, env in enumerate(self.envs)]
        self._last_obs = list(obs)
        self.reset_infos = [_reset_info(env) for env in self.envs]
        return obs

    def replace_env(self, i: int, env: InasimEnv) -> None:
        """Swap lane ``i``'s environment for a freshly built one.

        The persistent worker pools use this to re-lane a live group
        (``rebuild_lane``): the lane's episode count restarts at zero so
        its reseed schedule matches a freshly constructed vector env,
        and its reset info reflects the new environment's initial state.
        """
        if env.n_actions != self.n_actions:
            raise ValueError(
                "replacement environment changes the action space "
                f"({env.n_actions} != {self.n_actions}); rebuild the whole "
                "vector env instead"
            )
        self.envs[i] = env
        self._episode_counts[i] = 0
        self._last_obs[i] = None
        self.reset_infos[i] = _reset_info(env)

    def reset_env(self, i: int, seed: int | None = None) -> Observation:
        """Reset one lane explicitly (manual episode scheduling).

        The lane's episode count advances exactly as on an auto-reset,
        so the ``seed + i + num_envs * episode_count`` schedule stays
        collision-free afterwards; with ``seed=None`` the lane draws its
        seed from that schedule (or a nondeterministic reset when the
        vector env was never seeded).
        """
        self._episode_counts[i] += 1
        if seed is None:
            seed = self._seed_for(i)
        obs = self.envs[i].reset(seed=seed)
        self._last_obs[i] = obs
        self.reset_infos[i] = _reset_info(self.envs[i])
        return obs

    # -- deterministic lane recovery -----------------------------------
    def restore_reset(self, i: int, seed: int | None) -> Observation:
        """Reset lane ``i`` to ``seed`` without touching the episode
        schedule.

        Worker recovery replays a lane's journaled history against a
        fresh group: the supervisor already knows the exact seed and
        episode count, so unlike :meth:`reset_env` nothing is derived or
        advanced here.
        """
        obs = self.envs[i].reset(seed=seed)
        self._last_obs[i] = obs
        self.reset_infos[i] = _reset_info(self.envs[i])
        return obs

    def replay_action(self, i: int, action) -> None:
        """Re-apply one journaled action to lane ``i``.

        No auto-reset and no reward/done bookkeeping: the journal never
        spans an auto-reset boundary (it is cleared when a lane rolls
        over), so replay always lands exactly on the pre-fault state.
        """
        obs, _, _, _ = self.envs[i].step(action)
        self._last_obs[i] = obs

    # ------------------------------------------------------------------
    def step(self, actions=None, mask: Sequence[bool] | None = None) -> VecStep:
        """Advance all (unmasked) environments by one hour.

        ``actions`` may be ``None`` (noop everywhere), a 1-D integer
        array of length ``num_envs``, or a sequence of per-env actions,
        each in any form :meth:`InasimEnv.step` accepts. With ``mask``,
        lanes where ``mask[i]`` is false are skipped and report their
        last observation, zero reward, and ``done=True``.
        """
        actions = self._split_actions(actions)
        observations: list[Observation] = []
        rewards = np.zeros(self.num_envs)
        dones = np.zeros(self.num_envs, dtype=bool)
        infos: list[dict[str, Any]] = []

        for i, env in enumerate(self.envs):
            if mask is not None and not mask[i]:
                observations.append(self._last_obs[i])
                dones[i] = True
                infos.append({})
                continue
            obs, reward, done, info = env.step(actions[i])
            if done and self.auto_reset:
                info = dict(info)
                info["final_observation"] = obs
                self._episode_counts[i] += 1
                obs = env.reset(seed=self._seed_for(i))
                self.reset_infos[i] = _reset_info(env)
            observations.append(obs)
            rewards[i] = reward
            dones[i] = done
            infos.append(info)
            self._last_obs[i] = obs

        return VecStep(observations, rewards, dones, infos)

    # ------------------------------------------------------------------
    def action_masks(self) -> np.ndarray:
        """Stacked validity masks, shape ``(num_envs, n_actions)``."""
        return np.stack([env.action_mask() for env in self.envs])
