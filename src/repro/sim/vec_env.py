"""Lockstep vectorized environment: N independent simulations per step.

The ROADMAP's scale story starts here: every consumer that previously
stepped one :class:`~repro.sim.env.InasimEnv` at a time (the evaluation
fan-out, the DQN collector, the CLI) drives a :class:`VectorEnv`
instead and amortizes per-step Python overhead over ``num_envs``
simulations.

Semantics follow the Gym ``VectorEnv`` contract:

* :meth:`reset` seeds env ``i`` with ``seed + i`` and returns the list
  of initial observations;
* :meth:`step` advances every environment by one hour and returns
  stacked numpy reward/done batches plus per-env observations and info
  dicts;
* with ``auto_reset`` (the default) an environment that finishes its
  episode is immediately reset with a fresh deterministic seed
  (``seed + i + num_envs * episode_count``); the terminal observation
  is preserved in ``info["final_observation"]`` and the returned
  observation is the first of the next episode;
* :meth:`action_masks` stacks the per-env action-validity masks into a
  ``(num_envs, n_actions)`` batch for the RL stack.

Episodes are deterministic given (config, seed): two ``VectorEnv``s
built from the same scenario and reset with the same seed produce
identical batched trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.sim.env import InasimEnv
from repro.sim.observations import Observation

__all__ = ["VectorEnv", "VecStep"]

_UNSET = object()


@dataclass
class VecStep:
    """One lockstep transition of all environments."""

    observations: list[Observation]
    rewards: np.ndarray  # (num_envs,) float64
    dones: np.ndarray  # (num_envs,) bool
    infos: list[dict[str, Any]]

    def __iter__(self) -> Iterator:
        """Unpack like a Gym step: obs, rewards, dones, infos."""
        return iter((self.observations, self.rewards, self.dones, self.infos))


class VectorEnv:
    """Run ``len(envs)`` independent simulations in lockstep.

    All environments must share a topology (same action space); build
    them from one scenario via :func:`repro.make_vec`.
    """

    def __init__(self, envs: Sequence[InasimEnv], *, auto_reset: bool = True,
                 base_seed: int | None = None):
        envs = list(envs)
        if not envs:
            raise ValueError("VectorEnv needs at least one environment")
        n_actions = envs[0].n_actions
        for env in envs[1:]:
            if env.n_actions != n_actions:
                raise ValueError(
                    "all environments must share an action space "
                    f"({env.n_actions} != {n_actions}); build them from "
                    "one scenario"
                )
        self.envs = envs
        self.num_envs = len(envs)
        self.auto_reset = auto_reset
        self._base_seed = base_seed
        self._episode_counts = [0] * self.num_envs
        self._last_obs: list[Observation | None] = [None] * self.num_envs

    # ------------------------------------------------------------------
    @property
    def config(self):
        return self.envs[0].config

    @property
    def topology(self):
        return self.envs[0].topology

    @property
    def n_actions(self) -> int:
        return self.envs[0].n_actions

    @property
    def action_list(self):
        return self.envs[0].action_list

    def __len__(self) -> int:
        return self.num_envs

    # ------------------------------------------------------------------
    def _seed_for(self, i: int) -> int | None:
        if self._base_seed is None:
            return None
        return self._base_seed + i + self.num_envs * self._episode_counts[i]

    def reset(self, seed: int | None | object = _UNSET) -> list[Observation]:
        """Reset every environment; env ``i`` gets ``seed + i``."""
        if seed is not _UNSET:
            self._base_seed = seed  # type: ignore[assignment]
        self._episode_counts = [0] * self.num_envs
        obs = [env.reset(seed=self._seed_for(i))
               for i, env in enumerate(self.envs)]
        self._last_obs = list(obs)
        return obs

    def reset_env(self, i: int, seed: int | None = None) -> Observation:
        """Reset one lane explicitly (manual episode scheduling)."""
        obs = self.envs[i].reset(seed=seed)
        self._last_obs[i] = obs
        return obs

    # ------------------------------------------------------------------
    def step(self, actions=None, mask: Sequence[bool] | None = None) -> VecStep:
        """Advance all (unmasked) environments by one hour.

        ``actions`` may be ``None`` (noop everywhere), a 1-D integer
        array of length ``num_envs``, or a sequence of per-env actions,
        each in any form :meth:`InasimEnv.step` accepts. With ``mask``,
        lanes where ``mask[i]`` is false are skipped and report their
        last observation, zero reward, and ``done=True``.
        """
        actions = self._split_actions(actions)
        observations: list[Observation] = []
        rewards = np.zeros(self.num_envs)
        dones = np.zeros(self.num_envs, dtype=bool)
        infos: list[dict[str, Any]] = []

        for i, env in enumerate(self.envs):
            if mask is not None and not mask[i]:
                observations.append(self._last_obs[i])
                dones[i] = True
                infos.append({})
                continue
            obs, reward, done, info = env.step(actions[i])
            if done and self.auto_reset:
                info = dict(info)
                info["final_observation"] = obs
                self._episode_counts[i] += 1
                obs = env.reset(seed=self._seed_for(i))
            observations.append(obs)
            rewards[i] = reward
            dones[i] = done
            infos.append(info)
            self._last_obs[i] = obs

        return VecStep(observations, rewards, dones, infos)

    def _split_actions(self, actions) -> list:
        if actions is None:
            return [None] * self.num_envs
        if isinstance(actions, np.ndarray):
            if actions.shape != (self.num_envs,):
                raise ValueError(
                    f"action array shape {actions.shape} != ({self.num_envs},)"
                )
            return list(actions)
        actions = list(actions)
        if len(actions) != self.num_envs:
            raise ValueError(
                f"expected {self.num_envs} actions, got {len(actions)}"
            )
        return actions

    # ------------------------------------------------------------------
    def action_masks(self) -> np.ndarray:
        """Stacked validity masks, shape ``(num_envs, n_actions)``."""
        return np.stack([env.action_mask() for env in self.envs])

    def sample_actions(self, rng) -> np.ndarray:
        """Uniform random valid action index per environment."""
        masks = self.action_masks()
        return np.array(
            [int(rng.choice(np.flatnonzero(m))) for m in masks], dtype=np.int64
        )
