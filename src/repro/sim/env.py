"""Gym-style environment wrapper around the simulation engine.

The paper exposes INASIM through an OpenAI-Gym-compatible external API;
:class:`InasimEnv` is that interface. The action argument to
:meth:`step` may be a single :class:`DefenderAction`, a list of them
(baseline policies coordinate several actions per hour), or an integer
index into :attr:`action_list`.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.observations import Observation
from repro.sim.orchestrator import DefenderAction, enumerate_actions

__all__ = ["InasimEnv"]


class InasimEnv:
    def __init__(self, config: SimConfig, attacker, seed: int | None = None,
                 record_truth: bool = True):
        self.config = config
        self.sim = Simulation(config, attacker, seed=seed, record_truth=record_truth)
        self.action_list: list[DefenderAction] = list(self.sim.actions)
        self.action_index: dict[DefenderAction, int] = {
            a: i for i, a in enumerate(self.action_list)
        }

    # ------------------------------------------------------------------
    @property
    def topology(self):
        return self.sim.topology

    @property
    def n_actions(self) -> int:
        return len(self.action_list)

    @property
    def t(self) -> int:
        return self.sim.state.t

    # ------------------------------------------------------------------
    def reset(self, seed: int | None = None) -> Observation:
        return self.sim.reset(seed)

    def step(
        self, action: DefenderAction | int | Iterable[DefenderAction]
    ) -> tuple[Observation, float, bool, dict[str, Any]]:
        actions = self._coerce(action)
        result = self.sim.step(actions)
        return result.observation, result.reward, result.done, result.info

    def _coerce(self, action) -> list[DefenderAction]:
        if isinstance(action, DefenderAction):
            return [action]
        if isinstance(action, (int,)):
            return [self.action_list[action]]
        if action is None:
            return []
        return list(action)

    # ------------------------------------------------------------------
    def sample_action(self, rng) -> int:
        """Uniform random action index (exploration helper)."""
        return int(rng.integers(self.n_actions))
