"""Gym-style environment wrapper around the simulation engine.

The paper exposes INASIM through an OpenAI-Gym-compatible external API;
:class:`InasimEnv` is that interface. The action argument to
:meth:`step` may be a single :class:`DefenderAction`, a list of them
(baseline policies coordinate several actions per hour), or an integer
index into :attr:`action_list`.
"""

from __future__ import annotations

import numbers
from typing import Any, Iterable

import numpy as np

from repro.config import SimConfig
from repro.sim.engine import Simulation
from repro.sim.observations import Observation
from repro.sim.orchestrator import (
    DEFENDER_ACTION_SPECS,
    DefenderAction,
)

__all__ = ["InasimEnv"]


class InasimEnv:
    def __init__(self, config: SimConfig, attacker, seed: int | None = None,
                 record_truth: bool = True):
        self.config = config
        self.sim = Simulation(config, attacker, seed=seed, record_truth=record_truth)
        self.action_list: list[DefenderAction] = list(self.sim.actions)
        self.action_index: dict[DefenderAction, int] = {
            a: i for i, a in enumerate(self.action_list)
        }
        # index arrays for the vectorized action mask: positions in
        # action_list that target a node / a PLC, and those targets
        node_idx, node_tgt, plc_idx, plc_tgt = [], [], [], []
        for i, action in enumerate(self.action_list):
            if action.is_noop:
                continue
            targets = DEFENDER_ACTION_SPECS[action.atype].targets
            if targets == "node":
                node_idx.append(i)
                node_tgt.append(action.target)
            elif targets == "plc":
                plc_idx.append(i)
                plc_tgt.append(action.target)
        self._mask_node_idx = np.array(node_idx, dtype=np.intp)
        self._mask_node_tgt = np.array(node_tgt, dtype=np.intp)
        self._mask_plc_idx = np.array(plc_idx, dtype=np.intp)
        self._mask_plc_tgt = np.array(plc_tgt, dtype=np.intp)

    # ------------------------------------------------------------------
    @property
    def topology(self):
        return self.sim.topology

    @property
    def n_actions(self) -> int:
        return len(self.action_list)

    @property
    def t(self) -> int:
        return self.sim.state.t

    # ------------------------------------------------------------------
    def reset(self, seed: int | None = None) -> Observation:
        return self.sim.reset(seed)

    def step(
        self, action: DefenderAction | int | Iterable[DefenderAction]
    ) -> tuple[Observation, float, bool, dict[str, Any]]:
        actions = self._coerce(action)
        result = self.sim.step(actions)
        return result.observation, result.reward, result.done, result.info

    def _coerce(self, action) -> list[DefenderAction]:
        if isinstance(action, DefenderAction):
            return [action]
        if isinstance(action, (numbers.Integral, np.integer)):
            # covers builtin int and numpy integer scalars (np.int64 from
            # rng.integers / argmax), which the RL stack produces
            return [self.action_list[int(action)]]
        if action is None:
            return []
        return list(action)

    # ------------------------------------------------------------------
    def action_mask(self) -> np.ndarray:
        """Boolean validity mask over :attr:`action_list`.

        An action is valid when its target is not occupied by an
        in-flight defender action (noop is always valid); launching an
        action on a busy target is rejected by the orchestrator and
        wastes the decision step.
        """
        state = self.sim.state
        t = state.t
        mask = np.ones(len(self.action_list), dtype=bool)
        mask[self._mask_node_idx] = state.node_busy_until[self._mask_node_tgt] <= t
        mask[self._mask_plc_idx] = state.plc_busy_until[self._mask_plc_tgt] <= t
        return mask

    def sample_action(self, rng) -> int:
        """Uniform random action index (exploration helper)."""
        return int(rng.integers(self.n_actions))
