"""Defender-facing observations: alerts, scan results, PLC status.

Only the fields of :class:`Alert` exposed through :class:`Observation`
are legitimately observable; the ``source`` tag is ground truth carried
for analysis and must not be consumed by defender policies (the paper's
defenders cannot distinguish false alarms from true detections).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["AlertSource", "Alert", "ScanResult", "Observation"]


class AlertSource(enum.Enum):
    APT_ACTION = "apt_action"
    PASSIVE = "passive"
    FALSE = "false"


@dataclass(frozen=True)
class Alert:
    """An IDS alert: ip/severity are observable, source is ground truth."""

    t: int
    severity: int  # 1 (lowest) .. 3 (highest)
    node_id: int | None
    device_id: int | None = None
    source: AlertSource = AlertSource.FALSE


@dataclass(frozen=True)
class ScanResult:
    """Outcome of a completed defender investigation (no false alarms)."""

    t: int
    node_id: int
    detected: bool
    action_type: "object" = None  # DefenderActionType; typed loosely to avoid cycle


@dataclass
class Observation:
    """Everything the defender sees at one decision step."""

    t: int
    alerts: list[Alert] = field(default_factory=list)
    scan_results: list[ScanResult] = field(default_factory=list)
    #: directly observable PLC status (paper Section 4.4 assumption)
    plc_disrupted: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    plc_destroyed: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    #: nodes/PLCs currently occupied by an in-flight defender action
    node_busy: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    plc_busy: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    #: which nodes are currently quarantined (defender's own bookkeeping)
    quarantined: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    #: the defender's own actions that completed this step (self-knowledge)
    completed_actions: list = field(default_factory=list)

    def alert_severity_per_node(self, n_nodes: int) -> np.ndarray:
        """Max alert severity observed per node this step (0 = none)."""
        sev = np.zeros(n_nodes, dtype=np.int64)
        for alert in self.alerts:
            if alert.node_id is not None and alert.node_id < n_nodes:
                sev[alert.node_id] = max(sev[alert.node_id], alert.severity)
        return sev

    def alert_counts_per_node(self, n_nodes: int) -> np.ndarray:
        """Alert counts per node and severity, shape (n_nodes, 3)."""
        counts = np.zeros((n_nodes, 3), dtype=np.int64)
        for alert in self.alerts:
            if alert.node_id is not None and alert.node_id < n_nodes:
                counts[alert.node_id, alert.severity - 1] += 1
        return counts
