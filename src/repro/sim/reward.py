"""Reward module: equations (1)-(4) of the paper.

r(s, a) = r_PLC + lambda * r_IT + r_term

* r_PLC = 1 - 0.05 n_disrupted - 0.1 n_destroyed rewards keeping PLCs
  online;
* r_IT = 1 - sum of costs of defender actions *completing* this step
  penalizes operational disruption;
* r_term = 1/(1-gamma) on reaching the episode time limit keeps the
  optimal state value from drifting with episode time.

With lambda = 0.1 and gamma = 0.9995 the maximum discounted return over
a 5,000-step episode is ~2,200, matching Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RewardConfig

__all__ = ["RewardModule", "RewardBreakdown"]


@dataclass(frozen=True)
class RewardBreakdown:
    r_plc: float
    r_it: float
    r_term: float
    total: float
    it_cost: float


class RewardModule:
    def __init__(self, config: RewardConfig):
        self.config = config

    def compute(
        self,
        n_disrupted: int,
        n_destroyed: int,
        completed_cost: float,
        t: int,
        tmax: int,
    ) -> RewardBreakdown:
        cfg = self.config
        r_plc = (
            1.0
            - cfg.disrupted_penalty * n_disrupted
            - cfg.destroyed_penalty * n_destroyed
        )
        r_it = 1.0 - completed_cost
        r_term = cfg.terminal_reward if t >= tmax else 0.0
        total = r_plc + cfg.lambda_it * r_it + r_term
        return RewardBreakdown(r_plc, r_it, r_term, total, completed_cost)

    @property
    def max_step_reward(self) -> float:
        """Per-step reward with all PLCs nominal and no defender cost."""
        return 1.0 + self.config.lambda_it
