"""Structure-of-arrays batched engine: one array program per lockstep.

:class:`BatchedVectorEnv` is the ``backend="batched"`` implementation of
the :class:`~repro.sim.vec_env.BaseVectorEnv` contract. Instead of
asking each lane's :class:`~repro.sim.engine.Simulation` to assemble its
own step result, it holds every lane's dynamic state in ``(num_envs,
...)`` batch arrays and computes the dense per-step work — IDS
passive/false alert thresholds, PLC/compromise tallies, rewards, action
masks, observation batches — as single numpy programs over all lanes.

The per-object engine stays the oracle. Each lane's :class:`NetworkState`
arrays are *adopted* after every reset: their contents are copied into a
row of the batch arrays and the state attributes are re-pointed at row
views, which is sound because every mutation in the simulator is an
in-place element write (``conditions[i, c] = True``, ``busy[tgt] = t``;
pinned by ``tests/test_batched_engine.py``). The sparse, event-driven
dynamics — defender launches, the attacker FSM turn, action completions
(:meth:`Simulation.step_launch` / :meth:`~Simulation.step_attacker` /
:meth:`~Simulation.step_advance`) — still run through the engine's own
phase methods, so the dynamics live in exactly one place and the batched
backend cannot drift from sync.

Bit-exactness with the sync backend is a hard invariant, not a goal:

* every lane keeps its own per-component ``Generator`` streams, and the
  batched step consumes them in exactly the sync order — one
  ``random(n_compromised)`` passive draw (only when nonzero, matching
  :meth:`IDSModule.passive_alerts`'s early return), one
  ``random(n_channels)`` false-alert draw, then one ``choice`` per
  firing channel in channel order;
* the batched threshold compare uses each lane's *loosest* passive rate
  and re-checks cleaned nodes against the cleanup-scaled rate per hit,
  which reproduces the per-node thresholds without per-lane fancy
  indexing;
* reward arithmetic evaluates in the same operand order as
  :meth:`RewardModule.compute`, so IEEE-754 results are identical.

The golden-trajectory fixtures and the backend-parity suites run the
batched backend against sync digest-for-digest.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.net.nodes import Condition
from repro.sim.env import InasimEnv
from repro.sim.observations import Alert, AlertSource, Observation
from repro.sim.reward import RewardBreakdown
from repro.sim.vec_env import _UNSET, VecStep, VectorEnv, _reset_info

__all__ = ["BatchedVectorEnv"]

#: sentinel "no scheduled event" time; any real event time is smaller
_FAR_FUTURE = 2**62


class BatchedVectorEnv(VectorEnv):
    """Lockstep vector env advancing all lanes through one array program.

    Construction, lane seeding, auto-reset semantics, worker-recovery
    hooks, and the step/reset return contract are inherited from
    :class:`VectorEnv`; only the per-step execution strategy differs.
    All lanes must share the network geometry (same node/PLC counts and
    action list) — heterogeneous *configs* (reward weights, horizons,
    attacker settings) are fine and tracked per lane.
    """

    def __init__(self, envs: Sequence[InasimEnv], *, auto_reset: bool = True,
                 base_seed: int | None = None, lane_offset: int = 0,
                 total_envs: int | None = None):
        super().__init__(envs, auto_reset=auto_reset, base_seed=base_seed,
                         lane_offset=lane_offset, total_envs=total_envs)
        first = self.envs[0]
        n_nodes = first.topology.n_nodes
        n_plcs = first.topology.n_plcs
        for env in self.envs[1:]:
            if (env.topology.n_nodes != n_nodes
                    or env.topology.n_plcs != n_plcs
                    or env.action_list != first.action_list):
                raise ValueError(
                    "batched backend needs lanes with identical network "
                    "geometry (node/PLC counts and action list); use the "
                    "sync backend for mixed topologies"
                )
        n = self.num_envs
        self._n_nodes = n_nodes
        self._n_plcs = n_plcs
        # batch state arrays; lane i's NetworkState attributes are row
        # views of these after adoption
        self._C = np.zeros((n, n_nodes, len(Condition)), dtype=bool)
        self._QUAR = np.zeros((n, n_nodes), dtype=bool)
        self._PLC_FW = np.zeros((n, n_plcs), dtype=bool)
        self._PLC_DIS = np.zeros((n, n_plcs), dtype=bool)
        self._PLC_DES = np.zeros((n, n_plcs), dtype=bool)
        self._NODE_BUSY = np.zeros((n, n_nodes), dtype=np.int64)
        self._PLC_BUSY = np.zeros((n, n_plcs), dtype=np.int64)
        self._T = np.zeros(n, dtype=np.int64)
        self._C_cleaned = self._C[:, :, Condition.CLEANED]
        self._C_admin = self._C[:, :, Condition.ADMIN]
        self._passive_buf = np.ones((n, n_nodes))
        self._passive_rows = list(self._passive_buf)
        self._sims = [env.sim for env in self.envs]
        self._ids_rngs = [env.sim.ids.rng for env in self.envs]
        self._attackers = [env.sim.attacker for env in self.envs]
        # per-lane aliases refreshed by _adopt, feeding the fast path:
        # a lane with no due event, a labor-saturated skippable attacker
        # whose reported phase is fresh, and live APT access advances
        # without entering the engine at all (the skipped calls are
        # provably no-ops there; see step())
        self._states = [env.sim.state for env in self.envs]
        self._queues = [env.sim.queue for env in self.envs]
        self._in_flights = [env.sim.in_flight for env in self.envs]
        self._comp_sets = [env.sim.state._comp_set for env in self.envs]
        self._quar_sets = [env.sim.state._quar_set for env in self.envs]
        self._next_event = np.zeros(n, dtype=np.int64)
        # clock-independent half of the fast-path gate (see step()),
        # recomputed with the lane snapshots: between slow steps it can
        # only flip when the lane state moves, so one vectorized compare
        # against _next_event classifies every lane per step
        self._gate_ok = np.zeros(n, dtype=bool)
        # shared list for the per-step collections of quiescent lanes
        # (alerts swap to a fresh list copy-on-write when an IDS channel
        # fires); like the snapshot arrays, these are part of the
        # returned observations and must not be mutated by consumers
        self._empty: list = []
        # telemetry cache: phase_name only moves when the attacker's
        # act/observe runs, i.e. on slow-path lanes (and resets)
        self._phase_names: list[str | None] = [None] * n
        # per-lane observation snapshots, refreshed only after slow-path
        # steps (and resets): the fast-path gate guarantees a quiescent
        # lane mutates nothing, and every busy-mask flip coincides with
        # a defender completion event, which forces the slow path -- so
        # a snapshot stays value-exact until the lane next goes slow.
        # Consecutive quiescent steps therefore share array objects
        # (sync hands out fresh copies); observations are snapshots and
        # must not be mutated by consumers.
        self._snap_plc_dis: list[np.ndarray] = [None] * n  # type: ignore
        self._snap_plc_des: list[np.ndarray] = [None] * n  # type: ignore
        self._snap_quar: list[np.ndarray] = [None] * n  # type: ignore
        self._snap_node_busy: list[np.ndarray] = [None] * n  # type: ignore
        self._snap_plc_busy: list[np.ndarray] = [None] * n  # type: ignore
        self._snap_cond: list[np.ndarray | None] = [None] * n
        self._n_des = [0] * n
        self._n_off = [0] * n
        # quiescent-step reward/info caches: a fast-path step has zero
        # completion cost and unchanged tallies, so its reward total,
        # (frozen, shareable) breakdown, and info fields other than
        # t/launched/completed are bit-identical to these
        self._fast_total = [0.0] * n
        self._fast_breakdown: list[RewardBreakdown | None] = [None] * n
        self._fast_info: list[dict[str, Any] | None] = [None] * n
        # compromise roster snapshot (ids array + count): only slow
        # steps/resets change it, so the per-step IDS draw sizing reads
        # these instead of calling back into each lane's state
        self._comp_snap: list[np.ndarray] = [None] * n  # type: ignore
        self._n_comp = [0] * n
        self._n_srv = [0] * n
        self._obs_tmpl: list[dict[str, Any]] = [None] * n  # type: ignore
        self._zero_node_busy = [
            np.zeros(n_nodes, dtype=bool) for _ in range(n)
        ]
        self._zero_plc_busy = [np.zeros(n_plcs, dtype=bool) for _ in range(n)]
        self._refresh_lane_params()
        for i in range(n):
            self._adopt(i)

    # ------------------------------------------------------------------
    # adoption: re-point a lane's state at batch-array row views
    # ------------------------------------------------------------------
    _ADOPTED = (
        ("_C", "conditions"),
        ("_QUAR", "quarantined"),
        ("_PLC_FW", "plc_firmware"),
        ("_PLC_DIS", "plc_disrupted"),
        ("_PLC_DES", "plc_destroyed"),
        ("_NODE_BUSY", "node_busy_until"),
        ("_PLC_BUSY", "plc_busy_until"),
    )

    def _adopt(self, i: int) -> None:
        """Copy lane ``i``'s freshly (re)built state into batch row ``i``
        and alias the state attributes to the row views, so every
        in-place write the engine makes lands in the batch arrays."""
        sim = self.envs[i].sim
        self._sims[i] = sim
        self._ids_rngs[i] = sim.ids.rng
        self._attackers[i] = sim.attacker
        state = sim.state
        self._states[i] = state
        self._queues[i] = sim.queue
        self._in_flights[i] = sim.in_flight
        self._comp_sets[i] = state._comp_set
        self._quar_sets[i] = state._quar_set
        heap = sim.queue._heap
        self._next_event[i] = heap[0].time if heap else _FAR_FUTURE
        self._phase_names[i] = getattr(sim.attacker, "phase_name", None)
        for batch_name, attr in self._ADOPTED:
            row = getattr(self, batch_name)[i]
            row[...] = getattr(state, attr)
            setattr(state, attr, row)
        self._T[i] = state.t
        self._refresh_lane_snapshots(i)

    def _refresh_lane_snapshots(self, i: int) -> None:
        """Re-materialize lane ``i``'s observation snapshot after a
        slow-path step or reset (the only points where state moves)."""
        state = self._states[i]
        self._snap_plc_dis[i] = state.plc_disrupted.copy()
        self._snap_plc_des[i] = state.plc_destroyed.copy()
        self._snap_quar[i] = state.quarantined.copy()
        n_des = int(np.count_nonzero(state.plc_destroyed))
        self._n_des[i] = n_des
        # offline = destroyed + (disrupted and not destroyed)
        n_dis = int(np.count_nonzero(state.plc_disrupted))
        if n_dis and n_des:
            n_dis -= int(np.count_nonzero(
                state.plc_disrupted & state.plc_destroyed
            ))
        self._n_off[i] = n_des + n_dis
        if self._sims[i]._max_busy > state.t:
            self._snap_node_busy[i] = state.node_busy_until > state.t
            self._snap_plc_busy[i] = state.plc_busy_until > state.t
        else:
            self._snap_node_busy[i] = self._zero_node_busy[i]
            self._snap_plc_busy[i] = self._zero_plc_busy[i]
        self._snap_cond[i] = (
            state.conditions.copy() if self._record_truth[i] else None
        )
        comp = state.compromised_ids()
        self._comp_snap[i] = comp
        self._n_comp[i] = comp.size
        self._n_srv[i] = state._n_srv_comp
        # Observation.__dict__ prototype; step() copies it and fills the
        # per-step fields (t / alerts / scan_results / completed_actions)
        self._obs_tmpl[i] = {
            "t": 0,
            "alerts": None,
            "scan_results": None,
            "plc_disrupted": self._snap_plc_dis[i],
            "plc_destroyed": self._snap_plc_des[i],
            "node_busy": self._snap_node_busy[i],
            "plc_busy": self._snap_plc_busy[i],
            "quarantined": self._snap_quar[i],
            "completed_actions": None,
        }
        # invalidate the quiescent-step template; it is rebuilt lazily
        # on the lane's next fast step (many slow steps never need one)
        self._fast_info[i] = None
        # clock-independent gate half: live APT access plus a provably
        # no-op attacker turn; every input (comp/quar sets, in-flight
        # labor, _phase_stale, the attacker's phase cache) only moves on
        # slow steps, so the value holds until the next refresh
        sim = self._sims[i]
        noop_act = self._noop_acts[i]
        self._gate_ok[i] = (
            not self._comp_sets[i] <= self._quar_sets[i]
            and (
                (self._fastable[i]
                 and self._labor_rates[i] <= len(self._in_flights[i])
                 and (self._observe_none[i] or not sim._phase_stale))
                or (noop_act is not None and noop_act(state))
            )
        )

    def _build_fast_template(self, i: int) -> dict[str, Any]:
        """Zero-cost-step reward and info template (same operand order
        as ``RewardModule.compute`` with ``it_cost == 0.0``, so the
        cached floats are IEEE-identical to what sync computes)."""
        n_des = self._n_des[i]
        n_off = self._n_off[i]
        n_dis = n_off - n_des
        r_plc = 1.0 - self._dis_pen_l[i] * n_dis - self._des_pen_l[i] * n_des
        r_it = 1.0 - 0.0
        total = r_plc + self._lambda_it_l[i] * r_it + 0.0
        breakdown = RewardBreakdown.__new__(RewardBreakdown)
        object.__setattr__(breakdown, "__dict__", {
            "r_plc": r_plc, "r_it": r_it, "r_term": 0.0,
            "total": total, "it_cost": 0.0,
        })
        self._fast_total[i] = total
        self._fast_breakdown[i] = breakdown
        n_comp = self._n_comp[i]
        n_srv = self._n_srv[i]
        info: dict[str, Any] = {
            "t": 0,
            "reward_breakdown": breakdown,
            "it_cost": 0.0,
            "n_compromised": n_comp,
            "n_ws_compromised": n_comp - n_srv,
            "n_srv_compromised": n_srv,
            "n_plcs_offline": n_off,
            "n_plcs_disrupted": n_dis,
            "n_plcs_destroyed": n_des,
            "launched": None,
            "completed": None,
            "apt_phase": self._phase_names[i],
        }
        if self._record_truth[i]:
            info["conditions"] = self._snap_cond[i]
        self._fast_info[i] = info
        return info

    def _refresh_lane_params(self) -> None:
        """Per-lane scalars hoisted into arrays (re-done on re-laning)."""
        sims = self._sims
        self._record_truth = [sim.record_truth for sim in sims]
        self._any_truth = any(self._record_truth)
        self._tmax = [int(sim.config.tmax) for sim in sims]
        reward_cfgs = [sim.reward_module.config for sim in sims]
        self._dis_pen_l = [c.disrupted_penalty for c in reward_cfgs]
        self._des_pen_l = [c.destroyed_penalty for c in reward_cfgs]
        self._lambda_it_l = [c.lambda_it for c in reward_cfgs]
        self._term_reward_l = [c.terminal_reward for c in reward_cfgs]
        # static fast-path flags (set once in Simulation.__init__)
        self._fastable = [sim._skip_saturated for sim in sims]
        self._labor_rates = [sim._labor_rate for sim in sims]
        self._observe_none = [sim._attacker_observe is None for sim in sims]
        self._noop_acts = [
            getattr(sim.attacker, "act_is_noop", None) for sim in sims
        ]
        base = [sim.ids.config.passive_alert_rate for sim in sims]
        strict = [
            rate * (1.0 - sim.config.apt.cleanup_effectiveness)
            for rate, sim in zip(base, sims)
        ]
        self._passive_base = base
        self._passive_strict = strict
        self._passive_loose = np.array(
            [max(b, s) for b, s in zip(base, strict)]
        )[:, None]
        # false-alert channels in the exact order IDSModule.false_alerts
        # walks them: (level, severity) with severity minor; the node
        # pools and rates are per-topology/config invariants
        channels: list[list[tuple[np.ndarray, int]]] = []
        rates: list[list[float]] = []
        for sim in sims:
            ids = sim.ids
            lane_channels: list[tuple[np.ndarray, int]] = []
            lane_rates: list[float] = []
            for _level, nodes in ids._false_levels:
                for severity, rate in enumerate(ids._false_rates, start=1):
                    lane_channels.append((nodes, severity))
                    lane_rates.append(rate)
            channels.append(lane_channels)
            rates.append(lane_rates)
        n_false = len(rates[0])
        if any(len(lane) != n_false for lane in rates):
            raise ValueError(
                "batched backend needs lanes with the same IDS false-alert "
                "channel structure"
            )
        self._false_channels = channels
        self._false_rates_mat = np.array(rates)
        self._n_false = n_false
        self._false_buf = np.ones((self.num_envs, n_false))
        self._false_rows = list(self._false_buf)

    # ------------------------------------------------------------------
    # resets: defer to VectorEnv, then re-adopt the rebuilt lane state
    # ------------------------------------------------------------------
    def reset(self, seed=_UNSET) -> list[Observation]:
        obs = super().reset(seed)
        for i in range(self.num_envs):
            self._adopt(i)
        return obs

    def replace_env(self, i: int, env: InasimEnv) -> None:
        if (env.topology.n_nodes != self._n_nodes
                or env.topology.n_plcs != self._n_plcs
                or env.action_list != self.action_list):
            raise ValueError(
                "replacement environment changes the network geometry; "
                "rebuild the whole vector env instead"
            )
        super().replace_env(i, env)
        self._sims[i] = env.sim
        self._refresh_lane_params()
        self._adopt(i)

    def reset_env(self, i: int, seed: int | None = None) -> Observation:
        obs = super().reset_env(i, seed)
        self._adopt(i)
        return obs

    def restore_reset(self, i: int, seed: int | None) -> Observation:
        obs = super().restore_reset(i, seed)
        self._adopt(i)
        return obs

    def replay_action(self, i: int, action) -> None:
        # the oracle step mutates the adopted row views in place; only
        # the lane clock and event-queue mirrors need a refresh
        super().replay_action(i, action)
        sim = self.envs[i].sim
        self._T[i] = sim.state.t
        heap = sim.queue._heap
        self._next_event[i] = heap[0].time if heap else _FAR_FUTURE
        self._phase_names[i] = getattr(sim.attacker, "phase_name", None)
        self._refresh_lane_snapshots(i)

    # ------------------------------------------------------------------
    def step(self, actions=None, mask: Sequence[bool] | None = None) -> VecStep:
        """Advance all (unmasked) lanes by one hour, batched.

        Same contract and bit-identical results as
        :meth:`VectorEnv.step`; see the module docstring for how the
        work is split between per-lane dynamics and array programs.
        """
        n = self.num_envs
        sims = self._sims
        lanes = range(n) if mask is None else [i for i in range(n) if mask[i]]
        acts = None if actions is None else self._split_actions(actions)

        # -- phases 1-3 + IDS draws: one pass over the lanes -----------
        # per-lane RNG stream order matches sync exactly: the attacker's
        # launch draws, then one passive draw (only when the lane has
        # compromised nodes, matching IDSModule.passive_alerts's early
        # return), then one false-alert draw; the choice draws for
        # firing false channels follow below in channel order
        alerts_per: list[list[Alert]] = [None] * n  # type: ignore[list-item]
        scans_per: list[list] = [None] * n  # type: ignore[list-item]
        launched_per: list[list] = [None] * n  # type: ignore[list-item]
        completed_per: list[list] = [None] * n  # type: ignore[list-item]
        costs = [0.0] * n
        fast_lane = [False] * n
        passive_buf = self._passive_buf
        passive_buf.fill(1.0)
        passive_rows = self._passive_rows
        false_buf = self._false_buf
        if mask is not None:
            false_buf.fill(1.0)
        false_rows = self._false_rows
        ids_rngs = self._ids_rngs
        comp_arrs: list[np.ndarray | None] = [None] * n
        any_comp = False
        # quiescent-lane fast path: when a lane has no defender action,
        # no event due by t1, live APT access, and an attacker turn
        # that is provably a no-op, the three engine phases reduce to
        # ``state.t = t1``: step_launch has nothing to launch, and
        # step_advance pops nothing and _maybe_reintrude
        # short-circuits (access implies ``_reintrusion_at is None``
        # after every slow step). The attacker turn is a no-op either
        # because the engine would skip a labor-saturated attacker
        # whose reported phase is fresh, or because the attacker
        # itself certifies act() does nothing (act_is_noop: e.g. an
        # FSM campaign in its DONE phase with unchanged inputs). The
        # IDS draws below still run, so RNG streams and alerts stay
        # bit-identical to sync.
        next_event = self._next_event
        states = self._states
        queues = self._queues
        phase_names = self._phase_names
        refresh_snapshots = self._refresh_lane_snapshots
        # the clock-independent gate half is cached per lane (_gate_ok,
        # refreshed with the snapshots); one vectorized compare against
        # the event-queue mirror finishes the classification for every
        # lane at once
        t1s_arr = self._T + 1
        fast_ok = (self._gate_ok & (next_event > t1s_arr)).tolist()
        t1s = t1s_arr.tolist()
        empty = self._empty
        n_comp = self._n_comp
        comp_snap = self._comp_snap
        if acts is None and mask is None:
            # lean pass for the dominant workload (no actions, no lane
            # mask): a quiescent lane reduces to one clock write plus
            # its two per-lane IDS stream draws
            fast_lane = fast_ok
            for i in lanes:
                if fast_ok[i]:
                    states[i].t = t1s[i]
                    alerts_per[i] = empty
                    scans_per[i] = empty
                    launched_per[i] = empty
                    completed_per[i] = empty
                else:
                    sim = sims[i]
                    t1 = t1s[i]
                    alerts_per[i] = alerts = []
                    scans_per[i] = scans = []
                    launched_per[i] = []
                    sim.step_attacker(t1 - 1, t1, alerts)
                    cost, completed = sim.step_advance(t1, scans)
                    costs[i] = cost
                    completed_per[i] = completed
                    heap = queues[i]._heap
                    next_event[i] = heap[0].time if heap else _FAR_FUTURE
                    phase_names[i] = getattr(sim.attacker, "phase_name", None)
                    refresh_snapshots(i)
                rng = ids_rngs[i]
                k = n_comp[i]
                if k:
                    rng.random(out=passive_rows[i][:k])
                    comp_arrs[i] = comp_snap[i]
                    any_comp = True
                rng.random(out=false_rows[i])
        else:
            for i in lanes:
                sim = sims[i]
                t1 = t1s[i]
                t0 = t1 - 1
                a_i = None if acts is None else acts[i]
                if a_i is None and fast_ok[i]:
                    states[i].t = t1
                    fast_lane[i] = True
                    alerts_per[i] = empty
                    scans_per[i] = empty
                    launched_per[i] = empty
                    completed_per[i] = empty
                else:
                    alerts_per[i] = alerts = []
                    scans_per[i] = scans = []
                    if a_i is None:
                        launched_per[i] = []
                    else:
                        defender_actions = self.envs[i]._coerce(a_i)
                        launched_per[i] = (
                            sim.step_launch(defender_actions, t0)
                            if defender_actions else []
                        )
                    sim.step_attacker(t0, t1, alerts)
                    cost, completed = sim.step_advance(t1, scans)
                    costs[i] = cost
                    completed_per[i] = completed
                    heap = queues[i]._heap
                    next_event[i] = heap[0].time if heap else _FAR_FUTURE
                    phase_names[i] = getattr(sim.attacker, "phase_name", None)
                    refresh_snapshots(i)
                rng = ids_rngs[i]
                k = n_comp[i]
                if k:
                    rng.random(out=passive_rows[i][:k])
                    comp_arrs[i] = comp_snap[i]
                    any_comp = True
                rng.random(out=false_rows[i])
        if mask is None:
            np.add(self._T, 1, out=self._T)
        else:
            for i in lanes:
                self._T[i] += 1

        if any_comp:
            hit_rows, hit_cols = np.nonzero(passive_buf < self._passive_loose)
            strict = self._passive_strict
            base = self._passive_base
            cleaned = self._C_cleaned
            admin = self._C_admin
            for i, j in zip(hit_rows.tolist(), hit_cols.tolist()):
                node_id = int(comp_arrs[i][j])
                if cleaned[i, node_id]:
                    if passive_buf[i, j] >= strict[i]:
                        continue
                elif passive_buf[i, j] >= base[i]:
                    continue
                severity = 2 if admin[i, node_id] else 1
                alerts = alerts_per[i]
                if alerts is self._empty:  # copy-on-write for fast lanes
                    alerts = alerts_per[i] = []
                alerts.append(
                    Alert(t1s[i], severity, node_id, source=AlertSource.PASSIVE)
                )
        hit_rows, hit_cols = np.nonzero(false_buf < self._false_rates_mat)
        if hit_rows.size:
            for i, j in zip(hit_rows.tolist(), hit_cols.tolist()):
                nodes, severity = self._false_channels[i][j]
                rng = ids_rngs[i]
                node_id = int(nodes[rng.integers(0, len(nodes))])
                alerts = alerts_per[i]
                if alerts is self._empty:  # copy-on-write for fast lanes
                    alerts = alerts_per[i] = []
                alerts.append(
                    Alert(t1s[i], severity, node_id, source=AlertSource.FALSE)
                )

        # -- assembly + rewards + auto-reset ---------------------------
        # the observation snapshots come from the per-lane caches kept
        # fresh by _refresh_lane_snapshots: only slow-path lanes (the
        # only ones whose state moved) re-materialized theirs above
        # the reward terms are evaluated per lane in plain Python (same
        # operand order as RewardModule.compute, so IEEE-identical):
        # at num_envs-scale these scalars beat numpy's dispatch overhead
        observations: list[Observation | None] = [None] * n
        rewards = [0.0] * n
        dones = [False] * n
        infos: list[dict[str, Any]] = [None] * n  # type: ignore[list-item]
        last_obs = self._last_obs
        record_truth = self._record_truth
        tmax = self._tmax
        dis_pen = self._dis_pen_l
        des_pen = self._des_pen_l
        lambda_it = self._lambda_it_l
        term_reward = self._term_reward_l
        auto_reset = self.auto_reset
        snap_cond = self._snap_cond
        n_des_l = self._n_des
        n_off_l = self._n_off
        fast_total = self._fast_total
        fast_info = self._fast_info
        obs_cls = Observation
        obs_new = Observation.__new__
        bd_new = RewardBreakdown.__new__
        bd_cls = RewardBreakdown
        set_dict = object.__setattr__
        if mask is not None:
            for i in range(n):
                if not mask[i]:
                    observations[i] = last_obs[i]
                    dones[i] = True
                    infos[i] = {}
        n_srv_l = self._n_srv
        obs_tmpl = self._obs_tmpl
        for i in lanes:
            t1 = t1s[i]
            obs = obs_new(obs_cls)
            obs.__dict__ = d = dict(obs_tmpl[i])
            d["t"] = t1
            d["alerts"] = alerts_per[i]
            d["scan_results"] = scans_per[i]
            d["completed_actions"] = completed_per[i]
            done = t1 >= tmax[i]
            if fast_lane[i] and not done:
                # quiescent step: reward and info fields are the cached
                # zero-cost values; only t and the per-step lists move
                template = fast_info[i]
                if template is None:
                    template = self._build_fast_template(i)
                info = dict(template)
                info["t"] = t1
                info["launched"] = launched_per[i]
                info["completed"] = completed_per[i]
                rewards[i] = fast_total[i]
                observations[i] = obs
                infos[i] = info
                last_obs[i] = obs
                continue
            n_destroyed = n_des_l[i]
            n_offline = n_off_l[i]
            n_disrupted = n_offline - n_destroyed
            cost = costs[i]
            r_plc = 1.0 - dis_pen[i] * n_disrupted - des_pen[i] * n_destroyed
            r_it = 1.0 - cost
            r_term = term_reward[i] if done else 0.0
            total = r_plc + lambda_it[i] * r_it + r_term
            breakdown = bd_new(bd_cls)
            set_dict(breakdown, "__dict__", {
                "r_plc": r_plc, "r_it": r_it, "r_term": r_term,
                "total": total, "it_cost": cost,
            })
            n_comp_i = n_comp[i]
            n_srv = n_srv_l[i]
            info: dict[str, Any] = {
                "t": t1,
                "reward_breakdown": breakdown,
                "it_cost": cost,
                "n_compromised": n_comp_i,
                "n_ws_compromised": n_comp_i - n_srv,
                "n_srv_compromised": n_srv,
                "n_plcs_offline": n_offline,
                "n_plcs_disrupted": n_disrupted,
                "n_plcs_destroyed": n_destroyed,
                "launched": launched_per[i],
                "completed": completed_per[i],
                "apt_phase": phase_names[i],
            }
            if record_truth[i]:
                info["conditions"] = snap_cond[i]
            rewards[i] = total
            if done:
                dones[i] = True
                if auto_reset:
                    info["final_observation"] = obs
                    self._episode_counts[i] += 1
                    obs = self.envs[i].reset(seed=self._seed_for(i))
                    self._adopt(i)
                    self.reset_infos[i] = _reset_info(self.envs[i])
            observations[i] = obs
            infos[i] = info
            last_obs[i] = obs
        return VecStep(
            observations, np.asarray(rewards), np.asarray(dones), infos
        )

    # ------------------------------------------------------------------
    def action_masks(self) -> np.ndarray:
        """Stacked validity masks via one batched busy compare."""
        first = self.envs[0]
        masks = np.ones((self.num_envs, self.n_actions), dtype=bool)
        t_col = self._T[:, None]
        node_free = self._NODE_BUSY <= t_col
        plc_free = self._PLC_BUSY <= t_col
        masks[:, first._mask_node_idx] = node_free[:, first._mask_node_tgt]
        masks[:, first._mask_plc_idx] = plc_free[:, first._mask_plc_tgt]
        return masks
