"""Event queue for scheduled action completions.

The simulation advances in one-hour decision steps; actions started at
hour ``t`` with duration ``d`` take effect at hour ``t + d``. The queue
orders events by (time, insertion sequence) so same-hour completions
apply in launch order, keeping episodes deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    time: int
    seq: int
    payload: Any = field(compare=False)


class EventQueue:
    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, payload: Any) -> Event:
        if self._heap and time < self._heap[0].time - 10_000_000:
            raise ValueError("event scheduled unreasonably far in the past")
        event = Event(time, next(self._counter), payload)
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> int | None:
        return self._heap[0].time if self._heap else None

    def pop_due(self, now: int) -> list[Any]:
        """Remove and return payloads of all events with time <= now."""
        due: list[Any] = []
        while self._heap and self._heap[0].time <= now:
            due.append(heapq.heappop(self._heap).payload)
        return due

    def clear(self) -> None:
        self._heap.clear()
