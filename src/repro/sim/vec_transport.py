"""Zero-pickle wire format for the parallel VectorEnv backends.

The process/shm backends move four kinds of payload between the parent
and its worker processes every lockstep round: action batches going
down, and observation/reward/done/info batches coming back. Shipping
those through ``Connection.send`` pickles every ``Alert``, ``Observation``
and info dict per lane per step — measurable pure overhead on the
training hot path. This module replaces pickle with an explicit binary
record format (``struct``-packed, little-endian) that both sides encode
and decode directly:

* commands (parent -> worker): one opcode byte, then a fixed layout per
  command; actions are encoded as ``None`` / integer indices /
  ``DefenderAction`` lists (the three forms every policy in the repo
  emits);
* replies (worker -> parent): a status byte, then per-lane observation
  blocks and a *structured info record* — step tallies, reward
  breakdown, launched/completed action lists, attacker phase, optional
  ground-truth conditions and ``final_observation`` slot — plus only
  the ``reset_infos`` entries that actually changed this step.

Records reconstruct the exact objects the sync backend returns
(``Observation`` / ``Alert`` / ``ScanResult`` / ``DefenderAction`` /
``RewardBreakdown``), field for field, so backend parity stays
bit-exact; floats round-trip through fixed-width IEEE doubles, never
text. Anything the format cannot express raises :class:`EncodeError`,
and the backends fall back to the legacy pickled pipe protocol for that
one message — correctness never depends on the fast path.

The byte layout is deliberately self-contained: the only shared context
is a :class:`Dims` tuple (action/node/PLC/condition counts) exchanged
at pool construction and after every ``rebuild_lane``, so a live pool
can even be re-laned onto a different network preset.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, NamedTuple

import numpy as np

from repro.sim.observations import Alert, AlertSource, Observation, ScanResult
from repro.sim.orchestrator import DefenderAction, DefenderActionType
from repro.sim.reward import RewardBreakdown

__all__ = [
    "Dims",
    "EncodeError",
    "FrameError",
    "OP_STEP",
    "OP_MASKS",
    "OP_RESET",
    "OP_RESET_ENV",
    "OP_AUTO_RESET",
    "OP_RELANE",
    "OP_CLOSE",
    "OP_RESTORE",
    "ST_OK",
    "ST_ERR",
    "ST_SHM",
    "PICKLE_PROTO",
    "RESTORE_VIRGIN",
    "RESTORE_RESET",
    "RESTORE_REBUILT",
    "INFO_SCALAR_FIELDS",
    "BREAKDOWN_FIELDS",
    "dims_of",
    "seal_frame",
    "open_frame",
    "encode_restore_cmd",
    "decode_restore_cmd",
    "encode_step_cmd",
    "decode_step_cmd",
    "encode_step_reply",
    "decode_step_reply",
    "encode_masks_reply",
    "decode_masks_reply",
    "encode_reset_cmd",
    "decode_reset_cmd",
    "encode_reset_reply",
    "decode_reset_reply",
    "encode_reset_env_cmd",
    "decode_reset_env_cmd",
    "encode_reset_env_reply",
    "decode_reset_env_reply",
    "encode_relane_reply",
    "decode_relane_reply",
    "encode_error",
    "decode_error",
]

# command opcodes (parent -> worker). Pickled streams always begin with
# the PROTO opcode 0x80, so any first byte >= 0x90 unambiguously marks a
# binary message and lets the worker keep a pickle fallback path.
OP_STEP = 0x90
OP_MASKS = 0x91
OP_RESET = 0x92
OP_RESET_ENV = 0x93
OP_AUTO_RESET = 0x94
OP_RELANE = 0x95
OP_CLOSE = 0x96
OP_RESTORE = 0x97  # deterministic lane recovery after a worker respawn

# reply status bytes (worker -> parent)
ST_OK = 0xA0  # payload follows inline
ST_ERR = 0xA1  # utf-8 error message follows
ST_SHM = 0xA2  # payload is in the worker's shared-memory slot

#: first byte of every pickle stream (protocol >= 2)
PICKLE_PROTO = 0x80

_SOURCES = tuple(AlertSource)
_SOURCE_INDEX = {source: i for i, source in enumerate(_SOURCES)}
_ATYPES = tuple(DefenderActionType)
_ATYPE_INDEX = {atype: i for i, atype in enumerate(_ATYPES)}

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_ALERT = struct.Struct("<qqqBB")  # t, node_id, device_id, severity, source
_SCAN = struct.Struct("<qqBb")  # t, node_id, detected, action_type
_ACTION = struct.Struct("<bq")  # atype index, target (-1 = None)
_INFO_FIXED = struct.Struct("<qd6q5d")  # t, it_cost, tallies, breakdown

#: the scalar step-info fields of ``_INFO_FIXED``, in pack order
#: (``t`` is ``<q``, ``it_cost`` ``<d``, the six tallies ``<q``). The
#: trace store (:mod:`repro.validation.tracestore`) builds its columnar
#: record schema from these names, so the wire format and the on-disk
#: log cannot drift apart independently of this module.
INFO_SCALAR_FIELDS = (
    "t",
    "it_cost",
    "n_compromised",
    "n_ws_compromised",
    "n_srv_compromised",
    "n_plcs_offline",
    "n_plcs_disrupted",
    "n_plcs_destroyed",
)

#: :class:`~repro.sim.reward.RewardBreakdown` fields in ``_INFO_FIXED``
#: pack order (five ``<d`` doubles); same dual use as above
BREAKDOWN_FIELDS = ("r_plc", "r_it", "r_term", "total", "it_cost")
_RESET_INFO = struct.Struct("<4q")  # t, n_compromised, n_ws, n_srv
_DIMS = struct.Struct("<4I")

#: exactly the keys the engine / VectorEnv auto-reset put in a step info
_INFO_KEYS = frozenset(
    (
        "t",
        "reward_breakdown",
        "it_cost",
        "n_compromised",
        "n_ws_compromised",
        "n_srv_compromised",
        "n_plcs_offline",
        "n_plcs_disrupted",
        "n_plcs_destroyed",
        "launched",
        "completed",
        "apt_phase",
        "conditions",
        "final_observation",
    )
)


class EncodeError(Exception):
    """The payload cannot be expressed in the binary wire format.

    Callers fall back to the legacy pickled pipe protocol for the one
    message that raised; the fast path stays pickle-free for everything
    the repo's policies and engine actually produce.
    """


class Dims(NamedTuple):
    """Static per-pool geometry both codec ends must agree on."""

    n_actions: int
    n_nodes: int
    n_plcs: int
    n_conditions: int

    def pack(self) -> bytes:
        return _DIMS.pack(*self)

    @classmethod
    def unpack_from(cls, buf, offset: int = 0) -> "Dims":
        return cls(*_DIMS.unpack_from(buf, offset))


def dims_of(env) -> Dims:
    """Derive the codec geometry from a live environment."""
    state = env.sim.state
    return Dims(
        n_actions=env.n_actions,
        n_nodes=len(state.node_busy_until),
        n_plcs=len(state.plc_busy_until),
        n_conditions=state.conditions.shape[1],
    )


# ----------------------------------------------------------------------
# observations
# ----------------------------------------------------------------------
def _encode_observation(out: bytearray, obs: Observation | None) -> None:
    if obs is None:  # a masked lane that was never reset
        out.append(0)
        return
    out.append(1)
    out += _I64.pack(obs.t)
    alerts = obs.alerts
    out += _U32.pack(len(alerts))
    pack_alert = _ALERT.pack
    for a in alerts:
        try:
            out += pack_alert(
                a.t,
                -1 if a.node_id is None else a.node_id,
                -1 if a.device_id is None else a.device_id,
                a.severity,
                _SOURCE_INDEX[a.source],
            )
        except (KeyError, struct.error, TypeError) as exc:
            raise EncodeError(f"unencodable alert {a!r}") from exc
    scans = obs.scan_results
    out += _U32.pack(len(scans))
    for s in scans:
        atype = s.action_type
        try:
            out += _SCAN.pack(
                s.t,
                s.node_id,
                bool(s.detected),
                -1 if atype is None else _ATYPE_INDEX[atype],
            )
        except (KeyError, struct.error, TypeError) as exc:
            raise EncodeError(f"unencodable scan result {s!r}") from exc
    for vector in (obs.plc_disrupted, obs.plc_destroyed, obs.plc_busy):
        out += np.ascontiguousarray(vector, dtype=np.uint8).tobytes()
    for vector in (obs.node_busy, obs.quarantined):
        out += np.ascontiguousarray(vector, dtype=np.uint8).tobytes()
    _encode_actions_list(out, obs.completed_actions)


def _decode_observation(buf, pos: int, dims: Dims) -> tuple[Observation | None, int]:
    if buf[pos] == 0:
        return None, pos + 1
    pos += 1
    (t,) = _I64.unpack_from(buf, pos)
    pos += 8
    (n_alerts,) = _U32.unpack_from(buf, pos)
    pos += 4
    alerts = []
    unpack_alert = _ALERT.unpack_from
    for _ in range(n_alerts):
        at, node, dev, sev, src = unpack_alert(buf, pos)
        pos += _ALERT.size
        alerts.append(
            Alert(
                at,
                sev,
                None if node < 0 else node,
                None if dev < 0 else dev,
                _SOURCES[src],
            )
        )
    (n_scans,) = _U32.unpack_from(buf, pos)
    pos += 4
    scans = []
    for _ in range(n_scans):
        st, node, detected, atype = _SCAN.unpack_from(buf, pos)
        pos += _SCAN.size
        scans.append(
            ScanResult(st, node, bool(detected),
                       None if atype < 0 else _ATYPES[atype])
        )
    vectors = []
    for count in (dims.n_plcs, dims.n_plcs, dims.n_plcs,
                  dims.n_nodes, dims.n_nodes):
        vectors.append(
            np.frombuffer(buf, dtype=np.uint8, count=count,
                          offset=pos).astype(bool)
        )
        pos += count
    completed, pos = _decode_actions_list(buf, pos)
    return (
        Observation(
            t=t,
            alerts=alerts,
            scan_results=scans,
            plc_disrupted=vectors[0],
            plc_destroyed=vectors[1],
            plc_busy=vectors[2],
            node_busy=vectors[3],
            quarantined=vectors[4],
            completed_actions=completed,
        ),
        pos,
    )


# ----------------------------------------------------------------------
# defender-action lists (launched / completed / commands)
# ----------------------------------------------------------------------
def _encode_actions_list(out: bytearray, actions) -> None:
    out += _U32.pack(len(actions))
    for action in actions:
        try:
            out += _ACTION.pack(
                _ATYPE_INDEX[action.atype],
                -1 if action.target is None else action.target,
            )
        except (KeyError, AttributeError, struct.error, TypeError) as exc:
            raise EncodeError(f"unencodable defender action {action!r}") from exc


def _decode_actions_list(buf, pos: int) -> tuple[list[DefenderAction], int]:
    (count,) = _U32.unpack_from(buf, pos)
    pos += 4
    actions = []
    for _ in range(count):
        atype, target = _ACTION.unpack_from(buf, pos)
        pos += _ACTION.size
        actions.append(
            DefenderAction(_ATYPES[atype], None if target < 0 else target)
        )
    return actions, pos


# ----------------------------------------------------------------------
# step infos
# ----------------------------------------------------------------------
_REQUIRED_INFO_KEYS = _INFO_KEYS - {"conditions", "final_observation"}


def _encode_info(out: bytearray, info: dict[str, Any],
                 auto_reset: bool = True) -> None:
    if not info:  # masked lanes report an empty dict
        out.append(0)
        return
    extra = info.keys() - _INFO_KEYS
    if extra:
        raise EncodeError(f"info carries unknown keys {sorted(extra)}")
    missing = _REQUIRED_INFO_KEYS - info.keys()
    if missing:  # e.g. a wrapper that rebuilds infos: take the fallback
        raise EncodeError(f"info is missing keys {sorted(missing)}")
    out.append(1)
    try:
        breakdown = info["reward_breakdown"]
        out += _INFO_FIXED.pack(
            info["t"],
            info["it_cost"],
            info["n_compromised"],
            info["n_ws_compromised"],
            info["n_srv_compromised"],
            info["n_plcs_offline"],
            info["n_plcs_disrupted"],
            info["n_plcs_destroyed"],
            breakdown.r_plc,
            breakdown.r_it,
            breakdown.r_term,
            breakdown.total,
            breakdown.it_cost,
        )
        _encode_actions_list(out, info["launched"])
        _encode_actions_list(out, info["completed"])
    except (KeyError, AttributeError, struct.error, TypeError) as exc:
        raise EncodeError(f"unencodable step info: {exc}") from exc
    phase = info["apt_phase"]
    if phase is None:
        out.append(0)
    elif isinstance(phase, str):
        encoded = phase.encode("utf-8")
        out.append(1)
        out += _U32.pack(len(encoded))
        out += encoded
    else:
        raise EncodeError(f"apt_phase must be str or None, got {type(phase)}")
    conditions = info.get("conditions")
    if conditions is None:
        out.append(0)
    else:
        out.append(1)
        out += np.ascontiguousarray(conditions, dtype=np.uint8).tobytes()
    final = info.get("final_observation")
    if final is None or not auto_reset:
        # with auto-reset disabled no lane legitimately produces a
        # final observation this step; a present one is stale (e.g. a
        # wrapper echoing a previous episode's info) and must not ship
        out.append(0)
    else:
        out.append(1)
        _encode_observation(out, final)


def _decode_info(buf, pos: int, dims: Dims) -> tuple[dict[str, Any], int]:
    if buf[pos] == 0:
        return {}, pos + 1
    pos += 1
    fixed = _INFO_FIXED.unpack_from(buf, pos)
    pos += _INFO_FIXED.size
    launched, pos = _decode_actions_list(buf, pos)
    completed, pos = _decode_actions_list(buf, pos)
    phase = None
    flag = buf[pos]
    pos += 1
    if flag:
        (length,) = _U32.unpack_from(buf, pos)
        pos += 4
        phase = bytes(buf[pos:pos + length]).decode("utf-8")
        pos += length
    info: dict[str, Any] = {
        "t": fixed[0],
        "reward_breakdown": RewardBreakdown(*fixed[8:13]),
        "it_cost": fixed[1],
        "n_compromised": fixed[2],
        "n_ws_compromised": fixed[3],
        "n_srv_compromised": fixed[4],
        "n_plcs_offline": fixed[5],
        "n_plcs_disrupted": fixed[6],
        "n_plcs_destroyed": fixed[7],
        "launched": launched,
        "completed": completed,
        "apt_phase": phase,
    }
    flag = buf[pos]
    pos += 1
    if flag:
        count = dims.n_nodes * dims.n_conditions
        info["conditions"] = (
            np.frombuffer(buf, dtype=np.uint8, count=count, offset=pos)
            .astype(bool)
            .reshape(dims.n_nodes, dims.n_conditions)
        )
        pos += count
    flag = buf[pos]
    pos += 1
    if flag:
        info["final_observation"], pos = _decode_observation(buf, pos, dims)
    return info, pos


def _encode_reset_info(out: bytearray, info: dict[str, Any]) -> None:
    try:
        out += _RESET_INFO.pack(
            info["t"],
            info["n_compromised"],
            info["n_ws_compromised"],
            info["n_srv_compromised"],
        )
    except (KeyError, struct.error, TypeError) as exc:
        raise EncodeError(f"unencodable reset info {info!r}") from exc


def _decode_reset_info(buf, pos: int) -> tuple[dict[str, Any], int]:
    t, n_comp, n_ws, n_srv = _RESET_INFO.unpack_from(buf, pos)
    return (
        {
            "t": t,
            "n_compromised": n_comp,
            "n_ws_compromised": n_ws,
            "n_srv_compromised": n_srv,
        },
        pos + _RESET_INFO.size,
    )


# ----------------------------------------------------------------------
# step command (parent -> worker)
# ----------------------------------------------------------------------
_ACT_NONE = 0
_ACT_INT = 1
_ACT_LIST = 2


def _encode_action_entry(out: bytearray, action) -> None:
    """Pack one per-lane action: ``None``, an integer action index
    (python or numpy), a single :class:`DefenderAction`, or an iterable
    of them — exactly the forms :meth:`InasimEnv.step` accepts from the
    repo's policies. Anything else raises :class:`EncodeError`."""
    if action is None:
        out.append(_ACT_NONE)
    elif isinstance(action, (int, np.integer)):
        out.append(_ACT_INT)
        out += _I64.pack(int(action))
    elif isinstance(action, DefenderAction):
        out.append(_ACT_LIST)
        _encode_actions_list(out, (action,))
    elif isinstance(action, (list, tuple)):
        out.append(_ACT_LIST)
        _encode_actions_list(out, action)
    else:
        raise EncodeError(
            f"unencodable action of type {type(action).__name__}"
        )


def _decode_action_entry(buf, pos: int):
    kind = buf[pos]
    pos += 1
    if kind == _ACT_NONE:
        return None, pos
    if kind == _ACT_INT:
        (value,) = _I64.unpack_from(buf, pos)
        return value, pos + 8
    return _decode_actions_list(buf, pos)


def encode_step_cmd(actions, mask) -> bytearray:
    """Pack a lane group's actions (+ optional step mask) for a worker.

    On an unencodable action this raises :class:`EncodeError` and the
    caller falls back to the pickled protocol for this step.
    """
    out = bytearray((OP_STEP,))
    if mask is None:
        out.append(0)
    else:
        out.append(1)
        out += bytes(bytearray(bool(m) for m in mask))
    for action in actions:
        _encode_action_entry(out, action)
    return out


def decode_step_cmd(buf, k: int):
    """Inverse of :func:`encode_step_cmd` for a group of ``k`` lanes."""
    pos = 1
    mask = None
    if buf[pos]:
        mask = [bool(b) for b in buf[pos + 1:pos + 1 + k]]
        pos += 1 + k
    else:
        pos += 1
    actions: list = []
    for _ in range(k):
        action, pos = _decode_action_entry(buf, pos)
        actions.append(action)
    return actions, mask


# ----------------------------------------------------------------------
# restore command (parent -> respawned worker)
# ----------------------------------------------------------------------
# Per-lane journal kinds: how the parent last (re)initialised the lane.
RESTORE_VIRGIN = 0  # as built from the payload; only actions to replay
RESTORE_RESET = 1  # last reset with a known seed on the lane schedule
RESTORE_REBUILT = 2  # rebuilt from a (possibly new) spec with a seed


def encode_restore_cmd(states) -> bytearray:
    """Pack one ``(kind, seed, episode_count, actions)`` tuple per lane
    of a respawned worker's slice. ``seed`` must be a concrete integer
    for the RESET/REBUILT kinds — the parent only attempts recovery
    when every lane's seed is known."""
    out = bytearray((OP_RESTORE,))
    for kind, seed, episode_count, actions in states:
        out.append(kind)
        if kind != RESTORE_VIRGIN:
            out += _I64.pack(seed)
        out += _I64.pack(episode_count)
        out += _U32.pack(len(actions))
        for action in actions:
            _encode_action_entry(out, action)
    return out


def decode_restore_cmd(buf, k: int):
    """Inverse of :func:`encode_restore_cmd` for ``k`` lanes."""
    pos = 1
    states = []
    for _ in range(k):
        kind = buf[pos]
        pos += 1
        seed = None
        if kind != RESTORE_VIRGIN:
            (seed,) = _I64.unpack_from(buf, pos)
            pos += 8
        (episode_count,) = _I64.unpack_from(buf, pos)
        pos += 8
        (n_actions,) = _U32.unpack_from(buf, pos)
        pos += 4
        actions = []
        for _ in range(n_actions):
            action, pos = _decode_action_entry(buf, pos)
            actions.append(action)
        states.append((kind, seed, episode_count, actions))
    return states


# ----------------------------------------------------------------------
# frame integrity (chaos-mode CRC sealing)
# ----------------------------------------------------------------------
class FrameError(Exception):
    """A reply frame failed its CRC32 integrity check.

    Only raised when frame checking is armed (``REPRO_FRAME_CHECK``);
    the supervisor treats it as a worker fault — the sender is killed
    and its lanes recovered, exactly like a crash."""


def seal_frame(record):
    """Append a little-endian CRC32 of ``record`` to it.

    Bytearrays are extended in place (the hot reply path); other buffer
    types round-trip through ``bytes``."""
    crc = zlib.crc32(record) & 0xFFFFFFFF
    if isinstance(record, bytearray):
        record += _U32.pack(crc)
        return record
    return bytes(record) + _U32.pack(crc)


def open_frame(buf):
    """Verify and strip the CRC32 trailer added by :func:`seal_frame`."""
    if len(buf) < 5:
        raise FrameError("frame too short to carry a checksum")
    body = buf[:-4]
    (expected,) = _U32.unpack_from(buf, len(buf) - 4)
    if (zlib.crc32(body) & 0xFFFFFFFF) != expected:
        raise FrameError("frame checksum mismatch (corrupt reply)")
    return body


# ----------------------------------------------------------------------
# step reply (worker -> parent)
# ----------------------------------------------------------------------
def encode_step_reply(observations, rewards, dones, infos,
                      changed_reset_infos, *,
                      auto_reset: bool = True) -> bytearray:
    """Pack one lane group's step results.

    ``changed_reset_infos`` lists ``(local_index, reset_info)`` pairs
    for lanes that auto-reset this step — the only ones whose parent
    bookkeeping can have gone stale, so the only ones shipped. With
    ``auto_reset=False`` any ``final_observation`` in an info dict is
    dropped at the wire: only an auto-reset produces a legitimate final.
    """
    out = bytearray((ST_OK,))
    out += np.ascontiguousarray(rewards, dtype=np.float64).tobytes()
    out += np.ascontiguousarray(dones, dtype=np.uint8).tobytes()
    for obs in observations:
        _encode_observation(out, obs)
    for info in infos:
        _encode_info(out, info, auto_reset=auto_reset)
    out += _U32.pack(len(changed_reset_infos))
    for local_i, reset_info in changed_reset_infos:
        out += _U32.pack(local_i)
        _encode_reset_info(out, reset_info)
    return out


def decode_step_reply(buf, k: int, dims: Dims):
    """Inverse of :func:`encode_step_reply`; returns
    ``(observations, rewards, dones, infos, changed_reset_infos)``."""
    pos = 1
    rewards = np.frombuffer(buf, dtype=np.float64, count=k, offset=pos).copy()
    pos += 8 * k
    dones = np.frombuffer(buf, dtype=np.uint8, count=k,
                          offset=pos).astype(bool)
    pos += k
    observations = []
    for _ in range(k):
        obs, pos = _decode_observation(buf, pos, dims)
        observations.append(obs)
    infos = []
    for _ in range(k):
        info, pos = _decode_info(buf, pos, dims)
        infos.append(info)
    (n_changed,) = _U32.unpack_from(buf, pos)
    pos += 4
    changed = []
    for _ in range(n_changed):
        (local_i,) = _U32.unpack_from(buf, pos)
        pos += 4
        reset_info, pos = _decode_reset_info(buf, pos)
        changed.append((local_i, reset_info))
    return observations, rewards, dones, infos, changed


# ----------------------------------------------------------------------
# the small fry: masks, resets, errors
# ----------------------------------------------------------------------
def encode_masks_reply(masks: np.ndarray) -> bytearray:
    out = bytearray((ST_OK,))
    out += np.ascontiguousarray(masks, dtype=np.uint8).tobytes()
    return out


def decode_masks_reply(buf, k: int, dims: Dims) -> np.ndarray:
    return (
        np.frombuffer(buf, dtype=np.uint8, count=k * dims.n_actions, offset=1)
        .astype(bool)
        .reshape(k, dims.n_actions)
    )


def _pack_optional_seed(out: bytearray, seed) -> None:
    if seed is None:
        out += b"\x00" + _I64.pack(0)
    else:
        out += b"\x01" + _I64.pack(seed)


def _unpack_optional_seed(buf, pos: int):
    seed = None
    if buf[pos]:
        (seed,) = _I64.unpack_from(buf, pos + 1)
    return seed, pos + 9


def encode_reset_cmd(has_seed: bool, seed) -> bytearray:
    out = bytearray((OP_RESET, 1 if has_seed else 0))
    _pack_optional_seed(out, seed)
    return out


def decode_reset_cmd(buf):
    has_seed = bool(buf[1])
    seed, _ = _unpack_optional_seed(buf, 2)
    return has_seed, seed


def encode_reset_reply(observations, reset_infos) -> bytearray:
    out = bytearray((ST_OK,))
    for obs in observations:
        _encode_observation(out, obs)
    for info in reset_infos:
        _encode_reset_info(out, info)
    return out


def decode_reset_reply(buf, k: int, dims: Dims):
    pos = 1
    observations = []
    for _ in range(k):
        obs, pos = _decode_observation(buf, pos, dims)
        observations.append(obs)
    reset_infos = []
    for _ in range(k):
        info, pos = _decode_reset_info(buf, pos)
        reset_infos.append(info)
    return observations, reset_infos


def encode_reset_env_cmd(local_i: int, seed) -> bytearray:
    out = bytearray((OP_RESET_ENV,))
    out += _U32.pack(local_i)
    _pack_optional_seed(out, seed)
    return out


def decode_reset_env_cmd(buf):
    (local_i,) = _U32.unpack_from(buf, 1)
    seed, _ = _unpack_optional_seed(buf, 5)
    return local_i, seed


def encode_reset_env_reply(obs, reset_info) -> bytearray:
    out = bytearray((ST_OK,))
    _encode_observation(out, obs)
    _encode_reset_info(out, reset_info)
    return out


def decode_reset_env_reply(buf, dims: Dims):
    obs, pos = _decode_observation(buf, 1, dims)
    reset_info, _ = _decode_reset_info(buf, pos)
    return obs, reset_info


def encode_relane_reply(dims: Dims, reset_infos) -> bytearray:
    """Worker acknowledgement of a ``rebuild_lane``/relane command:
    the (possibly changed) codec geometry plus the slice's fresh
    per-lane reset infos."""
    out = bytearray((ST_OK,))
    out += dims.pack()
    for info in reset_infos:
        _encode_reset_info(out, info)
    return out


def decode_relane_reply(buf, k: int):
    dims = Dims.unpack_from(buf, 1)
    pos = 1 + _DIMS.size
    reset_infos = []
    for _ in range(k):
        info, pos = _decode_reset_info(buf, pos)
        reset_infos.append(info)
    return dims, reset_infos


def encode_error(message: str) -> bytes:
    return bytes((ST_ERR,)) + message.encode("utf-8", "replace")


def decode_error(buf) -> str:
    return bytes(buf[1:]).decode("utf-8", "replace")
