"""Behaviour policies and logged-episode collection for OPE.

Off-policy evaluation requires the probability the *behaviour* policy
assigned to every logged action. Deterministic policies (greedy ACSO,
playbook) have degenerate importance ratios, so logging is done with
stochastic wrappers: :class:`StochasticQPolicy` (softmax and/or
epsilon-greedy over masked Q-values) or :class:`UniformRandomPolicy`.

Each logged step stores the featurized state and valid-action mask so
target-policy probabilities, FQE regressions, and doubly-robust
corrections can all be computed offline from the same log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbn.filter import DBNTables
from repro.nn import no_grad
from repro.rl.dqn import valid_action_mask
from repro.rl.features import ACSOFeaturizer, FeatureSet, stack_features
from repro.utils.stats import discounted_return

__all__ = [
    "LoggedStep",
    "LoggedEpisode",
    "StochasticQPolicy",
    "UniformRandomPolicy",
    "collect_logged_episodes",
]


@dataclass(frozen=True)
class LoggedStep:
    """One decision in a logged episode."""

    action: int
    behavior_prob: float
    reward: float
    features: FeatureSet | None = None
    mask: np.ndarray | None = None


@dataclass
class LoggedEpisode:
    """A trajectory logged under a known behaviour policy."""

    steps: list[LoggedStep]
    gamma: float
    #: features/mask of the state after the final step (for bootstraps)
    final_features: FeatureSet | None = None
    final_mask: np.ndarray | None = None
    seed: int | None = None

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def rewards(self) -> np.ndarray:
        return np.array([s.reward for s in self.steps])

    @property
    def behavior_probs(self) -> np.ndarray:
        return np.array([s.behavior_prob for s in self.steps])

    @property
    def actions(self) -> np.ndarray:
        return np.array([s.action for s in self.steps], dtype=np.int64)

    def discounted_return(self) -> float:
        return discounted_return(self.rewards, self.gamma)


class StochasticQPolicy:
    """Stochastic policy over masked Q-values.

    With ``temperature`` set, base probabilities are a softmax of
    Q / temperature over valid actions; otherwise the base is the
    greedy one-hot. An ``epsilon`` mixture with the uniform-over-valid
    distribution guarantees full support, which ordinary importance
    sampling needs from the behaviour policy.
    """

    name = "stochastic-q"

    def __init__(self, qnet, tables: DBNTables,
                 temperature: float | None = None, epsilon: float = 0.1,
                 seed: int = 0):
        if temperature is not None and temperature <= 0:
            raise ValueError("temperature must be positive")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self.qnet = qnet
        self.tables = tables
        self.temperature = temperature
        self.epsilon = epsilon
        self.rng = np.random.default_rng(seed)
        self.featurizer: ACSOFeaturizer | None = None

    # ------------------------------------------------------------------
    def reset(self, env) -> None:
        self.qnet.bind_topology(env.topology)
        self.featurizer = ACSOFeaturizer(env.topology, self.tables)
        self.featurizer.reset()

    def action_probs(self, features: FeatureSet, mask: np.ndarray) -> np.ndarray:
        """Full action distribution at a (featurized) state.

        Works offline on logged features, which is how target-policy
        probabilities are recovered during estimation.
        """
        q = self.qnet.q_values(features)
        return self._probs_from_q(q, mask)

    def action_probs_batch(self, features_list, masks) -> list[np.ndarray]:
        """Distributions for many logged states in one network forward.

        The estimators' fast path (see
        :func:`repro.validation.ope.target_action_probs`): one stacked
        forward replaces a forward per step.
        """
        features_list = list(features_list)
        if not features_list:
            return []
        with no_grad():
            q = self.qnet.forward(*stack_features(features_list)).data
        return [self._probs_from_q(q[i], mask)
                for i, mask in enumerate(masks)]

    def _probs_from_q(self, q: np.ndarray, mask: np.ndarray) -> np.ndarray:
        valid = np.asarray(mask, dtype=bool)
        probs = np.zeros(len(q))
        if self.temperature is None:
            best = int(np.argmax(np.where(valid, q, -np.inf)))
            probs[best] = 1.0
        else:
            logits = np.where(valid, q / self.temperature, -np.inf)
            logits -= logits.max()
            exp = np.where(valid, np.exp(logits), 0.0)
            probs = exp / exp.sum()
        if self.epsilon > 0:
            uniform = valid / valid.sum()
            probs = (1.0 - self.epsilon) * probs + self.epsilon * uniform
        return probs

    def decide(self, obs) -> tuple[int, float, FeatureSet, np.ndarray]:
        """Online decision: (action index, its probability, features, mask)."""
        features = self.featurizer.update(obs)
        mask = valid_action_mask(self.qnet.action_list, obs)
        probs = self.action_probs(features, mask)
        action = int(self.rng.choice(len(probs), p=probs))
        return action, float(probs[action]), features, mask


class UniformRandomPolicy:
    """Uniform over valid actions; the maximum-coverage behaviour."""

    name = "uniform-random"

    def __init__(self, qnet, tables: DBNTables, seed: int = 0):
        # the Q-network is only used for its action list / featurizer
        # plumbing, so logs stay compatible with Q-based targets
        self._inner = StochasticQPolicy(qnet, tables, epsilon=1.0, seed=seed)

    def reset(self, env) -> None:
        self._inner.reset(env)

    def action_probs(self, features: FeatureSet, mask: np.ndarray) -> np.ndarray:
        valid = np.asarray(mask, dtype=bool)
        return valid / valid.sum()

    def action_probs_batch(self, features_list, masks) -> list[np.ndarray]:
        return [self.action_probs(None, mask) for mask in masks]

    def decide(self, obs):
        return self._inner.decide(obs)


def collect_logged_episodes(
    env,
    behavior,
    episodes: int,
    seed: int = 0,
    max_steps: int | None = None,
) -> list[LoggedEpisode]:
    """Run the behaviour policy and log (action, probability, reward).

    One environment action index is taken per step (the DQN decision
    model); the resulting log supports every estimator in this package.
    """
    gamma = env.config.reward.gamma
    horizon = env.config.tmax if max_steps is None else min(
        max_steps, env.config.tmax
    )
    logs: list[LoggedEpisode] = []
    for i in range(episodes):
        obs = env.reset(seed=seed + i)
        behavior.reset(env)
        steps: list[LoggedStep] = []
        done, t = False, 0
        while not done and t < horizon:
            action, prob, features, mask = behavior.decide(obs)
            obs, reward, done, info = env.step(action)
            t = info["t"]
            steps.append(LoggedStep(action, prob, reward, features, mask))
        final_action, _, final_features, final_mask = behavior.decide(obs)
        del final_action  # only the state snapshot is needed
        logs.append(
            LoggedEpisode(
                steps=steps,
                gamma=gamma,
                final_features=final_features,
                final_mask=final_mask,
                seed=seed + i,
            )
        )
    return logs
