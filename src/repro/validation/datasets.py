"""Chunked readers over the columnar OPE trace store.

:class:`TraceDataset` opens a directory written by
:class:`~repro.validation.tracestore.TraceWriter`, validates the
manifest against this code's record schema, and streams the log back
out — shard by shard as raw record arrays, or episode by episode as
reconstructed :class:`~repro.validation.logging.LoggedEpisode` objects
that are **bit-identical** to the in-memory episodes that produced
them (every numeric field round-trips through fixed-width
little-endian storage losslessly). Memory is bounded by one shard,
never the log.

Crash tolerance mirrors the writer's durability contract: shard files
absent from the manifest are a partial flush and are ignored; a listed
shard whose bytes are missing or short is corruption — fatal, except
when it is the *final* shard, which is dropped with a flag (the only
shard a torn ``close()`` can leave listed-but-short on exotic
filesystems).
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.rl.features import FeatureSet
from repro.validation.logging import LoggedEpisode, LoggedStep
from repro.validation.tracestore import (
    KIND_FINAL,
    KIND_STEP,
    MANIFEST_NAME,
    TRACE_FORMAT,
    TRACE_SCHEMA_VERSION,
    TraceDims,
    TraceIntegrityError,
    TraceSchemaError,
    trace_record_dtype,
)

__all__ = ["TraceDataset", "iter_episode_chunks"]


class TraceDataset:
    """Read-only view of one on-disk trace directory."""

    def __init__(self, path):
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise TraceIntegrityError(f"no {MANIFEST_NAME} in {self.path}")
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != TRACE_FORMAT:
            raise TraceSchemaError(
                f"{self.path} is not a {TRACE_FORMAT} directory"
            )
        if manifest.get("version") != TRACE_SCHEMA_VERSION:
            raise TraceSchemaError(
                f"trace schema version {manifest.get('version')} is not "
                f"this reader's version {TRACE_SCHEMA_VERSION}"
            )
        self.manifest = manifest
        self.meta: dict = manifest.get("meta", {})
        self.dims: TraceDims | None = None
        self.dtype: np.dtype | None = None
        if manifest.get("dims") is not None:
            self.dims = TraceDims(**manifest["dims"])
            self.dtype = trace_record_dtype(self.dims)
            stored = manifest.get("dtype")
            expected = json.loads(json.dumps(self.dtype.descr))
            if stored != expected:
                raise TraceSchemaError(
                    "stored record layout does not match "
                    f"trace_record_dtype({self.dims}): the trace was "
                    "written by an incompatible build"
                )
        #: set when a listed-but-truncated final shard was dropped
        self.dropped_truncated_final = False
        self.shards = self._validate_shards(manifest.get("shards", []))
        self.episodes_meta = [
            episode for shard in self.shards for episode in shard["episodes"]
        ]

    def _validate_shards(self, listed: list[dict]) -> list[dict]:
        shards: list[dict] = []
        for index, shard in enumerate(listed):
            shard_path = self.path / shard["file"]
            nbytes = shard_path.stat().st_size if shard_path.exists() else -1
            if self.dtype is not None \
                    and shard["nbytes"] != shard["rows"] * self.dtype.itemsize:
                raise TraceSchemaError(
                    f"manifest row/byte mismatch in {shard['file']}"
                )
            if nbytes != shard["nbytes"]:
                if index == len(listed) - 1:
                    self.dropped_truncated_final = True
                    continue
                raise TraceIntegrityError(
                    f"shard {shard['file']} is "
                    f"{'missing' if nbytes < 0 else 'truncated'} "
                    f"({nbytes} bytes, manifest says {shard['nbytes']})"
                )
            shards.append(shard)
        return shards

    # -- sizing --------------------------------------------------------
    def __len__(self) -> int:
        """Number of readable episodes."""
        return len(self.episodes_meta)

    @property
    def num_transitions(self) -> int:
        return sum(episode["steps"] for episode in self.episodes_meta)

    @property
    def num_rows(self) -> int:
        return sum(shard["rows"] for shard in self.shards)

    # -- streaming -----------------------------------------------------
    def iter_shards(self) -> Iterator[np.ndarray]:
        """Yield each shard as one structured record array."""
        if self.dtype is None:
            return
        for shard in self.shards:
            records = np.fromfile(self.path / shard["file"], dtype=self.dtype)
            if records.shape[0] != shard["rows"]:
                raise TraceIntegrityError(
                    f"shard {shard['file']} decoded to {records.shape[0]} "
                    f"rows, manifest says {shard['rows']}"
                )
            yield records

    def iter_episodes(self) -> Iterator[LoggedEpisode]:
        """Yield reconstructed episodes, holding one shard at a time."""
        for shard, records in zip(self.shards, self.iter_shards()):
            offset = 0
            for entry in shard["episodes"]:
                rows = entry["steps"] + (1 if entry["final"] else 0)
                yield _decode_episode(records[offset:offset + rows], entry)
                offset += rows

    def __iter__(self) -> Iterator[LoggedEpisode]:
        return self.iter_episodes()


def _decode_episode(records: np.ndarray, entry: dict) -> LoggedEpisode:
    steps: list[LoggedStep] = []
    final_features = final_mask = None
    for row in records:
        features = FeatureSet(
            node=np.array(row["node"]),
            plc=np.array(row["plc"]),
            glob=np.array(row["glob"]),
        )
        mask = np.array(row["mask"], dtype=bool)
        if int(row["kind"]) == KIND_FINAL:
            final_features, final_mask = features, mask
        elif int(row["kind"]) == KIND_STEP:
            steps.append(LoggedStep(
                action=int(row["action"]),
                behavior_prob=float(row["behavior_prob"]),
                reward=float(row["reward"]),
                features=features,
                mask=mask,
            ))
        else:
            raise TraceSchemaError(f"unknown record kind {int(row['kind'])}")
    if len(steps) != entry["steps"]:
        raise TraceIntegrityError(
            f"episode {entry['episode']} decoded {len(steps)} steps, "
            f"manifest says {entry['steps']}"
        )
    return LoggedEpisode(
        steps=steps,
        gamma=float(entry["gamma"]),
        final_features=final_features,
        final_mask=final_mask,
        seed=entry["seed"],
    )


def iter_episode_chunks(episodes: Iterable[LoggedEpisode],
                        chunk_episodes: int) -> Iterator[list[LoggedEpisode]]:
    """Group any episode source into fixed-size lists.

    Streaming estimators chunk by *episode count* — not by shard — so a
    :class:`TraceDataset` and the equivalent in-memory list produce the
    same chunk boundaries, which keeps their floating-point reduction
    order (and therefore their estimates) bit-identical.
    """
    if chunk_episodes < 1:
        raise ValueError("chunk_episodes must be positive")
    iterator = iter(episodes)
    while chunk := list(itertools.islice(iterator, chunk_episodes)):
        yield chunk
