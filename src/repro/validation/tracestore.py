"""Columnar on-disk episode log for off-policy evaluation.

OPE at production scale cannot hold its logged transitions in python
object lists: a million-step log of :class:`LoggedStep` dataclasses is
gigabytes of pointers. This module stores logged episodes as
**structured numpy record arrays** — one fixed-width, little-endian
record per transition, holding the action/propensity/reward triple the
estimators need, the engine's step-info tallies, and the featurized
state (node/PLC/global feature blocks plus the valid-action mask) that
FQE and doubly-robust corrections regress on.

Layout on disk (a directory):

* ``shard-NNNNN.bin`` — raw record bytes (``records.tobytes()``), one
  array per shard, whole episodes only (a shard is cut at the first
  episode boundary past ``shard_rows`` rows);
* ``manifest.json`` — schema version, record dtype, per-shard row
  counts/byte sizes and the episodes each shard contains. The manifest
  is rewritten **atomically** (temp file + ``os.replace``) after every
  completed shard, so a crashed recorder leaves a readable store: any
  shard file the manifest does not list is a partial flush and is
  ignored by the reader.

The record field names reuse :mod:`repro.sim.vec_transport`'s wire
layout (``INFO_SCALAR_FIELDS`` / ``BREAKDOWN_FIELDS``), so the
analyzer's transport-schema checker — which pins the engine's info
keys to that module — transitively covers the trace schema: an engine
info field cannot be added without the lint gate forcing the wire
format, and with it this record layout, to follow.

The format is deliberately pickle-free (structured scalars and
subarrays only): a trace file is safe to read from an untrusted
producer and portable across python versions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import NamedTuple

import numpy as np

from repro.eval.runner import drive_vec_episodes
from repro.rl.features import FeatureSet
from repro.sim.vec_transport import BREAKDOWN_FIELDS, INFO_SCALAR_FIELDS
from repro.validation.logging import LoggedEpisode

__all__ = [
    "TRACE_FORMAT",
    "TRACE_SCHEMA_VERSION",
    "KIND_STEP",
    "KIND_FINAL",
    "TraceDims",
    "TraceError",
    "TraceSchemaError",
    "TraceIntegrityError",
    "trace_record_dtype",
    "TraceWriter",
    "write_episodes",
    "record_episodes_vec",
]

TRACE_FORMAT = "repro-ope-trace"
TRACE_SCHEMA_VERSION = 1

#: record kinds: a logged decision step, or the featurized post-episode
#: state snapshot (one optional trailing record per episode — FQE's
#: bootstrap anchor, ``LoggedEpisode.final_features``)
KIND_STEP = 0
KIND_FINAL = 1

MANIFEST_NAME = "manifest.json"
_SHARD_PATTERN = "shard-{:05d}.bin"


class TraceError(RuntimeError):
    """Base error for trace-store problems."""


class TraceSchemaError(TraceError):
    """The on-disk schema does not match this code's record layout."""


class TraceIntegrityError(TraceError):
    """A shard listed by the manifest is missing or truncated."""


class TraceDims(NamedTuple):
    """Feature-block geometry; fixed for every record of one store."""

    n_nodes: int
    node_dim: int
    n_plcs: int
    plc_dim: int
    glob_dim: int
    n_actions: int

    @classmethod
    def from_step(cls, features: FeatureSet, mask) -> "TraceDims":
        node = np.asarray(features.node)
        plc = np.asarray(features.plc)
        glob = np.asarray(features.glob)
        return cls(
            n_nodes=int(node.shape[0]),
            node_dim=int(node.shape[1]),
            n_plcs=int(plc.shape[0]),
            plc_dim=int(plc.shape[1]),
            glob_dim=int(glob.shape[0]),
            n_actions=int(len(mask)),
        )


def trace_record_dtype(dims: TraceDims) -> np.dtype:
    """The explicit little-endian record layout for ``dims``.

    Scalar info fields carry the exact names of the binary wire
    format's fixed info block; the five :class:`RewardBreakdown`
    doubles are prefixed ``rb_`` (``it_cost`` appears in both field
    sets and record names must be unique).
    """
    fields: list[tuple] = [
        ("episode", "<u4"),
        ("lane", "<u2"),
        ("kind", "u1"),
        ("done", "u1"),
        ("action", "<i8"),
        ("behavior_prob", "<f8"),
        ("reward", "<f8"),
    ]
    for name in INFO_SCALAR_FIELDS:
        fields.append((name, "<f8" if name == "it_cost" else "<i8"))
    for name in BREAKDOWN_FIELDS:
        fields.append((f"rb_{name}", "<f8"))
    fields += [
        ("node", "<f8", (dims.n_nodes, dims.node_dim)),
        ("plc", "<f8", (dims.n_plcs, dims.plc_dim)),
        ("glob", "<f8", (dims.glob_dim,)),
        ("mask", "u1", (dims.n_actions,)),
    ]
    return np.dtype(fields)


def _descr_json(dtype: np.dtype) -> list:
    """``dtype.descr`` with JSON-safe lists instead of tuples."""
    return json.loads(json.dumps(dtype.descr))


@dataclass
class _EpisodeBuffer:
    """One in-flight episode: bounded by the horizon, never the log."""

    lane: int
    seed: int | None
    gamma: float
    steps: list[dict] = field(default_factory=list)
    final: tuple | None = None  # (features, mask)


class TraceWriter:
    """Streaming, shard-rotating writer of the columnar episode log.

    Episodes may *finish* out of order (vectorized lanes complete at
    their own pace) but are always *written* in episode-index order, so
    the on-disk log — and every estimate computed from it — is
    independent of how many lanes recorded it. Call order per episode:
    :meth:`begin_episode`, ``append_step`` per transition, then
    :meth:`finish_episode`; :meth:`close` seals the final shard and
    manifest.
    """

    def __init__(self, path, *, shard_rows: int = 65536,
                 meta: dict | None = None):
        if shard_rows < 1:
            raise ValueError("shard_rows must be positive")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        existing = sorted(self.path.glob("shard-*.bin"))
        if existing or (self.path / MANIFEST_NAME).exists():
            raise TraceError(
                f"refusing to record into non-empty trace dir {self.path}"
            )
        self.shard_rows = int(shard_rows)
        self.meta = dict(meta or {})
        self.dims: TraceDims | None = None
        self.dtype: np.dtype | None = None
        self._open: dict[int, _EpisodeBuffer] = {}
        self._finished: dict[int, _EpisodeBuffer] = {}
        self._next_flush = 0  # next episode index to serialize
        self._pending_arrays: list[np.ndarray] = []
        self._pending_episodes: list[dict] = []
        self._pending_rows = 0
        self._shards: list[dict] = []
        self._episodes_total = 0
        self._transitions_total = 0
        self._closed = False

    # -- recording -----------------------------------------------------
    def begin_episode(self, episode: int, *, lane: int = 0,
                      seed: int | None = None, gamma: float = 1.0) -> None:
        self._check_open()
        if episode in self._open or episode in self._finished \
                or episode < self._next_flush:
            raise TraceError(f"episode {episode} already recorded")
        self._open[episode] = _EpisodeBuffer(lane=lane, seed=seed,
                                             gamma=float(gamma))

    def append_step(self, episode: int, *, action: int,
                    behavior_prob: float, reward: float, done: bool,
                    features: FeatureSet, mask, info: dict | None = None) -> None:
        self._check_open()
        buffer = self._episode_buffer(episode)
        if self.dims is None:
            self.dims = TraceDims.from_step(features, mask)
            self.dtype = trace_record_dtype(self.dims)
        buffer.steps.append({
            "action": int(action),
            "behavior_prob": float(behavior_prob),
            "reward": float(reward),
            "done": bool(done),
            "features": features,
            "mask": mask,
            "info": info,
        })

    def finish_episode(self, episode: int, *, final_features=None,
                       final_mask=None) -> None:
        self._check_open()
        buffer = self._episode_buffer(episode)
        if (final_features is None) != (final_mask is None):
            raise TraceError("final features and mask come together")
        if final_features is not None:
            buffer.final = (final_features, final_mask)
        del self._open[episode]
        self._finished[episode] = buffer
        while self._next_flush in self._finished:
            self._serialize(self._next_flush,
                            self._finished.pop(self._next_flush))
            self._next_flush += 1

    def _episode_buffer(self, episode: int) -> _EpisodeBuffer:
        try:
            return self._open[episode]
        except KeyError:
            raise TraceError(f"episode {episode} is not open") from None

    # -- serialization -------------------------------------------------
    def _serialize(self, episode: int, buffer: _EpisodeBuffer) -> None:
        if self.dtype is None:
            raise TraceError("cannot serialize an episode with no steps "
                             "before the record schema is known")
        n = len(buffer.steps) + (1 if buffer.final is not None else 0)
        records = np.zeros(n, dtype=self.dtype)
        for row, step in zip(records, buffer.steps):
            row["episode"] = episode
            row["lane"] = buffer.lane
            row["kind"] = KIND_STEP
            row["done"] = step["done"]
            row["action"] = step["action"]
            row["behavior_prob"] = step["behavior_prob"]
            row["reward"] = step["reward"]
            info = step["info"]
            if info is not None:
                for name in INFO_SCALAR_FIELDS:
                    row[name] = info[name]
                breakdown = info["reward_breakdown"]
                for name in BREAKDOWN_FIELDS:
                    row[f"rb_{name}"] = getattr(breakdown, name)
            self._fill_state(row, step["features"], step["mask"])
        if buffer.final is not None:
            row = records[-1]
            row["episode"] = episode
            row["lane"] = buffer.lane
            row["kind"] = KIND_FINAL
            row["action"] = -1
            self._fill_state(row, *buffer.final)
        self._pending_arrays.append(records)
        self._pending_episodes.append({
            "episode": episode,
            "lane": buffer.lane,
            "seed": buffer.seed,
            "gamma": buffer.gamma,
            "steps": len(buffer.steps),
            "final": buffer.final is not None,
        })
        self._pending_rows += n
        self._episodes_total += 1
        self._transitions_total += len(buffer.steps)
        if self._pending_rows >= self.shard_rows:
            self._flush_shard()

    def _fill_state(self, row, features: FeatureSet, mask) -> None:
        node = np.asarray(features.node, dtype=np.float64)
        plc = np.asarray(features.plc, dtype=np.float64)
        glob = np.asarray(features.glob, dtype=np.float64)
        mask = np.asarray(mask, dtype=bool)
        dims = self.dims
        if (node.shape != (dims.n_nodes, dims.node_dim)
                or plc.shape != (dims.n_plcs, dims.plc_dim)
                or glob.shape != (dims.glob_dim,)
                or mask.shape != (dims.n_actions,)):
            raise TraceSchemaError(
                "feature shapes changed mid-recording: a trace store "
                "holds one topology's geometry "
                f"({dims}); got node{node.shape} plc{plc.shape} "
                f"glob{glob.shape} mask{mask.shape}"
            )
        row["node"] = node
        row["plc"] = plc
        row["glob"] = glob
        row["mask"] = mask

    def _flush_shard(self) -> None:
        if not self._pending_arrays:
            return
        records = (self._pending_arrays[0] if len(self._pending_arrays) == 1
                   else np.concatenate(self._pending_arrays))
        name = _SHARD_PATTERN.format(len(self._shards))
        payload = records.tobytes()
        shard_path = self.path / name
        with open(shard_path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        self._shards.append({
            "file": name,
            "rows": int(records.shape[0]),
            "nbytes": len(payload),
            "episodes": self._pending_episodes,
        })
        self._pending_arrays = []
        self._pending_episodes = []
        self._pending_rows = 0
        self._write_manifest()

    def _write_manifest(self) -> None:
        manifest = {
            "format": TRACE_FORMAT,
            "version": TRACE_SCHEMA_VERSION,
            "dims": None if self.dims is None else self.dims._asdict(),
            "dtype": None if self.dtype is None else _descr_json(self.dtype),
            "meta": self.meta,
            "shards": self._shards,
            "episodes": sum(len(s["episodes"]) for s in self._shards),
            "transitions": sum(
                e["steps"] for s in self._shards for e in s["episodes"]
            ),
        }
        tmp = self.path / (MANIFEST_NAME + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path / MANIFEST_NAME)

    # -- lifecycle -----------------------------------------------------
    @property
    def episodes_written(self) -> int:
        return self._episodes_total

    @property
    def transitions_written(self) -> int:
        return self._transitions_total

    def close(self) -> None:
        if self._closed:
            return
        if self._open or self._finished:
            stuck = sorted(self._open) + sorted(self._finished)
            raise TraceError(
                f"cannot close with unflushed episodes {stuck}: episode "
                f"{self._next_flush} never finished"
            )
        self._flush_shard()  # the final, possibly short shard
        self._write_manifest()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise TraceError("writer is closed")

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # on error, keep what was durably flushed but do not seal — the
        # manifest already reflects every completed shard
        if exc_type is None:
            self.close()


def write_episodes(episodes, path, *, lane: int = 0,
                   shard_rows: int = 65536, meta: dict | None = None) -> Path:
    """Persist in-memory :class:`LoggedEpisode` objects as a trace store.

    The bridge from the legacy list-of-episodes world (and the unit
    tests' hand-built logs) into the columnar format; step-info tallies
    are zero because :class:`LoggedStep` does not carry them (``t`` is
    filled with the 1-based step index).
    """
    path = Path(path)
    with TraceWriter(path, shard_rows=shard_rows, meta=meta) as writer:
        for index, episode in enumerate(episodes):
            writer.begin_episode(index, lane=lane, seed=episode.seed,
                                 gamma=episode.gamma)
            for t, step in enumerate(episode.steps):
                if step.features is None or step.mask is None:
                    raise TraceError(
                        f"episode {index} step {t} has no features/mask: "
                        "the columnar store only holds fully featurized logs"
                    )
                writer.append_step(
                    index, action=step.action,
                    behavior_prob=step.behavior_prob, reward=step.reward,
                    done=t == len(episode.steps) - 1,
                    features=step.features, mask=step.mask,
                    info={**{name: 0 for name in INFO_SCALAR_FIELDS},
                          "t": t + 1, "it_cost": 0.0,
                          "reward_breakdown": _ZERO_BREAKDOWN},
                )
            writer.finish_episode(index,
                                  final_features=episode.final_features,
                                  final_mask=episode.final_mask)
    return path


class _ZeroBreakdown:
    """Stand-in breakdown for logs that never saw the engine."""

    r_plc = r_it = r_term = total = it_cost = 0.0


_ZERO_BREAKDOWN = _ZeroBreakdown()


def record_episodes_vec(venv, behavior_factory, episodes: int, writer:
                        TraceWriter, *, seed: int = 0,
                        max_steps: int | None = None) -> int:
    """Stream logged episodes from vectorized rollouts into ``writer``.

    Episode ``ep`` runs with environment seed ``seed + ep`` under a
    **fresh** behaviour policy ``behavior_factory(ep)`` (per-episode
    policy state and RNG), so the recorded log — like
    :func:`~repro.eval.runner.evaluate_policy_vec` metrics — is
    bit-identical no matter how many lanes record it. Each transition
    is appended as it happens; memory holds at most one in-flight
    episode per lane plus the writer's reorder window, never the log.

    Returns the number of transitions recorded.
    """
    gamma = venv.config.reward.gamma
    tmax = venv.config.tmax
    horizon = tmax if max_steps is None else min(max_steps, tmax)
    n = venv.num_envs
    behaviors: list = [None] * n
    pending: list = [None] * n
    recorded = 0

    def on_episode_start(slot: int, ep: int, obs) -> None:
        behavior = behavior_factory(ep)
        behavior.reset(venv.policy_env(slot))
        behaviors[slot] = behavior
        writer.begin_episode(ep, lane=slot, seed=seed + ep, gamma=gamma)

    def act(slot: int, ep: int, obs):
        action, prob, features, mask = behaviors[slot].decide(obs)
        pending[slot] = (action, prob, features, mask)
        return action

    def on_step(slot: int, ep: int, obs, reward, done, info) -> None:
        nonlocal recorded
        action, prob, features, mask = pending[slot]
        writer.append_step(ep, action=action, behavior_prob=prob,
                           reward=reward, done=done,
                           features=features, mask=mask, info=info)
        recorded += 1

    def on_episode_end(slot: int, ep: int, obs) -> None:
        # snapshot the post-episode state for FQE's bootstrap anchor,
        # mirroring collect_logged_episodes' trailing decide()
        _, _, features, mask = behaviors[slot].decide(obs)
        writer.finish_episode(ep, final_features=features, final_mask=mask)

    drive_vec_episodes(venv, episodes, seed=seed, horizon=horizon,
                       on_episode_start=on_episode_start, act=act,
                       on_step=on_step, on_episode_end=on_episode_end)
    return recorded
