"""Data-efficient policy validation via off-policy evaluation (OPE).

The paper's conclusion asks for "data-efficient methods to validate
learned policies performance" before deployment (Section 7): a new
ACSO policy must be assessed without handing it control of a live
network. This package implements the standard OPE toolchain on logged
INASIM episodes:

* :mod:`repro.validation.logging` -- behaviour policies with recorded
  action probabilities, and logged-episode collection;
* :mod:`repro.validation.ope` -- ordinary, weighted, and per-decision
  importance sampling estimators with effective-sample-size
  diagnostics;
* :mod:`repro.validation.fqe` -- fitted Q evaluation (model-based
  value regression) and the doubly-robust combination;
* :mod:`repro.validation.confidence` -- bootstrap confidence intervals
  and an empirical-Bernstein high-confidence lower bound (the
  "certify before deployment" number);
* :mod:`repro.validation.tracestore` /
  :mod:`repro.validation.datasets` -- the columnar on-disk episode
  log: streaming recorder over vectorized rollouts, chunked reader,
  crash-tolerant manifest;
* :mod:`repro.validation.suite` -- :func:`run_ope_suite`, every
  estimator with bootstrap CIs in one report (the promotion gate's
  input).
"""

from repro.validation.logging import (
    LoggedEpisode,
    LoggedStep,
    StochasticQPolicy,
    UniformRandomPolicy,
    collect_logged_episodes,
)
from repro.validation.ope import (
    BehaviorSupportError,
    EpisodeOPEStats,
    OPEResult,
    effective_sample_size,
    episode_ope_stats,
    ordinary_importance_sampling,
    per_decision_importance_sampling,
    weighted_importance_sampling,
)
from repro.validation.fqe import FQEResult, doubly_robust, fitted_q_evaluation
from repro.validation.confidence import (
    bootstrap_ci,
    bootstrap_ratio_ci,
    empirical_bernstein_lower_bound,
)
from repro.validation.tracestore import (
    TraceDims,
    TraceError,
    TraceIntegrityError,
    TraceSchemaError,
    TraceWriter,
    record_episodes_vec,
    trace_record_dtype,
    write_episodes,
)
from repro.validation.datasets import TraceDataset, iter_episode_chunks
from repro.validation.suite import OPESuiteReport, SuiteEstimate, run_ope_suite

__all__ = [
    "LoggedEpisode",
    "LoggedStep",
    "StochasticQPolicy",
    "UniformRandomPolicy",
    "collect_logged_episodes",
    "BehaviorSupportError",
    "EpisodeOPEStats",
    "OPEResult",
    "effective_sample_size",
    "episode_ope_stats",
    "ordinary_importance_sampling",
    "weighted_importance_sampling",
    "per_decision_importance_sampling",
    "FQEResult",
    "fitted_q_evaluation",
    "doubly_robust",
    "bootstrap_ci",
    "bootstrap_ratio_ci",
    "empirical_bernstein_lower_bound",
    "TraceDims",
    "TraceError",
    "TraceIntegrityError",
    "TraceSchemaError",
    "TraceWriter",
    "trace_record_dtype",
    "write_episodes",
    "record_episodes_vec",
    "TraceDataset",
    "iter_episode_chunks",
    "OPESuiteReport",
    "SuiteEstimate",
    "run_ope_suite",
]
