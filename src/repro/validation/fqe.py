"""Fitted Q evaluation and the doubly-robust estimator.

Importance sampling degenerates over long horizons (the trajectory
weight is a product of thousands of ratios). Fitted Q evaluation (FQE,
Le et al. 2019) avoids ratios entirely: it regresses the *target*
policy's action-value function on logged transitions by iterating the
evaluation Bellman operator

    Q_{k+1}(s, a) <- r + gamma * sum_a' pi(a'|s') Q_k(s', a')

with the same attention network used for control. The value estimate
is the policy-weighted Q at logged episode starts.

The doubly-robust estimator (Jiang and Li 2016) then combines FQE's
low variance with per-decision IS's unbiasedness:

    V_DR = V(s_0) + sum_t gamma^t w_t (r_t + gamma V(s_{t+1})
                                        - Q(s_t, a_t))

where w_t is the cumulative ratio product. With a perfect Q model the
correction terms vanish; with broken importance weights the Q model
anchors the estimate.

Both estimators stream their episode source in fixed-size **episode
chunks** (:func:`~repro.validation.datasets.iter_episode_chunks`):
features for one chunk are materialized, regressed or scored, and
dropped before the next chunk loads, so a million-transition
:class:`~repro.validation.datasets.TraceDataset` trains in bounded
memory. Chunk boundaries depend only on episode count — never on shard
layout — which makes the on-disk and in-memory paths numerically
identical on the same episodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.nn import Adam, huber_loss, no_grad
from repro.rl.features import stack_features
from repro.validation.datasets import iter_episode_chunks
from repro.validation.logging import LoggedEpisode
from repro.validation.ope import (
    OPEResult,
    effective_sample_size,
    step_ratios,
    target_action_probs,
)

__all__ = ["FQEResult", "fitted_q_evaluation", "doubly_robust",
           "episode_dr_value"]


@dataclass
class FQEResult:
    """Outcome of a fitted-Q-evaluation run."""

    #: start-state value on the *return* scale (rescaled if the fit
    #: used reward normalization)
    value: float
    #: per-iteration mean regression loss
    losses: list[float] = field(default_factory=list)
    #: the fitted network (bound, trained in place); its outputs are on
    #: the normalized scale -- divide by ``reward_scale`` to compare
    #: with returns
    qnet: object = field(default=None, repr=False)
    #: the reward multiplier used during fitting
    reward_scale: float = 1.0
    #: per-episode start-state values on the return scale — the direct
    #: method's bootstrap population (``value`` is their mean computed
    #: before the per-element rescale, so use ``value`` as the point
    #: estimate)
    start_values: np.ndarray = field(default=None, repr=False)


def _transitions(episodes: list[LoggedEpisode]):
    """Flatten logs into (features, mask, action, reward, next, done,
    return-to-go)."""
    feats, masks, actions, rewards, next_feats, next_masks, dones = (
        [], [], [], [], [], [], []
    )
    returns_to_go: list[float] = []
    for episode in episodes:
        steps = episode.steps
        tail = 0.0
        rtg = np.empty(len(steps))
        for t in reversed(range(len(steps))):
            tail = steps[t].reward + episode.gamma * tail
            rtg[t] = tail
        returns_to_go.extend(rtg)
        for t, step in enumerate(steps):
            feats.append(step.features)
            masks.append(step.mask)
            actions.append(step.action)
            rewards.append(step.reward)
            if t + 1 < len(steps):
                next_feats.append(steps[t + 1].features)
                next_masks.append(steps[t + 1].mask)
                dones.append(False)
            else:
                next_feats.append(episode.final_features or step.features)
                next_masks.append(
                    episode.final_mask if episode.final_mask is not None
                    else step.mask
                )
                dones.append(True)
    return (
        feats, masks, np.array(actions, np.int64), np.array(rewards),
        next_feats, next_masks, np.array(dones, float),
        np.array(returns_to_go),
    )


def _policy_values(qnet, target_policy, features_list, masks) -> np.ndarray:
    """V(s) = sum_a pi(a|s) Q(s, a) for a batch of states."""
    with no_grad():
        q = qnet.forward(*stack_features(features_list)).data
    probs_list = target_action_probs(target_policy, features_list, masks)
    values = np.empty(len(features_list))
    for i, probs in enumerate(probs_list):
        values[i] = float(probs @ q[i])
    return values


def _first_gamma(episodes) -> float:
    for episode in episodes:
        return episode.gamma
    raise ValueError("need at least one logged episode")


def fitted_q_evaluation(
    episodes: Iterable[LoggedEpisode],
    target_policy,
    qnet,
    iterations: int = 5,
    epochs_per_iteration: int = 2,
    batch_size: int = 32,
    lr: float = 1e-3,
    seed: int = 0,
    reward_scale: float | None = None,
    mc_epochs: int = 2,
    chunk_episodes: int = 64,
) -> FQEResult:
    """Fit Q^pi on logged transitions; returns the start-state value.

    ``qnet`` must already be bound to the logging topology; it is
    trained in place (pass a fresh network to keep the control policy
    untouched). ``target_policy.action_probs`` supplies pi(a|s).

    ``episodes`` is any re-iterable episode source — a list or a
    :class:`~repro.validation.datasets.TraceDataset`. Each pass
    (warm-start, every Bellman iteration, the final start-state
    scoring) re-streams the source ``chunk_episodes`` episodes at a
    time; peak memory is one chunk's transitions, never the log's.

    ``reward_scale`` multiplies rewards during the regression and the
    returned value is divided back. The default (1 - gamma) keeps the
    regressed values O(1) -- INASIM's terminal bonus alone is
    1/(1-gamma) ~ 2000, far outside any tanh-bounded Q head. Pass 1.0
    for raw-scale fitting with an unbounded head.

    ``mc_epochs`` warm-start epochs first regress Q on the observed
    (behaviour-policy) returns-to-go. With gamma near 1 the Bellman
    operator contracts at ~gamma per iteration, so a cold-started FQE
    would keep its initialization bias for hundreds of iterations; the
    Monte-Carlo anchor fixes the value scale immediately and the
    Bellman iterations then bend the estimate toward the target policy.
    """
    if len(episodes) == 0:
        raise ValueError("need at least one logged episode")
    gamma = _first_gamma(episodes)
    if reward_scale is None:
        reward_scale = 1.0 - gamma
    if reward_scale <= 0:
        raise ValueError("reward_scale must be positive")
    optimizer = Adam(qnet.parameters(), lr=lr)
    rng = np.random.default_rng(seed)
    losses: list[float] = []

    def _regress(feats, actions, targets_all: np.ndarray,
                 epochs: int) -> list[float]:
        n = len(actions)
        epoch_losses = []
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                batch = order[start:start + batch_size]
                states = stack_features([feats[i] for i in batch])
                optimizer.zero_grad()
                q = qnet.forward(*states)
                predicted = q.gather_rows(actions[batch])
                loss = huber_loss(predicted, targets_all[batch])
                loss.backward()
                optimizer.step()
                epoch_losses.append(loss.item())
        return epoch_losses

    if mc_epochs > 0:
        pass_losses: list[float] = []
        for chunk in iter_episode_chunks(episodes, chunk_episodes):
            feats, _, actions, _, _, _, _, returns_to_go = _transitions(chunk)
            pass_losses += _regress(feats, actions,
                                    returns_to_go * reward_scale, mc_epochs)
        losses.append(float(np.mean(pass_losses)))

    for _ in range(iterations):
        pass_losses = []
        for chunk in iter_episode_chunks(episodes, chunk_episodes):
            (feats, _, actions, rewards, next_feats, next_masks, dones,
             _) = _transitions(chunk)
            # freeze the bootstrap values for this chunk
            next_values = _policy_values(qnet, target_policy, next_feats,
                                         next_masks)
            targets_all = (rewards * reward_scale
                           + gamma * (1.0 - dones) * next_values)
            pass_losses += _regress(feats, actions, targets_all,
                                    epochs_per_iteration)
        losses.append(float(np.mean(pass_losses)))

    start_chunks: list[np.ndarray] = []
    for chunk in iter_episode_chunks(episodes, chunk_episodes):
        start_feats = [ep.steps[0].features for ep in chunk]
        start_masks = [ep.steps[0].mask for ep in chunk]
        start_chunks.append(
            _policy_values(qnet, target_policy, start_feats, start_masks)
        )
    start_values = np.concatenate(start_chunks)
    return FQEResult(value=float(start_values.mean()) / reward_scale,
                     losses=losses, qnet=qnet, reward_scale=reward_scale,
                     start_values=start_values / reward_scale)


def episode_dr_value(
    episode: LoggedEpisode,
    target_policy,
    qnet,
    clip: float | None = None,
    reward_scale: float = 1.0,
    label: int | str | None = None,
) -> tuple[float, float]:
    """One episode's doubly-robust value and its trajectory weight."""
    steps = episode.steps
    feats = [s.features for s in steps]
    masks = [s.mask for s in steps]
    with no_grad():
        q_all = qnet.forward(*stack_features(feats)).data / reward_scale
    q_taken = q_all[np.arange(len(steps)), episode.actions]
    probs_list = target_action_probs(target_policy, feats, masks)
    state_values = np.empty(len(steps))
    for t, probs in enumerate(probs_list):
        state_values[t] = float(probs @ q_all[t])
    next_values = np.append(state_values[1:], 0.0)  # terminal V = 0

    ratios = step_ratios(episode, target_policy, clip, label=label)
    cumulative = np.cumprod(ratios)
    discounts = episode.gamma ** np.arange(len(steps))
    corrections = cumulative * (
        episode.rewards + episode.gamma * next_values - q_taken
    )
    value = state_values[0] + float(np.sum(discounts * corrections))
    weight = float(cumulative[-1]) if len(cumulative) else 1.0
    return value, weight


def doubly_robust(
    episodes: Iterable[LoggedEpisode],
    target_policy,
    qnet,
    clip: float | None = None,
    reward_scale: float = 1.0,
) -> OPEResult:
    """Doubly-robust estimate using a fitted Q model.

    ``qnet`` is the (already fitted) evaluation network, e.g. the
    output of :func:`fitted_q_evaluation`; pass that fit's
    ``reward_scale`` so the model's normalized values are compared with
    raw rewards on a single scale. Streams the episode source one
    episode at a time.
    """
    if reward_scale <= 0:
        raise ValueError("reward_scale must be positive")
    values_list: list[float] = []
    weights_list: list[float] = []
    for index, episode in enumerate(episodes):
        value, weight = episode_dr_value(episode, target_policy, qnet,
                                         clip, reward_scale, label=index)
        values_list.append(value)
        weights_list.append(weight)
    if not values_list:
        raise ValueError("need at least one logged episode")
    values = np.array(values_list)
    final_weights = np.array(weights_list)

    if values.size > 1:
        stderr = float(values.std(ddof=1) / np.sqrt(values.size))
    else:
        stderr = 0.0
    return OPEResult(float(values.mean()), stderr,
                     effective_sample_size(final_weights), len(values),
                     "DR")
