"""The full OPE estimator suite over one episode source.

:func:`run_ope_suite` is the offline half of checkpoint promotion: it
streams a logged-episode source (an in-memory list or an on-disk
:class:`~repro.validation.datasets.TraceDataset`) through every
estimator in this package — OIS / WIS / PDIS importance sampling, a
fitted-Q-evaluation fit, its direct-method read-out, and the
doubly-robust combination — and wraps each point estimate in a
percentile-bootstrap confidence interval. The resulting
:class:`OPESuiteReport` is plain data (``to_dict`` / ``to_json``), fit
for the run store, CI artifacts, and the serve layer's promotion rule,
which compares nothing but these CI lower bounds.

Every number is produced by the *same* per-episode reductions the
standalone estimators use (:func:`~repro.validation.ope.episode_ope_stats`,
:func:`~repro.validation.fqe.episode_dr_value`), so a suite run over
on-disk shards is bit-identical to calling the individual estimators
on the equivalent in-memory episodes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.validation.confidence import bootstrap_ci, bootstrap_ratio_ci
from repro.validation.fqe import episode_dr_value, fitted_q_evaluation
from repro.validation.logging import LoggedEpisode
from repro.validation.ope import (
    _mean_stderr,
    _stats_arrays,
    effective_sample_size,
    wis_point_estimate,
)

__all__ = ["SuiteEstimate", "OPESuiteReport", "run_ope_suite"]

#: estimator keys a full report carries, in presentation order
SUITE_METHODS = ("DM", "FQE", "DR", "OIS", "WIS", "PDIS")


@dataclass(frozen=True)
class SuiteEstimate:
    """One estimator's value with its bootstrap interval."""

    method: str
    estimate: float
    lower: float
    upper: float
    stderr: float
    #: effective sample size of the trajectory weights; NaN for the
    #: model-based estimators, which use no importance weights
    ess: float
    episodes: int

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "estimate": self.estimate,
            "lower": self.lower,
            "upper": self.upper,
            "stderr": self.stderr,
            "ess": None if np.isnan(self.ess) else self.ess,
            "episodes": self.episodes,
        }

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"{self.method}: {self.estimate:.3f} "
                f"[{self.lower:.3f}, {self.upper:.3f}]")


@dataclass
class OPESuiteReport:
    """All estimates for one (log, target policy) pair."""

    estimates: dict[str, SuiteEstimate]
    episodes: int
    transitions: int
    alpha: float
    clip: float | None
    #: FQE fit diagnostics (per-iteration mean regression loss)
    fqe_losses: list[float] = field(default_factory=list)
    fqe_reward_scale: float = 1.0

    def __getitem__(self, method: str) -> SuiteEstimate:
        return self.estimates[method]

    def to_dict(self) -> dict:
        return {
            "episodes": self.episodes,
            "transitions": self.transitions,
            "alpha": self.alpha,
            "clip": self.clip,
            "fqe_losses": self.fqe_losses,
            "fqe_reward_scale": self.fqe_reward_scale,
            "estimates": {
                name: estimate.to_dict()
                for name, estimate in self.estimates.items()
            },
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def run_ope_suite(
    episodes: Iterable[LoggedEpisode],
    target_policy,
    eval_qnet,
    clip: float | None = None,
    alpha: float = 0.05,
    n_boot: int = 2000,
    bootstrap_seed: int = 0,
    fqe_options: dict | None = None,
) -> OPESuiteReport:
    """Every estimator + bootstrap CIs over one logged-episode source.

    ``episodes`` must be re-iterable (a list or a
    :class:`~repro.validation.datasets.TraceDataset`): the suite makes
    one streaming pass for the IS scalars, the FQE passes, and one DR
    pass with the fitted network — transitions are never materialized
    whole. ``eval_qnet`` is a *fresh* evaluation network already bound
    to the logging topology; it is trained in place by the FQE fit.
    ``fqe_options`` forwards keyword arguments to
    :func:`~repro.validation.fqe.fitted_q_evaluation` (iterations,
    chunk_episodes, seed, ...).

    DM is the fitted model's direct-method read-out — the
    policy-weighted Q at logged start states — and FQE reports the same
    fit with the same interval; they are listed separately so reports
    keep the conventional estimator names. Model-based entries carry
    ``ess = NaN`` (no importance weights involved).
    """
    weights, returns, pdis_values = _stats_arrays(episodes, target_policy,
                                                  clip)
    n = len(weights)
    transitions = getattr(episodes, "num_transitions", None)
    if transitions is None:
        transitions = sum(len(episode) for episode in episodes)
    ess = effective_sample_size(weights)

    estimates: dict[str, SuiteEstimate] = {}

    ois_values = weights * returns
    ois_estimate, ois_stderr = _mean_stderr(ois_values)
    _, ois_lower, ois_upper = bootstrap_ci(ois_values, alpha, n_boot,
                                           bootstrap_seed)
    estimates["OIS"] = SuiteEstimate("OIS", ois_estimate, ois_lower,
                                     ois_upper, ois_stderr, ess, n)

    wis_estimate, wis_lower, wis_upper = bootstrap_ratio_ci(
        weights, returns, alpha, n_boot, bootstrap_seed
    )
    total = weights.sum()
    if total == 0.0:
        wis_residuals = np.zeros_like(returns)
    else:
        wis_residuals = (weights / total) * (returns - wis_estimate) * n
    _, wis_stderr = _mean_stderr(wis_residuals)
    estimates["WIS"] = SuiteEstimate("WIS", wis_estimate, wis_lower,
                                     wis_upper, wis_stderr, ess, n)

    pdis_estimate, pdis_stderr = _mean_stderr(pdis_values)
    _, pdis_lower, pdis_upper = bootstrap_ci(pdis_values, alpha, n_boot,
                                             bootstrap_seed)
    estimates["PDIS"] = SuiteEstimate("PDIS", pdis_estimate, pdis_lower,
                                      pdis_upper, pdis_stderr, ess, n)

    fit = fitted_q_evaluation(episodes, target_policy, eval_qnet,
                              **(fqe_options or {}))
    _, dm_lower, dm_upper = bootstrap_ci(fit.start_values, alpha, n_boot,
                                         bootstrap_seed)
    _, dm_stderr = _mean_stderr(fit.start_values)
    for name in ("DM", "FQE"):
        estimates[name] = SuiteEstimate(name, fit.value, dm_lower, dm_upper,
                                        dm_stderr, float("nan"), n)

    dr_values = np.array([
        episode_dr_value(episode, target_policy, fit.qnet, clip,
                         fit.reward_scale, label=index)[0]
        for index, episode in enumerate(episodes)
    ])
    dr_estimate, dr_stderr = _mean_stderr(dr_values)
    _, dr_lower, dr_upper = bootstrap_ci(dr_values, alpha, n_boot,
                                         bootstrap_seed)
    estimates["DR"] = SuiteEstimate("DR", dr_estimate, dr_lower, dr_upper,
                                    dr_stderr, ess, n)

    ordered = {name: estimates[name] for name in SUITE_METHODS}
    return OPESuiteReport(
        estimates=ordered, episodes=n, transitions=int(transitions),
        alpha=alpha, clip=clip, fqe_losses=fit.losses,
        fqe_reward_scale=fit.reward_scale,
    )
