"""Confidence machinery for policy certification.

Before an autonomous defender is deployed on a real ICS network, the
operator needs more than a point estimate -- they need "with
probability 1 - delta the policy's value is at least L". Two standard
tools:

* :func:`bootstrap_ci` -- percentile bootstrap over per-episode
  estimates (IS-weighted returns, DR values, or plain on-policy
  returns);
* :func:`empirical_bernstein_lower_bound` -- a distribution-free
  high-confidence lower bound (Maurer and Pontil 2009, the bound
  behind HCOPE) that needs only a range on the per-episode values.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "bootstrap_ci",
    "bootstrap_ratio_ci",
    "empirical_bernstein_lower_bound",
]


def bootstrap_ci(
    values,
    alpha: float = 0.05,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Percentile-bootstrap (mean, lower, upper) at level 1 - alpha."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    rng = np.random.default_rng(seed)
    indices = rng.integers(values.size, size=(n_boot, values.size))
    means = values[indices].mean(axis=1)
    lower = float(np.quantile(means, alpha / 2))
    upper = float(np.quantile(means, 1 - alpha / 2))
    return float(values.mean()), lower, upper


def bootstrap_ratio_ci(
    weights,
    values,
    alpha: float = 0.05,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float, float]:
    """Percentile bootstrap of a self-normalized (ratio) estimator.

    The WIS estimate sum_i (w_i / sum w) v_i is not a mean of
    per-episode values, so :func:`bootstrap_ci` does not apply;
    here each replicate resamples (weight, value) *pairs* and
    recomputes the normalized estimate (replicates whose weights all
    vanish contribute 0, matching the estimator's own degenerate-log
    convention). Returns (estimate, lower, upper).
    """
    weights = np.asarray(list(weights), dtype=float)
    values = np.asarray(list(values), dtype=float)
    if weights.size == 0 or weights.shape != values.shape:
        raise ValueError("need matching, non-empty weights and values")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    total = weights.sum()
    estimate = 0.0 if total == 0.0 else float((weights / total) @ values)
    rng = np.random.default_rng(seed)
    indices = rng.integers(weights.size, size=(n_boot, weights.size))
    w = weights[indices]
    totals = w.sum(axis=1)
    sums = (w * values[indices]).sum(axis=1)
    replicates = np.where(totals == 0.0, 0.0,
                          sums / np.where(totals == 0.0, 1.0, totals))
    lower = float(np.quantile(replicates, alpha / 2))
    upper = float(np.quantile(replicates, 1 - alpha / 2))
    return estimate, lower, upper


def empirical_bernstein_lower_bound(
    values,
    delta: float = 0.05,
    value_range: float | None = None,
) -> float:
    """High-confidence lower bound on the mean (Maurer-Pontil 2009).

        mean - sqrt(2 var ln(2/delta) / n) - 7 R ln(2/delta) / (3 (n-1))

    holds with probability at least 1 - delta for i.i.d. values in an
    interval of width R. ``value_range`` defaults to the observed span
    (an optimistic choice; pass the true range for a certified bound --
    for discounted INASIM returns that is the reward envelope times
    1/(1-gamma)).
    """
    values = np.asarray(list(values), dtype=float)
    n = values.size
    if n < 2:
        raise ValueError("need at least two values")
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    if value_range is None:
        value_range = float(values.max() - values.min())
    if value_range < 0:
        raise ValueError("value_range must be non-negative")
    log_term = math.log(2.0 / delta)
    variance = float(values.var(ddof=1))
    return (
        float(values.mean())
        - math.sqrt(2.0 * variance * log_term / n)
        - 7.0 * value_range * log_term / (3.0 * (n - 1))
    )
