"""Importance-sampling estimators of a target policy's value.

Given episodes logged under a behaviour policy b and a target policy
pi, each step has an importance ratio rho_t = pi(a_t|s_t) / b(a_t|s_t).
Three standard estimators (Precup 2000; Thomas 2015):

* **Ordinary IS**: mean over episodes of w_T * G, where w_T is the
  full-trajectory ratio product and G the discounted return. Unbiased,
  unbounded variance.
* **Weighted IS**: the w_T-weighted mean of returns. Biased, consistent,
  much lower variance.
* **Per-decision IS**: credit each reward only with the ratios up to
  its own time step: sum_t gamma^t w_t r_t. Unbiased with lower
  variance than ordinary IS.

The effective sample size ESS = (sum w)^2 / sum w^2 diagnoses weight
degeneracy -- the central failure mode over INASIM's 5,000-step
horizons, and the reason the doubly-robust estimator of
:mod:`repro.validation.fqe` exists.

Every estimator takes any *iterable* of logged episodes — an in-memory
list or a :class:`~repro.validation.datasets.TraceDataset` streaming
shards off disk — and makes exactly one pass, keeping only three
scalars per episode (:class:`EpisodeOPEStats`). Those per-episode
reductions are shared with :func:`~repro.validation.suite.run_ope_suite`
so the suite's numbers equal the standalone estimators bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.validation.logging import LoggedEpisode

__all__ = [
    "OPEResult",
    "EpisodeOPEStats",
    "BehaviorSupportError",
    "step_ratios",
    "episode_ope_stats",
    "collect_ope_stats",
    "wis_point_estimate",
    "target_action_probs",
    "effective_sample_size",
    "ordinary_importance_sampling",
    "weighted_importance_sampling",
    "per_decision_importance_sampling",
]


@dataclass(frozen=True)
class OPEResult:
    """A value estimate with sampling diagnostics."""

    estimate: float
    stderr: float
    #: effective sample size of the trajectory weights
    ess: float
    episodes: int
    method: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.method}: {self.estimate:.2f} +/- {self.stderr:.2f} "
            f"(ESS {self.ess:.1f} / {self.episodes})"
        )


class BehaviorSupportError(ValueError):
    """A logged step breaks the importance-sampling support condition.

    Raised — naming the offending episode and step — instead of letting
    a zero or denormal behaviour probability turn the trajectory weight
    into silent NaN/inf that poisons every downstream mean.
    """


def target_action_probs(target_policy, features_list, masks) -> list:
    """Target-policy distributions for a batch of logged states.

    Uses the policy's vectorized ``action_probs_batch`` when it has one
    (one stacked network forward instead of a forward per step) and
    falls back to per-state ``action_probs``. Every estimator in this
    package resolves propensities through here, so a given policy
    always takes the same numerical path — which is what keeps the
    suite, the standalone estimators, and the on-disk replay of a log
    bit-identical to each other.
    """
    batch = getattr(target_policy, "action_probs_batch", None)
    if batch is not None:
        return list(batch(features_list, masks))
    return [
        target_policy.action_probs(features, mask)
        for features, mask in zip(features_list, masks)
    ]


def step_ratios(episode: LoggedEpisode, target_policy,
                clip: float | None = None,
                label: int | str | None = None) -> np.ndarray:
    """Per-step importance ratios pi(a_t|s_t) / b(a_t|s_t).

    ``target_policy`` must expose ``action_probs(features, mask)``;
    ``clip`` truncates each ratio from above (weight clipping trades a
    small bias for bounded variance). A zero behaviour probability or a
    non-finite raw ratio raises :class:`BehaviorSupportError` naming
    the episode (``label``, or the episode's seed) and step — clipping
    happens *after* this check, so ``clip`` can never paper over a
    broken log by truncating an infinite ratio.
    """
    if label is None and episode.seed is not None:
        label = f"seed={episode.seed}"
    where = "episode" if label is None else f"episode {label}"
    probs_list = target_action_probs(
        target_policy,
        [step.features for step in episode.steps],
        [step.mask for step in episode.steps],
    )
    ratios = np.empty(len(episode))
    for t, (step, target_probs) in enumerate(zip(episode.steps, probs_list)):
        if step.behavior_prob <= 0:
            raise BehaviorSupportError(
                f"{where} step {t}: behaviour probability is zero; the "
                "behaviour policy must have full support over logged "
                "actions"
            )
        ratio = target_probs[step.action] / step.behavior_prob
        if not np.isfinite(ratio):
            raise BehaviorSupportError(
                f"{where} step {t}: importance ratio is not finite "
                f"(target {target_probs[step.action]!r} / behaviour "
                f"{step.behavior_prob!r})"
            )
        ratios[t] = ratio
    if clip is not None:
        np.clip(ratios, 0.0, clip, out=ratios)
    return ratios


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish's ESS: (sum w)^2 / sum w^2 (0 when all weights vanish)."""
    weights = np.asarray(weights, dtype=float)
    finite = np.isfinite(weights)
    if not finite.all():
        bad = int(np.flatnonzero(~finite)[0])
        raise ValueError(
            f"trajectory weight {bad} is {weights[bad]!r}; non-finite "
            "weights make the effective sample size meaningless — fix "
            "the log (see BehaviorSupportError) or clip the ratios"
        )
    denom = float((weights ** 2).sum())
    if denom == 0.0:
        return 0.0
    return float(weights.sum() ** 2 / denom)


@dataclass(frozen=True)
class EpisodeOPEStats:
    """The three per-episode scalars every IS estimator reduces over."""

    #: full-trajectory importance weight (product of step ratios)
    weight: float
    #: behaviour-policy discounted return
    ret: float
    #: per-decision IS value sum_t gamma^t w_t r_t
    pdis: float


def episode_ope_stats(episode: LoggedEpisode, target_policy,
                      clip: float | None = None,
                      label: int | str | None = None) -> EpisodeOPEStats:
    """One streaming pass over an episode's steps → its IS scalars."""
    ratios = step_ratios(episode, target_policy, clip, label=label)
    cumulative = np.cumprod(ratios)
    discounts = episode.gamma ** np.arange(len(episode))
    pdis = float(np.sum(discounts * cumulative * episode.rewards))
    weight = float(cumulative[-1]) if len(cumulative) else 1.0
    return EpisodeOPEStats(weight=weight, ret=episode.discounted_return(),
                           pdis=pdis)


def collect_ope_stats(
    episodes: Iterable[LoggedEpisode], target_policy,
    clip: float | None = None,
) -> Iterator[EpisodeOPEStats]:
    """Stream :class:`EpisodeOPEStats` for an episode source.

    Works unchanged over a list or a
    :class:`~repro.validation.datasets.TraceDataset`; features are
    consumed one episode at a time and only the scalars survive.
    """
    for index, episode in enumerate(episodes):
        yield episode_ope_stats(episode, target_policy, clip, label=index)


def _stats_arrays(episodes, target_policy, clip):
    stats = list(collect_ope_stats(episodes, target_policy, clip))
    if not stats:
        raise ValueError("need at least one logged episode")
    return (
        np.array([s.weight for s in stats]),
        np.array([s.ret for s in stats]),
        np.array([s.pdis for s in stats]),
    )


def _mean_stderr(values: np.ndarray) -> tuple[float, float]:
    if values.size <= 1:
        return float(values.mean()) if values.size else 0.0, 0.0
    return float(values.mean()), float(values.std(ddof=1) / np.sqrt(values.size))


def wis_point_estimate(weights: np.ndarray, returns: np.ndarray) -> float:
    """The self-normalized estimate sum_i (w_i / sum w) G_i."""
    total = weights.sum()
    if total == 0.0:
        return 0.0
    return float((weights / total) @ returns)


def ordinary_importance_sampling(
    episodes: Iterable[LoggedEpisode], target_policy,
    clip: float | None = None,
) -> OPEResult:
    """Unbiased full-trajectory IS estimate of the target value."""
    weights, returns, _ = _stats_arrays(episodes, target_policy, clip)
    estimate, stderr = _mean_stderr(weights * returns)
    return OPEResult(estimate, stderr, effective_sample_size(weights),
                     len(weights), "OIS")


def weighted_importance_sampling(
    episodes: Iterable[LoggedEpisode], target_policy,
    clip: float | None = None,
) -> OPEResult:
    """Self-normalized IS: biased, consistent, low variance."""
    weights, returns, _ = _stats_arrays(episodes, target_policy, clip)
    total = weights.sum()
    if total == 0.0:
        estimate = 0.0
        residuals = np.zeros_like(returns)
    else:
        normalized = weights / total
        estimate = float(normalized @ returns)
        residuals = normalized * (returns - estimate) * len(weights)
    _, stderr = _mean_stderr(residuals)
    return OPEResult(estimate, stderr, effective_sample_size(weights),
                     len(weights), "WIS")


def per_decision_importance_sampling(
    episodes: Iterable[LoggedEpisode], target_policy,
    clip: float | None = None,
) -> OPEResult:
    """Per-decision IS: each reward weighted by ratios up to its step."""
    weights, _, values = _stats_arrays(episodes, target_policy, clip)
    estimate, stderr = _mean_stderr(values)
    return OPEResult(estimate, stderr, effective_sample_size(weights),
                     len(weights), "PDIS")
