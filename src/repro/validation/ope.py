"""Importance-sampling estimators of a target policy's value.

Given episodes logged under a behaviour policy b and a target policy
pi, each step has an importance ratio rho_t = pi(a_t|s_t) / b(a_t|s_t).
Three standard estimators (Precup 2000; Thomas 2015):

* **Ordinary IS**: mean over episodes of w_T * G, where w_T is the
  full-trajectory ratio product and G the discounted return. Unbiased,
  unbounded variance.
* **Weighted IS**: the w_T-weighted mean of returns. Biased, consistent,
  much lower variance.
* **Per-decision IS**: credit each reward only with the ratios up to
  its own time step: sum_t gamma^t w_t r_t. Unbiased with lower
  variance than ordinary IS.

The effective sample size ESS = (sum w)^2 / sum w^2 diagnoses weight
degeneracy -- the central failure mode over INASIM's 5,000-step
horizons, and the reason the doubly-robust estimator of
:mod:`repro.validation.fqe` exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.validation.logging import LoggedEpisode

__all__ = [
    "OPEResult",
    "step_ratios",
    "effective_sample_size",
    "ordinary_importance_sampling",
    "weighted_importance_sampling",
    "per_decision_importance_sampling",
]


@dataclass(frozen=True)
class OPEResult:
    """A value estimate with sampling diagnostics."""

    estimate: float
    stderr: float
    #: effective sample size of the trajectory weights
    ess: float
    episodes: int
    method: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.method}: {self.estimate:.2f} +/- {self.stderr:.2f} "
            f"(ESS {self.ess:.1f} / {self.episodes})"
        )


def step_ratios(episode: LoggedEpisode, target_policy,
                clip: float | None = None) -> np.ndarray:
    """Per-step importance ratios pi(a_t|s_t) / b(a_t|s_t).

    ``target_policy`` must expose ``action_probs(features, mask)``;
    ``clip`` truncates each ratio from above (weight clipping trades a
    small bias for bounded variance).
    """
    ratios = np.empty(len(episode))
    for t, step in enumerate(episode.steps):
        target_probs = target_policy.action_probs(step.features, step.mask)
        if step.behavior_prob <= 0:
            raise ValueError(
                f"step {t}: behaviour probability is zero; the behaviour "
                "policy must have full support over logged actions"
            )
        ratios[t] = target_probs[step.action] / step.behavior_prob
    if clip is not None:
        np.clip(ratios, 0.0, clip, out=ratios)
    return ratios


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish's ESS: (sum w)^2 / sum w^2 (0 when all weights vanish)."""
    weights = np.asarray(weights, dtype=float)
    denom = float((weights ** 2).sum())
    if denom == 0.0:
        return 0.0
    return float(weights.sum() ** 2 / denom)


def _trajectory_weights(episodes, target_policy, clip) -> np.ndarray:
    return np.array(
        [float(np.prod(step_ratios(ep, target_policy, clip)))
         for ep in episodes]
    )


def _mean_stderr(values: np.ndarray) -> tuple[float, float]:
    if values.size <= 1:
        return float(values.mean()) if values.size else 0.0, 0.0
    return float(values.mean()), float(values.std(ddof=1) / np.sqrt(values.size))


def ordinary_importance_sampling(
    episodes: list[LoggedEpisode], target_policy, clip: float | None = None
) -> OPEResult:
    """Unbiased full-trajectory IS estimate of the target value."""
    if not episodes:
        raise ValueError("need at least one logged episode")
    weights = _trajectory_weights(episodes, target_policy, clip)
    returns = np.array([ep.discounted_return() for ep in episodes])
    estimate, stderr = _mean_stderr(weights * returns)
    return OPEResult(estimate, stderr, effective_sample_size(weights),
                     len(episodes), "OIS")


def weighted_importance_sampling(
    episodes: list[LoggedEpisode], target_policy, clip: float | None = None
) -> OPEResult:
    """Self-normalized IS: biased, consistent, low variance."""
    if not episodes:
        raise ValueError("need at least one logged episode")
    weights = _trajectory_weights(episodes, target_policy, clip)
    returns = np.array([ep.discounted_return() for ep in episodes])
    total = weights.sum()
    if total == 0.0:
        estimate = 0.0
        residuals = np.zeros_like(returns)
    else:
        normalized = weights / total
        estimate = float(normalized @ returns)
        residuals = normalized * (returns - estimate) * len(episodes)
    _, stderr = _mean_stderr(residuals)
    return OPEResult(estimate, stderr, effective_sample_size(weights),
                     len(episodes), "WIS")


def per_decision_importance_sampling(
    episodes: list[LoggedEpisode], target_policy, clip: float | None = None
) -> OPEResult:
    """Per-decision IS: each reward weighted by ratios up to its step."""
    if not episodes:
        raise ValueError("need at least one logged episode")
    values = np.empty(len(episodes))
    final_weights = np.empty(len(episodes))
    for i, episode in enumerate(episodes):
        ratios = step_ratios(episode, target_policy, clip)
        cumulative = np.cumprod(ratios)
        discounts = episode.gamma ** np.arange(len(episode))
        values[i] = float(np.sum(discounts * cumulative * episode.rewards))
        final_weights[i] = cumulative[-1] if len(cumulative) else 1.0
    estimate, stderr = _mean_stderr(values)
    return OPEResult(estimate, stderr, effective_sample_size(final_weights),
                     len(episodes), "PDIS")
