"""JSON (de)serialization for the configuration tree.

Experiments are defined by a :class:`~repro.config.SimConfig`; saving
it next to results makes every run reproducible from its artifacts
alone. Tuples inside the dataclasses (server roles, false-alert rates)
round-trip through JSON lists.
"""

from __future__ import annotations

import dataclasses
import json

from repro.config import (
    APTConfig,
    IDSConfig,
    RewardConfig,
    SimConfig,
    TopologyConfig,
)

__all__ = ["config_to_dict", "config_from_dict", "save_config", "load_config"]


def config_to_dict(config: SimConfig) -> dict:
    """SimConfig -> plain nested dict (JSON-compatible types only)."""
    return dataclasses.asdict(config)


def _build(cls, data: dict, tuple_fields: tuple[str, ...] = ()):
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} fields: {sorted(unknown)}"
        )
    kwargs = dict(data)
    for name in tuple_fields:
        if name in kwargs and kwargs[name] is not None:
            kwargs[name] = tuple(kwargs[name])
    return cls(**kwargs)


def config_from_dict(data: dict) -> SimConfig:
    """Plain nested dict -> SimConfig, validating field names."""
    known = {"topology", "ids", "apt", "reward", "tmax"}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown SimConfig fields: {sorted(unknown)}")
    return SimConfig(
        topology=_build(TopologyConfig, data.get("topology", {}),
                        tuple_fields=("l2_servers",)),
        ids=_build(IDSConfig, data.get("ids", {}),
                   tuple_fields=("false_alert_rates",)),
        apt=_build(APTConfig, data.get("apt", {})),
        reward=_build(RewardConfig, data.get("reward", {})),
        tmax=data.get("tmax", SimConfig().tmax),
    )


def save_config(config: SimConfig, path) -> None:
    with open(path, "w") as handle:
        json.dump(config_to_dict(config), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_config(path) -> SimConfig:
    with open(path) as handle:
        return config_from_dict(json.load(handle))
