"""Defense in depth: a learned policy behind a deterministic guard.

The DQN-based ACSO launches at most one action per hour (the argmax
decision model of Section 4), so while it is busy investigating a
workstation, an observably disrupted PLC waits. No operator would
deploy it that way: observable process damage has a fixed, obviously
correct response (Table 4's PLC reset/replace), and automation should
apply it unconditionally. :class:`GuardedPolicy` wraps any inner
defender with that guard -- the inner policy handles the ambiguous
IT-side decisions, the guard handles the unambiguous OT-side repairs.

The wrapper preserves the inner policy's interface, so a guarded ACSO
drops into every experiment driver, robustness matrix, and trace
recorder unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.defenders.base import DefenderPolicy
from repro.sim.observations import Observation
from repro.sim.orchestrator import DefenderAction, DefenderActionType

__all__ = ["GuardedPolicy"]

_T = DefenderActionType


class GuardedPolicy(DefenderPolicy):
    """Inner policy plus unconditional PLC-repair actions.

    Repairs are emitted first (they are never wrong) and de-duplicated
    against the inner policy's choices; the inner policy's actions pass
    through untouched otherwise.
    """

    def __init__(self, inner: DefenderPolicy):
        self.inner = inner
        self.name = f"guarded-{inner.name}"

    def reset(self, env) -> None:
        self.inner.reset(env)

    def act(self, obs: Observation) -> list[DefenderAction]:
        repairs: list[DefenderAction] = []
        for plc_id in np.flatnonzero(obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                repairs.append(DefenderAction(_T.REPLACE_PLC, int(plc_id)))
        for plc_id in np.flatnonzero(obs.plc_disrupted & ~obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                repairs.append(DefenderAction(_T.RESET_PLC, int(plc_id)))
        inner_actions = self.inner.act(obs)
        seen = {(a.atype, a.target) for a in repairs}
        merged = repairs + [
            a for a in inner_actions if (a.atype, a.target) not in seen
        ]
        return merged
