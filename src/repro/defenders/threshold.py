"""Deterministic belief-threshold defender.

A transparent, tunable baseline between the playbook (no beliefs) and
the DBN expert (stochastic): act on any node whose DBN compromise
probability crosses a threshold, choosing the *lightest mitigation the
belief says will work* -- the argmax counterpart of the expert's
sampled choice. Because both thresholds are constructor parameters,
this policy is the natural subject for cost-vs-coverage sweeps (raise
the mitigation threshold and IT cost falls while dwell time grows).
"""

from __future__ import annotations

import numpy as np

from repro.dbn.filter import DBNFilter, DBNTables
from repro.dbn.states import CanonicalState
from repro.defenders.base import DefenderPolicy
from repro.sim.observations import Observation
from repro.sim.orchestrator import DefenderAction, DefenderActionType

__all__ = ["ThresholdPolicy"]

_T = DefenderActionType
_S = CanonicalState


class ThresholdPolicy(DefenderPolicy):
    name = "threshold"

    def __init__(
        self,
        tables: DBNTables,
        investigate_threshold: float = 0.2,
        mitigate_threshold: float = 0.6,
        scan: DefenderActionType = _T.ADVANCED_SCAN,
        max_actions: int | None = None,
    ):
        if not 0.0 <= investigate_threshold <= 1.0:
            raise ValueError("investigate_threshold must be in [0, 1]")
        if not investigate_threshold <= mitigate_threshold <= 1.0:
            raise ValueError(
                "mitigate_threshold must be in [investigate_threshold, 1]"
            )
        self.tables = tables
        self.investigate_threshold = investigate_threshold
        self.mitigate_threshold = mitigate_threshold
        self.scan = scan
        self.max_actions = max_actions
        self.dbn: DBNFilter | None = None

    def reset(self, env) -> None:
        self.dbn = DBNFilter(self.tables, env.topology)

    # ------------------------------------------------------------------
    def act(self, obs: Observation) -> list[DefenderAction]:
        beliefs = self.dbn.update(obs)
        candidates: list[tuple[float, DefenderAction]] = []

        p_comp = beliefs[:, _S.COMP:].sum(axis=1)
        for node_id in np.flatnonzero(p_comp > self.investigate_threshold):
            node_id = int(node_id)
            if obs.node_busy[node_id]:
                continue
            p = float(p_comp[node_id])
            if p > self.mitigate_threshold:
                atype = self._lightest_sufficient(beliefs[node_id])
                candidates.append((2.0 + p, DefenderAction(atype, node_id)))
            else:
                candidates.append((p, DefenderAction(self.scan, node_id)))

        for plc_id in np.flatnonzero(obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                candidates.append(
                    (4.0, DefenderAction(_T.REPLACE_PLC, int(plc_id)))
                )
        for plc_id in np.flatnonzero(obs.plc_disrupted & ~obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                candidates.append(
                    (3.5, DefenderAction(_T.RESET_PLC, int(plc_id)))
                )

        candidates.sort(key=lambda pair: -pair[0])
        actions = [action for _, action in candidates]
        if self.max_actions is not None:
            actions = actions[: self.max_actions]
        return actions

    # ------------------------------------------------------------------
    @staticmethod
    def _lightest_sufficient(belief: np.ndarray) -> DefenderActionType:
        """Argmax over the Table 4 countermeasure structure: the most
        likely persistence depth picks the cheapest action that clears
        it (reboot < password reset < re-image)."""
        w_reboot = belief[_S.COMP] + belief[_S.ADMIN]
        w_reset = belief[_S.COMP_RB] + belief[_S.ADMIN_RB]
        w_reimage = (
            belief[_S.ADMIN_CRED]
            + belief[_S.ADMIN_CLEANED]
            + belief[_S.ADMIN_CRED_CLEANED]
        )
        index = int(np.argmax([w_reboot, w_reset, w_reimage]))
        return (_T.REBOOT, _T.RESET_PASSWORD, _T.REIMAGE)[index]
