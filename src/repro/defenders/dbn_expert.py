"""The DBN expert baseline (Section 5.1).

"The expert policy samples actions from a distribution conditioned on
the output of the DBN filter. [...] if a node is believed to be
compromised, with no reboot persistence, then a reboot action will be
taken, and if a node is believed to be compromised with credential
persistence, a re-image action will be taken."

The expert acts on every suspicious node every hour, which makes it the
most aggressive (highest IT cost) baseline -- matching Table 2, where
its average IT cost is roughly double the playbook's.
"""

from __future__ import annotations

import numpy as np

from repro.dbn.filter import DBNFilter, DBNTables
from repro.dbn.states import CanonicalState
from repro.defenders.base import DefenderPolicy
from repro.sim.observations import Observation
from repro.sim.orchestrator import DefenderAction, DefenderActionType
from repro.utils.rng import ensure_rng

__all__ = ["DBNExpertPolicy"]

_T = DefenderActionType
_S = CanonicalState


class DBNExpertPolicy(DefenderPolicy):
    name = "dbn-expert"

    def __init__(
        self,
        tables: DBNTables,
        mitigate_threshold: float = 0.5,
        investigate_threshold: float = 0.2,
        seed: int = 0,
        max_actions: int | None = None,
    ):
        self.tables = tables
        self.mitigate_threshold = mitigate_threshold
        self.investigate_threshold = investigate_threshold
        self._seed = seed
        self.rng = ensure_rng(seed)
        self.dbn: DBNFilter | None = None
        #: cap on actions per step; ``1`` yields the single-action expert
        #: used to generate DQfD demonstrations for the ACSO
        self.max_actions = max_actions

    def reset(self, env) -> None:
        self.rng = ensure_rng(self._seed)
        self.dbn = DBNFilter(self.tables, env.topology)

    # ------------------------------------------------------------------
    def act(self, obs: Observation) -> list[DefenderAction]:
        beliefs = self.dbn.update(obs)
        #: (priority, action) candidates; higher priority acts first
        candidates: list[tuple[float, DefenderAction]] = []

        p_comp = beliefs[:, _S.COMP:].sum(axis=1)
        for node_id in np.flatnonzero(p_comp > self.investigate_threshold):
            node_id = int(node_id)
            if obs.node_busy[node_id]:
                continue
            p = float(p_comp[node_id])
            if p > self.mitigate_threshold:
                atype = self._sample_mitigation(beliefs[node_id])
                candidates.append((2.0 + p, DefenderAction(atype, node_id)))
            else:
                candidates.append(
                    (p, DefenderAction(self._sample_investigation(), node_id))
                )

        for plc_id in np.flatnonzero(obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                candidates.append(
                    (4.0, DefenderAction(_T.REPLACE_PLC, int(plc_id)))
                )
        for plc_id in np.flatnonzero(obs.plc_disrupted & ~obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                candidates.append(
                    (3.5, DefenderAction(_T.RESET_PLC, int(plc_id)))
                )

        candidates.sort(key=lambda pair: -pair[0])
        actions = [action for _, action in candidates]
        if self.max_actions is not None:
            actions = actions[: self.max_actions]
        return actions

    # ------------------------------------------------------------------
    def _sample_mitigation(self, belief: np.ndarray) -> DefenderActionType:
        """Pick the lightest mitigation believed sufficient.

        Weights follow the countermeasure structure of Table 4: a
        reboot only helps without reboot persistence; a password reset
        only helps without credential persistence; cleaned states are
        treated as needing a re-image (conservative).
        """
        w_reboot = belief[_S.COMP] + belief[_S.ADMIN]
        w_reset = belief[_S.COMP_RB] + belief[_S.ADMIN_RB]
        w_reimage = (
            belief[_S.ADMIN_CRED]
            + belief[_S.ADMIN_CLEANED]
            + belief[_S.ADMIN_CRED_CLEANED]
        )
        weights = np.array([w_reboot, w_reset, w_reimage])
        total = weights.sum()
        if total <= 0:
            return _T.REBOOT
        choice = self.rng.choice(3, p=weights / total)
        return (_T.REBOOT, _T.RESET_PASSWORD, _T.REIMAGE)[int(choice)]

    def _sample_investigation(self) -> DefenderActionType:
        choice = self.rng.choice(3, p=(0.6, 0.3, 0.1))
        return (_T.SIMPLE_SCAN, _T.ADVANCED_SCAN, _T.HUMAN_ANALYSIS)[int(choice)]
