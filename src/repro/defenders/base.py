"""Defender policy interface.

A policy is reset with the environment (so it can capture the topology
and build per-node bookkeeping) and then maps each observation to a
list of :class:`DefenderAction` to launch this hour. Baseline policies
may launch several concurrent actions; the DQN-based ACSO launches at
most one, matching the argmax policy of Section 4.
"""

from __future__ import annotations

import abc

from repro.sim.observations import Observation
from repro.sim.orchestrator import DefenderAction

__all__ = ["DefenderPolicy", "NoopPolicy"]


class DefenderPolicy(abc.ABC):
    name: str = "policy"

    def reset(self, env) -> None:
        """Called once per episode with the freshly reset environment."""

    @abc.abstractmethod
    def act(self, obs: Observation) -> list[DefenderAction]:
        """Return the actions to launch this step (may be empty)."""


class NoopPolicy(DefenderPolicy):
    """Takes no actions; the undefended upper bound on attack impact."""

    name = "noop"

    def act(self, obs: Observation) -> list[DefenderAction]:
        return []
