"""The security-automation playbook baseline (Section 5.1, Fig 9).

Fixed courses of action (COAs) triggered by alerts. A COA alternates
scans with mitigations: scan the node; on detection apply the next
mitigation in the escalation ladder (reboot, then password reset, then
re-image) and scan again. Per the paper, a COA terminates "when no
more alerts are generated for the node": a clean scan ends the COA only
if the node has stayed alert-quiet since the scan was launched --
otherwise the playbook keeps scanning. Severity-3 alerts start with a
human analysis (highest detection probability) instead of a background
scan. Observable PLC problems are handled immediately (reset when
disrupted, replace when destroyed).

Each node runs at most one COA at a time; COAs on different nodes run
concurrently -- the paper notes this baseline is *more* automated than
most production playbooks, which defer to human analysts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.defenders.base import DefenderPolicy
from repro.sim.observations import Observation
from repro.sim.orchestrator import (
    DEFENDER_ACTION_SPECS,
    DefenderAction,
    DefenderActionType,
)

__all__ = ["PlaybookPolicy"]

_T = DefenderActionType

#: mitigation escalation ladder applied between scans
_MITIGATION_LADDER = (_T.REBOOT, _T.RESET_PASSWORD, _T.REIMAGE)


class _Stage(enum.Enum):
    SCANNING = "scanning"
    MITIGATING = "mitigating"


@dataclass
class _Coa:
    """Per-node course-of-action progress."""

    stage: _Stage = _Stage.SCANNING
    ladder_pos: int = 0  # next mitigation to apply on detection
    scan_type: DefenderActionType = _T.SIMPLE_SCAN
    waiting_until: int = -1  # hour the in-flight action should complete by
    in_flight: DefenderActionType | None = None
    last_alert_t: int = 0  # most recent alert seen for this node
    scan_started_t: int = 0  # when the current scan was launched
    clean_streak: int = 0  # consecutive clean scans while alerts continue


class PlaybookPolicy(DefenderPolicy):
    name = "playbook"

    def __init__(self, server_scan: DefenderActionType = _T.ADVANCED_SCAN):
        self.server_scan = server_scan
        self._coas: dict[int, _Coa] = {}
        self._is_server: np.ndarray = np.zeros(0, bool)

    def reset(self, env) -> None:
        self._coas = {}
        self._is_server = np.array([n.is_server for n in env.topology.nodes])

    # ------------------------------------------------------------------
    def act(self, obs: Observation) -> list[DefenderAction]:
        actions: list[DefenderAction] = []
        self._note_alerts(obs)
        self._process_completions(obs)
        actions.extend(self._advance_coas(obs))
        actions.extend(self._handle_plcs(obs))
        return actions

    # ------------------------------------------------------------------
    def _scan_for(self, node_id: int, severity: int) -> DefenderActionType:
        if severity >= 3:
            return _T.HUMAN_ANALYSIS
        if severity >= 2 or self._is_server[node_id]:
            return self.server_scan
        return _T.SIMPLE_SCAN

    def _note_alerts(self, obs: Observation) -> None:
        """Start COAs on newly alerted nodes; refresh active ones."""
        for alert in obs.alerts:
            node_id = alert.node_id
            if node_id is None:
                continue
            coa = self._coas.get(node_id)
            if coa is None:
                self._coas[node_id] = _Coa(
                    scan_type=self._scan_for(node_id, alert.severity),
                    last_alert_t=obs.t,
                    scan_started_t=obs.t,
                )
            else:
                coa.last_alert_t = obs.t
                if alert.severity >= 3:
                    coa.scan_type = _T.HUMAN_ANALYSIS

    def _process_completions(self, obs: Observation) -> None:
        completed_mitigations = {
            a.target for a in obs.completed_actions
            if a.atype in _MITIGATION_LADDER and a.target in self._coas
        }
        for node_id in completed_mitigations:
            coa = self._coas[node_id]
            coa.stage = _Stage.SCANNING
            coa.in_flight = None

        for result in obs.scan_results:
            coa = self._coas.get(result.node_id)
            if coa is None or coa.stage is not _Stage.SCANNING:
                continue
            coa.in_flight = None
            if result.detected:
                coa.clean_streak = 0
                if coa.ladder_pos >= len(_MITIGATION_LADDER):
                    # ladder exhausted yet still detecting: re-image again
                    coa.ladder_pos = len(_MITIGATION_LADDER) - 1
                coa.stage = _Stage.MITIGATING
            elif coa.last_alert_t <= coa.scan_started_t:
                # clean scan and no alert since the scan began: terminate
                del self._coas[result.node_id]
            else:
                # clean scan but alerts keep coming: escalate the scan
                # depth (background scan -> disruptive scan -> analyst)
                coa.clean_streak += 1
                if coa.clean_streak >= 4:
                    coa.scan_type = _T.HUMAN_ANALYSIS
                elif coa.clean_streak >= 2 and coa.scan_type is _T.SIMPLE_SCAN:
                    coa.scan_type = _T.ADVANCED_SCAN

    def _advance_coas(self, obs: Observation) -> list[DefenderAction]:
        actions = []
        for node_id, coa in list(self._coas.items()):
            if coa.in_flight is not None:
                if obs.t <= coa.waiting_until:
                    continue
                coa.in_flight = None  # launch was rejected; retry below
            if obs.node_busy[node_id]:
                continue
            if coa.stage is _Stage.SCANNING:
                atype = coa.scan_type
                coa.scan_started_t = obs.t
            else:
                atype = _MITIGATION_LADDER[
                    min(coa.ladder_pos, len(_MITIGATION_LADDER) - 1)
                ]
                coa.ladder_pos += 1
            coa.in_flight = atype
            coa.waiting_until = obs.t + DEFENDER_ACTION_SPECS[atype].duration + 1
            actions.append(DefenderAction(atype, node_id))
        return actions

    def _handle_plcs(self, obs: Observation) -> list[DefenderAction]:
        actions = []
        for plc_id in np.flatnonzero(obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                actions.append(DefenderAction(_T.REPLACE_PLC, int(plc_id)))
        for plc_id in np.flatnonzero(obs.plc_disrupted & ~obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                actions.append(DefenderAction(_T.RESET_PLC, int(plc_id)))
        return actions
