"""Scheduled-sweep defender: periodic maintenance scanning.

Real ICS operators who distrust alert feeds fall back to scheduled
hygiene: scan a batch of machines every shift, escalate whatever the
scans find. This baseline models that posture. Because it never reads
alerts, it is *immune to the APT's stealth* (Fig 6's cleanup-
effectiveness axis only suppresses alert and detection probabilities
on cleaned nodes -- sweeps still fire, just detect less often) and
*blind to everything between sweeps* -- the opposite trade to the
alert-triggered playbook, which is why the pair brackets the
reactive-defense design space.

Escalation is per node: the first positive scan earns a reboot,
a repeat within the memory window earns a password reset, a third a
re-image (the Table 4 ladder, walked one rung per recurrence).
Observed PLC damage is always repaired immediately.
"""

from __future__ import annotations

import numpy as np

from repro.defenders.base import DefenderPolicy
from repro.sim.observations import Observation
from repro.sim.orchestrator import DefenderAction, DefenderActionType

__all__ = ["ScheduledSweepPolicy"]

_T = DefenderActionType
_LADDER = (_T.REBOOT, _T.RESET_PASSWORD, _T.REIMAGE)


class ScheduledSweepPolicy(DefenderPolicy):
    name = "scheduled-sweep"

    def __init__(
        self,
        period: int = 24,
        batch: int = 4,
        scan: DefenderActionType = _T.SIMPLE_SCAN,
        escalation_memory: int = 168,
    ):
        """``batch`` nodes are scanned every ``period`` hours, round-
        robin over the whole network; a node's escalation rung decays
        after ``escalation_memory`` hours without a detection."""
        if period < 1 or batch < 1:
            raise ValueError("period and batch must be >= 1")
        if scan not in (_T.SIMPLE_SCAN, _T.ADVANCED_SCAN, _T.HUMAN_ANALYSIS):
            raise ValueError(f"{scan} is not an investigation action")
        self.period = period
        self.batch = batch
        self.scan = scan
        self.escalation_memory = escalation_memory
        self._cursor = 0
        self._n_nodes = 0
        #: per-node (rung, last detection time)
        self._rung: np.ndarray = np.zeros(0, np.int64)
        self._last_detection: np.ndarray = np.zeros(0, np.int64)

    def reset(self, env) -> None:
        self._cursor = 0
        self._n_nodes = env.topology.n_nodes
        self._rung = np.zeros(self._n_nodes, np.int64)
        self._last_detection = np.full(self._n_nodes, -10**9, np.int64)

    # ------------------------------------------------------------------
    def act(self, obs: Observation) -> list[DefenderAction]:
        actions: list[DefenderAction] = []

        # respond to completed scans: walk the per-node ladder
        for result in obs.scan_results:
            if not result.detected:
                continue
            node_id = result.node_id
            if obs.t - self._last_detection[node_id] > self.escalation_memory:
                self._rung[node_id] = 0
            self._last_detection[node_id] = obs.t
            rung = min(int(self._rung[node_id]), len(_LADDER) - 1)
            self._rung[node_id] = rung + 1
            if not obs.node_busy[node_id]:
                actions.append(DefenderAction(_LADDER[rung], node_id))

        # repair observable PLC damage immediately
        for plc_id in np.flatnonzero(obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                actions.append(DefenderAction(_T.REPLACE_PLC, int(plc_id)))
        for plc_id in np.flatnonzero(obs.plc_disrupted & ~obs.plc_destroyed):
            if not obs.plc_busy[plc_id]:
                actions.append(DefenderAction(_T.RESET_PLC, int(plc_id)))

        # the scheduled sweep itself
        if obs.t % self.period == 0 and self._n_nodes:
            for _ in range(min(self.batch, self._n_nodes)):
                node_id = self._cursor
                self._cursor = (self._cursor + 1) % self._n_nodes
                if not obs.node_busy[node_id]:
                    actions.append(DefenderAction(self.scan, node_id))
        return actions
