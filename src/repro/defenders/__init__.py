"""Defender policies: baselines from Section 5.1 plus the learned ACSO."""

from repro.defenders.base import DefenderPolicy, NoopPolicy
from repro.defenders.random_policy import SemiRandomPolicy
from repro.defenders.playbook import PlaybookPolicy
from repro.defenders.dbn_expert import DBNExpertPolicy
from repro.defenders.hybrid import GuardedPolicy
from repro.defenders.scheduled import ScheduledSweepPolicy
from repro.defenders.threshold import ThresholdPolicy

__all__ = [
    "DefenderPolicy",
    "NoopPolicy",
    "SemiRandomPolicy",
    "PlaybookPolicy",
    "DBNExpertPolicy",
    "GuardedPolicy",
    "ScheduledSweepPolicy",
    "ThresholdPolicy",
    "ACSOPolicy",
]


def __getattr__(name):
    # ACSOPolicy pulls in the neural-network stack; import it lazily so
    # the light-weight baselines stay importable on their own.
    if name == "ACSOPolicy":
        from repro.defenders.acso import ACSOPolicy

        return ACSOPolicy
    raise AttributeError(name)
