"""The learned ACSO defender: attention Q-network over DBN beliefs.

At evaluation time the policy is the greedy argmax over valid actions
(Section 4): at most one investigation or mitigation per hour, with
"no action" an explicit choice. Because the Q-network's parameters are
independent of network size, the same weights can be bound to any
topology.
"""

from __future__ import annotations

import numpy as np

from repro.dbn.filter import DBNTables
from repro.defenders.base import DefenderPolicy
from repro.nn import load_state
from repro.rl.dqn import valid_action_mask
from repro.rl.features import ACSOFeaturizer
from repro.rl.qnetwork import AttentionQNetwork, QNetConfig
from repro.sim.observations import Observation
from repro.sim.orchestrator import DefenderAction

__all__ = ["ACSOPolicy"]


class ACSOPolicy(DefenderPolicy):
    name = "acso"

    def __init__(self, qnet: AttentionQNetwork, tables: DBNTables):
        self.qnet = qnet
        self.tables = tables
        self.featurizer: ACSOFeaturizer | None = None

    @classmethod
    def from_file(cls, path, tables: DBNTables,
                  config: QNetConfig | None = None, seed: int = 0) -> "ACSOPolicy":
        """Load trained weights saved with :func:`repro.nn.save_state`."""
        qnet = AttentionQNetwork(config, seed=seed)
        load_state(qnet, path)
        return cls(qnet, tables)

    def reset(self, env) -> None:
        self.qnet.bind_topology(env.topology)
        self.featurizer = ACSOFeaturizer(env.topology, self.tables)
        self.featurizer.reset()

    def act(self, obs: Observation) -> list[DefenderAction]:
        features = self.featurizer.update(obs)
        q = self.qnet.q_values(features)
        mask = valid_action_mask(self.qnet.action_list, obs)
        q = np.where(mask, q, -np.inf)
        action = self.qnet.action_list[int(np.argmax(q))]
        return [] if action.is_noop else [action]
