"""The semi-random baseline (Section 5.1).

"A random policy simulates independent security analysts and users
taking actions on the network. The random policy takes actions by
sampling action type from a static categorical distribution and a node
uniformly from the nodes of the appropriate type in the network."

The number of actions attempted per hour is Poisson distributed; the
default rate and type distribution are calibrated so the policy is the
most disruptive baseline, as in Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.defenders.base import DefenderPolicy
from repro.sim.observations import Observation
from repro.sim.orchestrator import DefenderAction, DefenderActionType
from repro.utils.rng import ensure_rng

__all__ = ["SemiRandomPolicy"]

_T = DefenderActionType

#: static categorical over action types (scans dominate: users and
#: analysts investigate far more often than they wipe machines; a rare
#: mitigation models uncoordinated user reboots / IT re-images)
DEFAULT_TYPE_PROBS: dict[DefenderActionType, float] = {
    _T.SIMPLE_SCAN: 0.42,
    _T.ADVANCED_SCAN: 0.12,
    _T.HUMAN_ANALYSIS: 0.07,
    _T.REBOOT: 0.12,
    _T.RESET_PASSWORD: 0.06,
    _T.REIMAGE: 0.03,
    _T.QUARANTINE: 0.04,
    _T.RESET_PLC: 0.09,
    _T.REPLACE_PLC: 0.05,
}


class SemiRandomPolicy(DefenderPolicy):
    name = "semi-random"

    def __init__(self, rate: float = 5.0, type_probs=None, seed: int = 0):
        self.rate = rate
        probs = dict(DEFAULT_TYPE_PROBS if type_probs is None else type_probs)
        self._types = list(probs)
        weights = np.array([probs[t] for t in self._types], dtype=float)
        self._probs = weights / weights.sum()
        self._seed = seed
        self.rng = ensure_rng(seed)
        self._hosts: list[int] = []
        self._all_nodes: list[int] = []
        self._n_plcs = 0

    def reset(self, env) -> None:
        self.rng = ensure_rng(self._seed)
        topo = env.topology
        self._hosts = [n.node_id for n in topo.nodes if n.ntype.is_host]
        self._all_nodes = [n.node_id for n in topo.nodes]
        self._n_plcs = topo.n_plcs

    def act(self, obs: Observation) -> list[DefenderAction]:
        n_attempts = int(self.rng.poisson(self.rate))
        actions: list[DefenderAction] = []
        taken_nodes: set[int] = set()
        taken_plcs: set[int] = set()
        for _ in range(n_attempts):
            atype = self._types[int(self.rng.choice(len(self._types), p=self._probs))]
            if atype in (_T.RESET_PLC, _T.REPLACE_PLC):
                if self._n_plcs == 0:
                    continue
                target = int(self.rng.integers(self._n_plcs))
                if target in taken_plcs or obs.plc_busy[target]:
                    continue
                taken_plcs.add(target)
            else:
                pool = self._hosts if atype is _T.QUARANTINE else self._all_nodes
                target = int(pool[int(self.rng.integers(len(pool)))])
                if target in taken_nodes or obs.node_busy[target]:
                    continue
                taken_nodes.add(target)
            actions.append(DefenderAction(atype, target))
        return actions
