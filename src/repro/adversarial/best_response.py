"""Empirical attacker best response via cross-entropy-method search.

Against a *fixed* defender, the most damaging attacker in the bounded
space of :class:`~repro.adversarial.space.AttackerParameterSpace` is an
empirical best response; its achieved utility is an exploitability
estimate for that defender. The paper probes this by hand with two
fixed perturbations (Fig 6's stealth sweep, Fig 10's APT2); the CEM
search automates the probe over the whole behaviour space.

The optimizer is deliberately simple and derivative-free (the fitness
is a stochastic episode rollout): maintain a Gaussian over the unit
box, sample candidates, evaluate, refit to the elite fraction, repeat.
A noise floor on the standard deviation prevents premature collapse.

Candidate evaluation has two engines sharing one definition of
fitness: :func:`make_defender_fitness` scores one candidate at a time
through ``repro.make``, and :func:`make_defender_fitness_vec` fans a
whole CEM generation over the lanes of a vector environment
(``repro.make_vec_from_specs``; any backend), one candidate per lane.
For deterministic defenders the two are numerically identical — the
batch is a wall-clock optimization, not a different experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

import repro
from repro.adversarial.space import (
    AttackerParameterSpace,
    as_base_spec,
    scenario_for_attacker,
)
from repro.config import APTConfig
from repro.eval.runner import evaluate_policy, evaluate_policy_per_lane
from repro.utils.rng import ensure_rng

__all__ = [
    "attack_utility",
    "make_defender_fitness",
    "make_defender_fitness_vec",
    "evaluate_attackers_vec",
    "CrossEntropySearch",
    "BestResponseResult",
]


def attack_utility(aggregate) -> float:
    """Scalar attacker payoff from a defender evaluation aggregate.

    The game is zero-sum on the defender's objective, so the attacker
    maximizes the negative mean discounted return. Returns are anchored
    near the ~2,200 no-attack ceiling (Section 4.1), so utilities are
    large negative numbers that grow toward zero as attacks succeed.
    """
    return -aggregate.mean("discounted_return")


def make_defender_fitness(
    scenario,
    defender,
    episodes: int = 2,
    seed: int = 0,
    max_steps: int | None = None,
) -> Callable[[APTConfig], float]:
    """Build a fitness function: APTConfig -> attacker utility.

    ``scenario`` is a registered id, a :class:`ScenarioSpec`, or a
    preset-derived :class:`~repro.config.SimConfig`. Each call bridges
    the candidate attacker onto that base
    (:func:`~repro.adversarial.space.scenario_for_attacker`), builds
    the environment through ``repro.make`` — so the candidate is a
    named, reconstructible scenario, not an ad-hoc wiring — and runs
    ``episodes`` seeded evaluations of the fixed defender.
    """
    base = as_base_spec(scenario)

    def fitness(apt: APTConfig) -> float:
        spec = scenario_for_attacker(base, apt, f"{base.scenario_id}#candidate")
        env = repro.make(spec)
        aggregate, _ = evaluate_policy(env, defender, episodes, seed=seed,
                                       max_steps=max_steps)
        return attack_utility(aggregate)

    return fitness


def evaluate_attackers_vec(
    scenario,
    attackers: Sequence[APTConfig],
    defender,
    episodes: int = 2,
    seed: int = 0,
    max_steps: int | None = None,
    backend: str = "sync",
    num_workers: int | None = None,
    pool=None,
):
    """Score a batch of attacker configs in one vectorized pass.

    Lane ``i`` runs ``attackers[i]`` bridged onto ``scenario``; every
    lane evaluates ``episodes`` seeded episodes of ``defender``
    (:func:`~repro.eval.runner.evaluate_policy_per_lane`). Returns the
    per-attacker ``(aggregate, per-episode metrics)`` list. With
    ``pool`` (a :class:`~repro.sim.vec_backends.VecPool`), worker-pool
    backends re-lane a persistent pool instead of spawning one per
    call; the ``with venv:`` release is then soft and the pool owns
    the teardown.
    """
    base = as_base_spec(scenario)
    specs = [
        scenario_for_attacker(base, apt, f"{base.scenario_id}#candidate-{i}")
        for i, apt in enumerate(attackers)
    ]
    venv = repro.make_vec_from_specs(specs, seed=seed, backend=backend,
                                     num_workers=num_workers, pool=pool)
    with venv:
        return evaluate_policy_per_lane(venv, defender, episodes, seed=seed,
                                        max_steps=max_steps)


def make_defender_fitness_vec(
    scenario,
    defender,
    episodes: int = 2,
    seed: int = 0,
    max_steps: int | None = None,
    backend: str = "sync",
    num_workers: int | None = None,
    pool=None,
    reuse_pool: bool = True,
) -> Callable[[Sequence[APTConfig]], np.ndarray]:
    """Batched :func:`make_defender_fitness`: list[APTConfig] -> utilities.

    Feed it to :class:`CrossEntropySearch` as ``batch_fitness_fn`` and
    every CEM generation is evaluated as one fan-out over a vector
    environment (one candidate per lane, any backend) instead of
    sequential episode loops.

    On the worker-pool backends, consecutive generations reuse one
    persistent worker pool (``reuse_pool=True``, the default): each
    generation re-lanes the live pool onto its candidate specs instead
    of re-spawning processes. Pass an explicit ``pool`` to share it
    with other consumers (the self-play loop does); otherwise the
    fitness function owns a private one, exposed as
    ``batch_fitness.pool`` so callers can ``close()`` it
    deterministically.
    """
    from repro.sim.vec_backends import VecPool

    if pool is None and reuse_pool:
        pool = VecPool()

    def batch_fitness(attackers: Sequence[APTConfig]) -> np.ndarray:
        per_lane = evaluate_attackers_vec(
            scenario, attackers, defender, episodes=episodes, seed=seed,
            max_steps=max_steps, backend=backend, num_workers=num_workers,
            pool=pool,
        )
        return np.array([attack_utility(agg) for agg, _ in per_lane])

    batch_fitness.pool = pool
    return batch_fitness


@dataclass
class BestResponseResult:
    """Outcome of one CEM best-response search."""

    best_config: APTConfig
    best_fitness: float
    #: per-iteration (mean fitness, elite-mean fitness, best-so-far)
    history: list[tuple[float, float, float]] = field(default_factory=list)
    evaluations: int = 0


class CrossEntropySearch:
    """Cross-entropy method over the attacker parameter space.

    ``fitness_fn`` maps an :class:`APTConfig` to a scalar payoff to
    *maximize*; use :func:`make_defender_fitness` for the standard
    fixed-defender exploitability probe, or inject a synthetic function
    for testing. Alternatively pass ``batch_fitness_fn`` (e.g. from
    :func:`make_defender_fitness_vec`) to score each generation's
    candidates in one vectorized call.
    """

    def __init__(
        self,
        space: AttackerParameterSpace,
        fitness_fn: Callable[[APTConfig], float] | None = None,
        population: int = 12,
        elite_frac: float = 0.25,
        init_std: float = 0.3,
        min_std: float = 0.05,
        seed: int = 0,
        batch_fitness_fn: Callable[[Sequence[APTConfig]], np.ndarray] | None = None,
    ):
        if population < 2:
            raise ValueError("population must be >= 2")
        if not 0.0 < elite_frac <= 1.0:
            raise ValueError("elite_frac must be in (0, 1]")
        if (fitness_fn is None) == (batch_fitness_fn is None):
            raise ValueError(
                "pass exactly one of fitness_fn / batch_fitness_fn"
            )
        self.space = space
        self.fitness_fn = fitness_fn
        self.batch_fitness_fn = batch_fitness_fn
        self.population = population
        self.n_elite = max(1, int(round(elite_frac * population)))
        self.init_std = init_std
        self.min_std = min_std
        self.rng = ensure_rng(seed)

    def _evaluate(self, candidates: np.ndarray) -> np.ndarray:
        configs = [self.space.decode(c) for c in candidates]
        if self.batch_fitness_fn is not None:
            fits = np.asarray(self.batch_fitness_fn(configs), dtype=float)
            if fits.shape != (len(configs),):
                raise ValueError(
                    f"batch fitness returned shape {fits.shape}, expected "
                    f"({len(configs)},)"
                )
            return fits
        return np.array([self.fitness_fn(config) for config in configs])

    def run(self, iterations: int = 5,
            init_mean: np.ndarray | None = None) -> BestResponseResult:
        dim = self.space.dim
        mean = (np.full(dim, 0.5) if init_mean is None
                else self.space.clip(init_mean))
        std = np.full(dim, self.init_std)
        best_vec = mean.copy()
        best_fit = -np.inf
        history: list[tuple[float, float, float]] = []
        evaluations = 0

        for _ in range(iterations):
            candidates = self.space.clip(
                mean + std * self.rng.standard_normal((self.population, dim))
            )
            fits = self._evaluate(candidates)
            evaluations += self.population
            order = np.argsort(fits)[::-1]
            elite = candidates[order[: self.n_elite]]
            if fits[order[0]] > best_fit:
                best_fit = float(fits[order[0]])
                best_vec = candidates[order[0]].copy()
            mean = elite.mean(axis=0)
            std = np.maximum(elite.std(axis=0), self.min_std)
            history.append(
                (float(fits.mean()), float(fits[order[: self.n_elite]].mean()),
                 best_fit)
            )

        return BestResponseResult(
            best_config=self.space.decode(best_vec),
            best_fitness=best_fit,
            history=history,
            evaluations=evaluations,
        )
