"""Empirical attacker best response via cross-entropy-method search.

Against a *fixed* defender, the most damaging attacker in the bounded
space of :class:`~repro.adversarial.space.AttackerParameterSpace` is an
empirical best response; its achieved utility is an exploitability
estimate for that defender. The paper probes this by hand with two
fixed perturbations (Fig 6's stealth sweep, Fig 10's APT2); the CEM
search automates the probe over the whole behaviour space.

The optimizer is deliberately simple and derivative-free (the fitness
is a stochastic episode rollout): maintain a Gaussian over the unit
box, sample candidates, evaluate, refit to the elite fraction, repeat.
A noise floor on the standard deviation prevents premature collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

import repro
from repro.adversarial.space import AttackerParameterSpace
from repro.attacker import FSMAttacker
from repro.config import APTConfig, SimConfig
from repro.eval.runner import evaluate_policy

__all__ = [
    "attack_utility",
    "make_defender_fitness",
    "CrossEntropySearch",
    "BestResponseResult",
]


def attack_utility(aggregate) -> float:
    """Scalar attacker payoff from a defender evaluation aggregate.

    The game is zero-sum on the defender's objective, so the attacker
    maximizes the negative mean discounted return. Returns are anchored
    near the ~2,200 no-attack ceiling (Section 4.1), so utilities are
    large negative numbers that grow toward zero as attacks succeed.
    """
    return -aggregate.mean("discounted_return")


def make_defender_fitness(
    config: SimConfig,
    defender,
    episodes: int = 2,
    seed: int = 0,
    max_steps: int | None = None,
) -> Callable[[APTConfig], float]:
    """Build a fitness function: APTConfig -> attacker utility.

    Each call builds a fresh environment with the candidate attacker
    (quantitative parameters flow through ``SimConfig.apt`` so the
    engine's labor budget and stealth model see them too) and runs
    ``episodes`` seeded evaluations of the fixed defender.
    """

    def fitness(apt: APTConfig) -> float:
        env = repro.make_env(
            config.with_apt(apt),
            attacker=FSMAttacker(apt, sample_qualitative=False),
        )
        aggregate, _ = evaluate_policy(env, defender, episodes, seed=seed,
                                       max_steps=max_steps)
        return attack_utility(aggregate)

    return fitness


@dataclass
class BestResponseResult:
    """Outcome of one CEM best-response search."""

    best_config: APTConfig
    best_fitness: float
    #: per-iteration (mean fitness, elite-mean fitness, best-so-far)
    history: list[tuple[float, float, float]] = field(default_factory=list)
    evaluations: int = 0


class CrossEntropySearch:
    """Cross-entropy method over the attacker parameter space.

    ``fitness_fn`` maps an :class:`APTConfig` to a scalar payoff to
    *maximize*; use :func:`make_defender_fitness` for the standard
    fixed-defender exploitability probe, or inject a synthetic function
    for testing.
    """

    def __init__(
        self,
        space: AttackerParameterSpace,
        fitness_fn: Callable[[APTConfig], float],
        population: int = 12,
        elite_frac: float = 0.25,
        init_std: float = 0.3,
        min_std: float = 0.05,
        seed: int = 0,
    ):
        if population < 2:
            raise ValueError("population must be >= 2")
        if not 0.0 < elite_frac <= 1.0:
            raise ValueError("elite_frac must be in (0, 1]")
        self.space = space
        self.fitness_fn = fitness_fn
        self.population = population
        self.n_elite = max(1, int(round(elite_frac * population)))
        self.init_std = init_std
        self.min_std = min_std
        self.rng = np.random.default_rng(seed)

    def run(self, iterations: int = 5,
            init_mean: np.ndarray | None = None) -> BestResponseResult:
        dim = self.space.dim
        mean = (np.full(dim, 0.5) if init_mean is None
                else self.space.clip(init_mean))
        std = np.full(dim, self.init_std)
        best_vec = mean.copy()
        best_fit = -np.inf
        history: list[tuple[float, float, float]] = []
        evaluations = 0

        for _ in range(iterations):
            candidates = self.space.clip(
                mean + std * self.rng.standard_normal((self.population, dim))
            )
            fits = np.array(
                [self.fitness_fn(self.space.decode(c)) for c in candidates]
            )
            evaluations += self.population
            order = np.argsort(fits)[::-1]
            elite = candidates[order[: self.n_elite]]
            if fits[order[0]] > best_fit:
                best_fit = float(fits[order[0]])
                best_vec = candidates[order[0]].copy()
            mean = elite.mean(axis=0)
            std = np.maximum(elite.std(axis=0), self.min_std)
            history.append(
                (float(fits.mean()), float(fits[order[: self.n_elite]].mean()),
                 best_fit)
            )

        return BestResponseResult(
            best_config=self.space.decode(best_vec),
            best_fitness=best_fit,
            history=history,
            evaluations=evaluations,
        )
