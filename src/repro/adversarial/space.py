"""Searchable parameter space over APT attacker behaviour.

The FSM attacker of Section 3.2 is parameterized by two qualitative
choices (objective, vector) and several quantitative ones (thresholds,
labor rate, cleanup effectiveness). :class:`AttackerParameterSpace`
bounds each parameter and maps configurations to points in the unit
box, so any black-box optimizer can search attacker space. Integer
parameters are decoded by rounding, categorical ones by thresholding --
standard continuous relaxations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import APTConfig, SimConfig

__all__ = [
    "ParameterSpec",
    "AttackerParameterSpace",
    "as_base_spec",
    "scenario_for_attacker",
]


@dataclass(frozen=True)
class ParameterSpec:
    """Bounds for one searchable APTConfig field."""

    name: str
    low: float
    high: float
    kind: str = "float"  # "float" | "int" | "choice"
    choices: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("float", "int", "choice"):
            raise ValueError(f"unknown parameter kind {self.kind!r}")
        if self.kind == "choice":
            if len(self.choices) < 2:
                raise ValueError("choice parameters need >= 2 choices")
        elif not self.low < self.high:
            raise ValueError(f"{self.name}: low must be < high")

    def decode(self, u: float):
        """Map a unit-interval coordinate to a parameter value."""
        u = float(np.clip(u, 0.0, 1.0))
        if self.kind == "choice":
            index = min(int(u * len(self.choices)), len(self.choices) - 1)
            return self.choices[index]
        value = self.low + u * (self.high - self.low)
        if self.kind == "int":
            return int(np.clip(round(value), self.low, self.high))
        return value

    def encode(self, value) -> float:
        """Map a parameter value back into the unit interval."""
        if self.kind == "choice":
            index = self.choices.index(value)
            # centre of the index's sub-interval
            return (index + 0.5) / len(self.choices)
        return float(
            np.clip((float(value) - self.low) / (self.high - self.low), 0.0, 1.0)
        )


#: Default search bounds. They bracket the paper's two profiles -- APT1
#: (lateral 3, PLC 15/25) and APT2 (lateral 1, PLC 5/10) are interior
#: points -- and the full Fig 6 cleanup-effectiveness sweep [0.1, 0.9].
DEFAULT_SPECS = (
    ParameterSpec("lateral_threshold", 1, 6, kind="int"),
    ParameterSpec("hmi_threshold", 1, 5, kind="int"),
    ParameterSpec("plc_threshold_destroy", 2, 25, kind="int"),
    ParameterSpec("plc_threshold_disrupt", 4, 40, kind="int"),
    ParameterSpec("labor_rate", 1, 4, kind="int"),
    ParameterSpec("cleanup_effectiveness", 0.05, 0.95, kind="float"),
    ParameterSpec("objective", 0, 1, kind="choice",
                  choices=("disrupt", "destroy")),
    ParameterSpec("vector", 0, 1, kind="choice", choices=("opc", "hmi")),
)


class AttackerParameterSpace:
    """Encode/decode APT configurations to the unit box [0, 1]^d."""

    def __init__(self, specs=DEFAULT_SPECS, base: APTConfig | None = None):
        self.specs = tuple(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names")
        #: fields not searched (time_scale, reintrusion_hours, ...) are
        #: taken from this base configuration
        self.base = base or APTConfig()

    @property
    def dim(self) -> int:
        return len(self.specs)

    def decode(self, vector: np.ndarray) -> APTConfig:
        """Unit-box point -> APTConfig (non-searched fields from base)."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected shape ({self.dim},), got {vector.shape}")
        overrides = {
            spec.name: spec.decode(u) for spec, u in zip(self.specs, vector)
        }
        return replace(self.base, **overrides)

    def encode(self, config: APTConfig) -> np.ndarray:
        """APTConfig -> unit-box point (approximate inverse of decode)."""
        return np.array(
            [spec.encode(getattr(config, spec.name)) for spec in self.specs]
        )

    def sample(self, rng: np.random.Generator) -> APTConfig:
        """A uniformly random attacker configuration."""
        return self.decode(rng.random(self.dim))

    def clip(self, vector: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(vector, dtype=float), 0.0, 1.0)


# ----------------------------------------------------------------------
# the attacker space -> scenario registry bridge
# ----------------------------------------------------------------------
def as_base_spec(scenario, scenario_id: str = "adversarial-base"):
    """Resolve an adversarial base to a :class:`ScenarioSpec`.

    Accepts a registered scenario id, a (possibly unregistered) spec,
    or — for backwards compatibility — a preset-derived
    :class:`~repro.config.SimConfig`, which is bridged through
    :func:`~repro.scenarios.spec.spec_for_config`. Everything the
    adversarial loops construct then resolves through ``repro.make``.
    """
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.spec import ScenarioSpec, spec_for_config

    if isinstance(scenario, str):
        return get_scenario(scenario)
    if isinstance(scenario, ScenarioSpec):
        return scenario
    if isinstance(scenario, SimConfig):
        return spec_for_config(scenario, scenario_id)
    raise TypeError(
        "expected a scenario id, ScenarioSpec, or preset-derived SimConfig, "
        f"got {type(scenario).__name__}"
    )


def scenario_for_attacker(
    base,
    apt: APTConfig,
    scenario_id: str,
    *,
    sample_qualitative: bool = False,
    description: str = "",
    tags: tuple = (),
):
    """A :class:`ScenarioSpec` running attacker ``apt`` on ``base``.

    The unit-box decode of :class:`AttackerParameterSpace` lands on an
    :class:`~repro.config.APTConfig`; this is the other half of the
    bridge — the same behaviour as a named, frozen, registrable
    scenario: the network, reward variant, and horizon come from
    ``base``, the qualitative pair and stealth knob ride in the spec's
    own fields, and every other deviation rides ``apt_overrides``, so
    ``repro.make(spec)`` rebuilds the exact environment the search
    evaluated. With ``sample_qualitative`` the (objective, vector) pair
    is left to the per-episode draw instead of pinned from ``apt``.
    """
    base = as_base_spec(base)
    draft = replace(
        base,
        scenario_id=scenario_id,
        attacker="fsm",
        objective=None if sample_qualitative else apt.objective,
        vector=None if sample_qualitative else apt.vector,
        cleanup_effectiveness=apt.cleanup_effectiveness,
        apt_overrides=(),
        description=description,
        tags=tuple(tags),
    )
    from repro.attacker.profiles import apt_diff

    overrides = apt_diff(apt, draft.build_config().apt)
    # the sampled-pair case redraws (objective, vector) every episode;
    # the fixed case already pinned them through the spec fields
    overrides.pop("objective", None)
    overrides.pop("vector", None)
    return replace(draft, apt_overrides=overrides)
