"""Adversarial attacker search and self-play training.

The paper's conclusion names adversarial learning as the priority for
future work: "focus should be placed on adversarial learning methods
that can discover and obviate new attacks before they are observed in
the real-world" (Section 7). This package implements that programme on
top of the INASIM substrate:

* :mod:`repro.adversarial.space` -- a bounded parameter space over APT
  behaviour (thresholds, labor, stealth, objective, vector) with an
  encode/decode map to the unit box, making attacker behaviour
  searchable.
* :mod:`repro.adversarial.best_response` -- cross-entropy-method search
  for the attacker parameters that most hurt a *fixed* defender: an
  empirical best response, and the exploitability probe the paper's
  fixed-perturbation experiments (Fig 6 / Fig 10) approximate by hand.
* :mod:`repro.adversarial.selfplay` -- a double-oracle-style loop that
  alternates defender training against an attacker population with
  best-response expansion of that population.
* :mod:`repro.adversarial.matrix` -- the defender x attacker robustness
  matrix, generalizing the paper's APT1/APT2 comparison (Fig 10) to
  arbitrary attacker sets.
"""

from repro.adversarial.space import (
    AttackerParameterSpace,
    ParameterSpec,
    as_base_spec,
    scenario_for_attacker,
)
from repro.adversarial.best_response import (
    BestResponseResult,
    CrossEntropySearch,
    attack_utility,
    evaluate_attackers_vec,
    make_defender_fitness,
    make_defender_fitness_vec,
)
from repro.adversarial.selfplay import (
    AttackerPopulation,
    SelfPlayConfig,
    SelfPlayLoop,
    SelfPlayRound,
    load_population,
    save_population,
)
from repro.adversarial.matrix import format_matrix, robustness_matrix

__all__ = [
    "AttackerParameterSpace",
    "ParameterSpec",
    "as_base_spec",
    "scenario_for_attacker",
    "BestResponseResult",
    "CrossEntropySearch",
    "attack_utility",
    "evaluate_attackers_vec",
    "make_defender_fitness",
    "make_defender_fitness_vec",
    "AttackerPopulation",
    "SelfPlayConfig",
    "SelfPlayLoop",
    "SelfPlayRound",
    "save_population",
    "load_population",
    "format_matrix",
    "robustness_matrix",
]
