"""Population-based adversarial training (double-oracle style).

The loop alternates two oracles:

1. **Defender oracle** -- continue DQN training against episodes drawn
   from the current attacker population (round-robin over per-attacker
   environments; the topology, and therefore the Q-network binding, is
   shared).
2. **Attacker oracle** -- a CEM best-response search against the frozen
   defender; the best response joins the population.

The gap between the defender's value against its training population
and against the fresh best response is an empirical exploitability
estimate: it shrinking over rounds is the signal that the defender is
becoming robust to attacker adaptation -- the property the paper
measures one-shot with APT2 (Fig 10) and names as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro
from repro.adversarial.best_response import (
    BestResponseResult,
    CrossEntropySearch,
    attack_utility,
    make_defender_fitness,
)
from repro.adversarial.space import AttackerParameterSpace
from repro.attacker import FSMAttacker
from repro.config import APTConfig, SimConfig
from repro.eval.runner import evaluate_policy

__all__ = [
    "AttackerPopulation",
    "SelfPlayConfig",
    "SelfPlayRound",
    "SelfPlayLoop",
]


class AttackerPopulation:
    """A weighted set of attacker configurations."""

    def __init__(self, members: list[APTConfig], weights=None):
        if not members:
            raise ValueError("population cannot be empty")
        self.members = list(members)
        if weights is None:
            weights = np.ones(len(self.members))
        self.weights = np.asarray(weights, dtype=float)
        if self.weights.shape != (len(self.members),):
            raise ValueError("weights must match members")
        if (self.weights < 0).any() or self.weights.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")

    def __len__(self) -> int:
        return len(self.members)

    @property
    def probabilities(self) -> np.ndarray:
        return self.weights / self.weights.sum()

    def add(self, config: APTConfig, weight: float = 1.0) -> None:
        self.members.append(config)
        self.weights = np.append(self.weights, weight)

    def sample(self, rng: np.random.Generator) -> APTConfig:
        index = rng.choice(len(self.members), p=self.probabilities)
        return self.members[int(index)]


@dataclass
class SelfPlayConfig:
    rounds: int = 3
    #: defender-oracle training episodes per round
    train_episodes: int = 4
    train_max_steps: int | None = None
    #: CEM budget for the attacker oracle
    cem_iterations: int = 3
    cem_population: int = 8
    #: episodes per fitness evaluation inside the CEM
    fitness_episodes: int = 2
    #: episodes for the exploitability bookkeeping
    eval_episodes: int = 2
    eval_max_steps: int | None = None
    seed: int = 0


@dataclass
class SelfPlayRound:
    """Bookkeeping for one defender/attacker oracle round."""

    round_index: int
    #: attacker utility of the best response found this round
    best_response_utility: float
    #: attacker utility of the (pre-expansion) population mixture
    population_utility: float
    #: exploitability estimate: best response minus population utility
    exploitability: float
    best_response: APTConfig
    search: BestResponseResult = field(repr=False, default=None)


class SelfPlayLoop:
    """Alternating defender training and attacker best response.

    ``trainer`` is a :class:`~repro.rl.dqn.DQNTrainer` (or API-equal
    object) whose environment attribute is rotated across per-attacker
    environments; ``defender_policy`` is the frozen-greedy view of the
    same Q-network used for fitness evaluations.
    """

    def __init__(
        self,
        config: SimConfig,
        trainer,
        defender_policy,
        space: AttackerParameterSpace | None = None,
        selfplay: SelfPlayConfig | None = None,
        initial_population: AttackerPopulation | None = None,
    ):
        self.config = config
        self.trainer = trainer
        self.defender_policy = defender_policy
        self.space = space or AttackerParameterSpace(base=config.apt)
        self.selfplay = selfplay or SelfPlayConfig()
        self.population = initial_population or AttackerPopulation([config.apt])
        self.rng = np.random.default_rng(self.selfplay.seed)
        self.rounds: list[SelfPlayRound] = []

    # ------------------------------------------------------------------
    def _env_for(self, apt: APTConfig):
        return repro.make_env(
            self.config.with_apt(apt),
            attacker=FSMAttacker(apt, sample_qualitative=False),
        )

    def _train_defender(self, seed: int) -> None:
        """Defender oracle: episodes against population-sampled attackers."""
        sp = self.selfplay
        for episode in range(sp.train_episodes):
            apt = self.population.sample(self.rng)
            self.trainer.env = self._env_for(apt)
            self.trainer.train_episode(
                seed=seed + episode, episode=episode,
                max_steps=sp.train_max_steps,
            )

    def _population_utility(self, seed: int) -> float:
        """Mixture-weighted attacker utility against the defender."""
        sp = self.selfplay
        utilities = []
        for apt, prob in zip(self.population.members,
                             self.population.probabilities):
            env = self._env_for(apt)
            aggregate, _ = evaluate_policy(
                env, self.defender_policy, sp.eval_episodes, seed=seed,
                max_steps=sp.eval_max_steps,
            )
            utilities.append(prob * attack_utility(aggregate))
        return float(sum(utilities))

    def _best_response(self, seed: int) -> BestResponseResult:
        sp = self.selfplay
        fitness = make_defender_fitness(
            self.config, self.defender_policy,
            episodes=sp.fitness_episodes, seed=seed,
            max_steps=sp.eval_max_steps,
        )
        search = CrossEntropySearch(
            self.space, fitness, population=sp.cem_population, seed=seed,
        )
        # warm-start the Gaussian at the current nominal attacker
        return search.run(
            iterations=sp.cem_iterations,
            init_mean=self.space.encode(self.config.apt),
        )

    # ------------------------------------------------------------------
    def run(self) -> list[SelfPlayRound]:
        sp = self.selfplay
        for round_index in range(sp.rounds):
            seed = sp.seed + 1000 * round_index
            self._train_defender(seed)
            population_utility = self._population_utility(seed + 500)
            search = self._best_response(seed + 700)
            record = SelfPlayRound(
                round_index=round_index,
                best_response_utility=search.best_fitness,
                population_utility=population_utility,
                exploitability=search.best_fitness - population_utility,
                best_response=search.best_config,
                search=search,
            )
            self.rounds.append(record)
            self.population.add(search.best_config)
        return self.rounds
