"""Population-based adversarial training (double-oracle style).

The loop alternates two oracles, both running on the vectorized
scenario infrastructure:

1. **Defender oracle** -- continue DQN training against the current
   attacker population. The population is fanned over the lanes of a
   ``repro.make_vec_from_specs`` vector environment (one sampled
   attacker per lane; any backend), so what used to be a round-robin of
   sequential episodes is one lockstep collection pass.
2. **Attacker oracle** -- a CEM best-response search against the frozen
   defender. Each CEM generation is evaluated as a batched fan-out over
   a vector environment (one candidate per lane,
   :func:`~repro.adversarial.best_response.make_defender_fitness_vec`).

Every best response that joins the population is bridged to a frozen
:class:`~repro.scenarios.spec.ScenarioSpec` (ids like
``selfplay/inasim-small-v1-r3-br1``, tagged ``selfplay`` +
``adversarial``) and registered, so ``repro.make(id)`` rebuilds the
exact environment the search evaluated; :func:`save_population` /
:func:`load_population` persist a whole population (specs + weights +
round records) as JSON through :mod:`repro.scenarios.serialization`.

The gap between the defender's value against its training population
and against the fresh best response is an empirical exploitability
estimate: it shrinking over rounds is the signal that the defender is
becoming robust to attacker adaptation -- the property the paper
measures one-shot with APT2 (Fig 10) and names as future work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

import repro
from repro.adversarial.best_response import (
    BestResponseResult,
    CrossEntropySearch,
    attack_utility,
    make_defender_fitness_vec,
)
from repro.adversarial.space import (
    AttackerParameterSpace,
    as_base_spec,
    scenario_for_attacker,
)
from repro.config import APTConfig
from repro.eval.runner import evaluate_policy, evaluate_policy_per_lane
from repro.scenarios.spec import ScenarioSpec
from repro.utils.rng import ensure_rng

__all__ = [
    "AttackerPopulation",
    "SelfPlayConfig",
    "SelfPlayRound",
    "SelfPlayLoop",
    "save_population",
    "load_population",
]

POPULATION_FORMAT = "selfplay-population-v1"


class AttackerPopulation:
    """A weighted set of attacker members.

    Members are :class:`~repro.scenarios.spec.ScenarioSpec` instances
    in the self-play loop (named, reconstructible attacker behaviours);
    the container itself is agnostic and also accepts raw
    :class:`~repro.config.APTConfig` members for ad-hoc use.
    """

    def __init__(self, members: list, weights=None):
        if not members:
            raise ValueError("population cannot be empty")
        self.members = list(members)
        if weights is None:
            weights = np.ones(len(self.members))
        self.weights = np.asarray(weights, dtype=float)
        if self.weights.shape != (len(self.members),):
            raise ValueError("weights must match members")
        if (self.weights < 0).any() or self.weights.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")

    def __len__(self) -> int:
        return len(self.members)

    @property
    def probabilities(self) -> np.ndarray:
        return self.weights / self.weights.sum()

    def add(self, member, weight: float = 1.0) -> None:
        self.members.append(member)
        self.weights = np.append(self.weights, weight)

    def sample(self, rng: np.random.Generator):
        index = rng.choice(len(self.members), p=self.probabilities)
        return self.members[int(index)]


@dataclass
class SelfPlayConfig:
    rounds: int = 3
    #: defender-oracle training episodes per round; the oracle opens a
    #: vector environment with one lane per episode, each lane running
    #: a population-sampled attacker
    train_episodes: int = 4
    train_max_steps: int | None = None
    #: CEM budget for the attacker oracle
    cem_iterations: int = 3
    cem_population: int = 8
    #: episodes per fitness evaluation inside the CEM
    fitness_episodes: int = 2
    #: episodes for the exploitability bookkeeping
    eval_episodes: int = 2
    eval_max_steps: int | None = None
    seed: int = 0
    #: vector-env backend for both oracles ("sync", "batched",
    #: "process", "shm", or "auto")
    backend: str = "sync"
    num_workers: int | None = None
    #: name used in emitted scenario ids ``selfplay/<run_name>-rN-brK``
    #: (default: the base scenario id); vary it to keep several runs'
    #: emissions side by side in the registry
    run_name: str | None = None


@dataclass
class SelfPlayRound:
    """Bookkeeping for one defender/attacker oracle round."""

    round_index: int
    #: attacker utility of the best response found this round
    best_response_utility: float
    #: attacker utility of the (pre-expansion) population mixture
    population_utility: float
    #: exploitability estimate: best response minus population utility
    exploitability: float
    best_response: APTConfig
    #: registry id of the emitted best-response scenario
    best_response_id: str | None = None
    best_response_spec: ScenarioSpec | None = None
    #: seed the winning fitness evaluation ran with (replaying
    #: ``repro.make(best_response_id)`` with it reproduces
    #: ``best_response_utility``)
    fitness_seed: int = 0
    #: utility re-measured from the *registered* scenario id against the
    #: round's frozen defender, before the next round trains it; equals
    #: ``best_response_utility`` when the emitted spec reconstructs the
    #: searched behaviour exactly
    verified_utility: float | None = None
    search: BestResponseResult = field(repr=False, default=None)


class SelfPlayLoop:
    """Alternating defender training and attacker best response.

    ``scenario`` is a registered scenario id, a
    :class:`~repro.scenarios.spec.ScenarioSpec`, or a preset-derived
    :class:`~repro.config.SimConfig`; everything the loop builds
    resolves through ``repro.make`` / ``repro.make_vec_from_specs``.
    ``trainer`` is a :class:`~repro.rl.dqn.DQNTrainer` (or API-equal
    object with ``set_env`` / ``train``) bound to the scenario's
    topology; ``defender_policy`` is the frozen-greedy view of the same
    Q-network used for fitness evaluations. With ``register_responses``
    (the default) every best response is registered under the
    ``selfplay/`` namespace (existing ids from earlier runs with the
    same ``run_name`` are overwritten — the loop owns that namespace).

    With ``reuse_pool`` (the default) the loop owns one
    :class:`~repro.sim.vec_backends.VecPool` shared by both oracles:
    on the worker-pool backends every defender-oracle collection pass,
    population evaluation, and CEM generation re-lanes a live worker
    pool instead of spawning a fresh one per call. The loop is a
    context manager; :meth:`close` tears the pool down.
    """

    def __init__(
        self,
        scenario,
        trainer,
        defender_policy,
        space: AttackerParameterSpace | None = None,
        selfplay: SelfPlayConfig | None = None,
        initial_population: AttackerPopulation | None = None,
        register_responses: bool = True,
        reuse_pool: bool = True,
    ):
        from repro.sim.vec_backends import VecPool

        self.base_spec = as_base_spec(scenario)
        self.config = self.base_spec.build_config()
        self.trainer = trainer
        self.defender_policy = defender_policy
        self.space = space or AttackerParameterSpace(base=self.config.apt)
        self.selfplay = selfplay or SelfPlayConfig()
        self.pool = VecPool() if reuse_pool else None
        self.register_responses = register_responses
        self.run_name = self.selfplay.run_name or self.base_spec.scenario_id
        if initial_population is None:
            initial_population = AttackerPopulation([
                scenario_for_attacker(
                    self.base_spec, self.config.apt,
                    f"selfplay/{self.run_name}-base",
                    description="Self-play base attacker "
                                f"(nominal {self.base_spec.scenario_id}).",
                    tags=("selfplay", "adversarial"),
                )
            ])
        else:
            initial_population = AttackerPopulation(
                [self._coerce_member(m, i)
                 for i, m in enumerate(initial_population.members)],
                initial_population.weights,
            )
        self.population = initial_population
        self.rng = ensure_rng(self.selfplay.seed)
        self.rounds: list[SelfPlayRound] = []

    # ------------------------------------------------------------------
    def _coerce_member(self, member, index: int) -> ScenarioSpec:
        """Bridge raw APTConfig members onto the base scenario."""
        if isinstance(member, APTConfig):
            return scenario_for_attacker(
                self.base_spec, member,
                f"selfplay/{self.run_name}-init{index}",
                tags=("selfplay", "adversarial"),
            )
        return as_base_spec(member)

    def _train_defender(self, seed: int) -> None:
        """Defender oracle: one vectorized pass over population lanes.

        ``train_episodes`` attackers are drawn from the population
        mixture and assigned one per lane; episode ``i`` of the
        training run collects from lane ``i``'s attacker.
        """
        sp = self.selfplay
        sampled = [self.population.sample(self.rng)
                   for _ in range(sp.train_episodes)]
        venv = repro.make_vec_from_specs(
            sampled, seed=seed, backend=sp.backend,
            num_workers=sp.num_workers, pool=self.pool,
        )
        try:
            self.trainer.set_env(venv)
            self.trainer.train(sp.train_episodes, seed=seed,
                               max_steps=sp.train_max_steps)
        finally:
            venv.close()

    def _population_utility(self, seed: int) -> float:
        """Mixture-weighted attacker utility against the defender.

        One lane per population member; every lane runs the same
        seeded evaluation episodes against its own clone of the frozen
        defender.
        """
        sp = self.selfplay
        venv = repro.make_vec_from_specs(
            list(self.population.members), seed=seed, backend=sp.backend,
            num_workers=sp.num_workers, pool=self.pool,
        )
        with venv:
            per_lane = evaluate_policy_per_lane(
                venv, self.defender_policy, sp.eval_episodes, seed=seed,
                max_steps=sp.eval_max_steps,
            )
        return float(sum(
            prob * attack_utility(agg)
            for prob, (agg, _) in zip(self.population.probabilities, per_lane)
        ))

    def _best_response(self, seed: int) -> BestResponseResult:
        sp = self.selfplay
        batch_fitness = make_defender_fitness_vec(
            self.base_spec, self.defender_policy,
            episodes=sp.fitness_episodes, seed=seed,
            max_steps=sp.eval_max_steps, backend=sp.backend,
            num_workers=sp.num_workers, pool=self.pool,
            reuse_pool=self.pool is not None,
        )
        search = CrossEntropySearch(
            self.space, batch_fitness_fn=batch_fitness,
            population=sp.cem_population, seed=seed,
        )
        # warm-start the Gaussian at the current nominal attacker
        return search.run(
            iterations=sp.cem_iterations,
            init_mean=self.space.encode(self.config.apt),
        )

    def _emit_best_response(self, apt: APTConfig, round_index: int,
                            utility: float) -> ScenarioSpec:
        """Freeze a best response as a tagged, registered scenario."""
        scenario_id = f"selfplay/{self.run_name}-r{round_index + 1}-br1"
        spec = scenario_for_attacker(
            self.base_spec, apt, scenario_id,
            description=(
                f"Self-play best response, round {round_index + 1} vs "
                f"{self.base_spec.scenario_id} (attacker utility "
                f"{utility:.2f})."
            ),
            tags=("selfplay", "adversarial"),
        )
        if self.register_responses:
            repro.register(spec, overwrite=True)
        return spec

    # ------------------------------------------------------------------
    def run(self) -> list[SelfPlayRound]:
        sp = self.selfplay
        for _ in range(sp.rounds):
            self.run_round()
        return self.rounds

    def run_round(self) -> SelfPlayRound:
        """One defender-oracle + attacker-oracle round."""
        sp = self.selfplay
        round_index = len(self.rounds)
        seed = sp.seed + 1000 * round_index
        self._train_defender(seed)
        population_utility = self._population_utility(seed + 500)
        search = self._best_response(seed + 700)
        spec = self._emit_best_response(
            search.best_config, round_index, search.best_fitness
        )
        record = SelfPlayRound(
            round_index=round_index,
            best_response_utility=search.best_fitness,
            population_utility=population_utility,
            exploitability=search.best_fitness - population_utility,
            best_response=search.best_config,
            best_response_id=spec.scenario_id,
            best_response_spec=spec,
            fitness_seed=seed + 700,
            search=search,
        )
        # verify now, against this round's frozen defender — the next
        # round's defender oracle will train the shared Q-network, after
        # which the winning evaluation is no longer replayable
        record.verified_utility = self.verify_best_response(record)
        self.rounds.append(record)
        self.population.add(spec)
        return record

    # ------------------------------------------------------------------
    def verify_best_response(self, record: SelfPlayRound) -> float:
        """Re-evaluate a round's best response from its registry id.

        Rebuilds the environment with ``repro.make`` (by id when the
        spec was registered) and replays the winning fitness
        evaluation; for deterministic defenders the returned utility
        equals ``record.best_response_utility`` exactly — the proof
        that the emitted scenario reconstructs the searched behaviour.
        :meth:`run_round` calls this automatically (stored as
        ``record.verified_utility``) because the comparison is only
        meaningful against the round's frozen defender: once a later
        round trains the shared Q-network, replays use the drifted
        defender and the utilities legitimately diverge.
        """
        sp = self.selfplay
        scenario = (record.best_response_id if self.register_responses
                    else record.best_response_spec)
        env = repro.make(scenario)
        aggregate, _ = evaluate_policy(
            env, self.defender_policy, sp.fitness_episodes,
            seed=record.fitness_seed, max_steps=sp.eval_max_steps,
        )
        return attack_utility(aggregate)

    def save(self, path) -> None:
        """Persist the population (+ round records) as JSON."""
        save_population(path, self.population, base=self.base_spec,
                        rounds=self.rounds)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down the loop's persistent worker pool (idempotent)."""
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "SelfPlayLoop":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ----------------------------------------------------------------------
# population persistence (registry-compatible JSON)
# ----------------------------------------------------------------------
def save_population(path, population: AttackerPopulation, *,
                    base: ScenarioSpec | None = None, rounds=()) -> None:
    """Write a spec-membered population to ``path`` as JSON.

    Members are stored with :func:`repro.scenarios.spec_to_dict`, so
    :func:`load_population` can re-register every attacker and
    ``repro.make(id)`` reconstructs it on any machine.
    """
    from repro.scenarios.serialization import spec_to_dict

    members = []
    for member, weight in zip(population.members, population.weights):
        if not isinstance(member, ScenarioSpec):
            raise TypeError(
                "save_population needs ScenarioSpec members; bridge raw "
                "APTConfigs with scenario_for_attacker first"
            )
        members.append({"spec": spec_to_dict(member), "weight": float(weight)})
    payload = {
        "format": POPULATION_FORMAT,
        "base": None if base is None else spec_to_dict(base),
        "members": members,
        "rounds": [
            {
                "round_index": r.round_index,
                "best_response_utility": r.best_response_utility,
                "population_utility": r.population_utility,
                "exploitability": r.exploitability,
                "best_response_id": r.best_response_id,
                "fitness_seed": r.fitness_seed,
            }
            for r in rounds
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_population(path, *, register: bool = True,
                    overwrite: bool = True) -> AttackerPopulation:
    """Load a persisted population; optionally re-register its members.

    With ``register`` (the default) every member spec re-enters the
    global registry — overwriting same-id entries, which is the point
    of reloading a run — so ``repro.make(<member id>)`` works
    immediately and evaluations of the loaded population are
    bit-identical to the run that saved it.
    """
    from repro.scenarios.registry import REGISTRY
    from repro.scenarios.serialization import spec_from_dict

    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != POPULATION_FORMAT:
        raise ValueError(
            f"{path} is not a self-play population file "
            f"(format={payload.get('format')!r})"
        )
    specs = [spec_from_dict(entry["spec"]) for entry in payload["members"]]
    weights = [float(entry["weight"]) for entry in payload["members"]]
    if register:
        for spec in specs:
            REGISTRY.register(spec, overwrite=overwrite)
    return AttackerPopulation(specs, weights)
