"""Defender x attacker robustness matrices.

Generalizes the paper's Fig 10 (four defenders x two attackers) to
arbitrary defender and attacker sets. Each cell bridges one attacker
configuration onto the base scenario
(:func:`~repro.adversarial.space.scenario_for_attacker`), builds the
environment through ``repro.make``, and evaluates one defender over
seeded episodes, reporting the paper's aggregate metrics.
"""

from __future__ import annotations

import repro
from repro.adversarial.space import as_base_spec, scenario_for_attacker
from repro.config import APTConfig
from repro.eval.metrics import AggregateResult
from repro.eval.runner import evaluate_policy

__all__ = ["robustness_matrix", "format_matrix"]


def robustness_matrix(
    scenario,
    defenders: dict[str, object],
    attackers: dict[str, APTConfig],
    episodes: int = 10,
    seed: int = 0,
    max_steps: int | None = None,
    sample_qualitative: bool = False,
) -> dict[str, dict[str, AggregateResult]]:
    """Evaluate every defender against every attacker.

    ``scenario`` is a registered id, a :class:`ScenarioSpec`, or a
    preset-derived :class:`~repro.config.SimConfig`. Returns
    ``matrix[defender_name][attacker_name]``. Episodes are seeded
    identically across cells so differences are attributable to the
    policies, not the draw.
    """
    base = as_base_spec(scenario)
    cells = {
        attacker_name: scenario_for_attacker(
            base, apt, f"{base.scenario_id}#vs-{attacker_name}",
            sample_qualitative=sample_qualitative,
        )
        for attacker_name, apt in attackers.items()
    }
    matrix: dict[str, dict[str, AggregateResult]] = {}
    for defender_name, defender in defenders.items():
        row: dict[str, AggregateResult] = {}
        for attacker_name, spec in cells.items():
            env = repro.make(spec)
            aggregate, _ = evaluate_policy(
                env, defender, episodes, seed=seed, max_steps=max_steps
            )
            row[attacker_name] = aggregate
        matrix[defender_name] = row
    return matrix


def format_matrix(
    matrix: dict[str, dict[str, AggregateResult]],
    metric: str = "discounted_return",
    precision: int = 2,
) -> str:
    """Render one metric of a robustness matrix as an aligned table."""
    defenders = list(matrix)
    attackers = list(next(iter(matrix.values())))
    name_width = max(len(d) for d in defenders) + 2
    col_width = max(12, max(len(a) for a in attackers) + 2)
    lines = [
        f"{'defender':<{name_width}}"
        + "".join(f"{a:>{col_width}}" for a in attackers)
    ]
    for defender_name in defenders:
        row = matrix[defender_name]
        cells = "".join(
            f"{row[a].mean(metric):>{col_width}.{precision}f}"
            for a in attackers
        )
        lines.append(f"{defender_name:<{name_width}}{cells}")
    return "\n".join(lines)
