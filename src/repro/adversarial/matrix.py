"""Defender x attacker robustness matrices.

Generalizes the paper's Fig 10 (four defenders x two attackers) to
arbitrary defender and attacker sets. Each cell evaluates one defender
against one attacker configuration over seeded episodes and reports the
paper's aggregate metrics.
"""

from __future__ import annotations

import repro
from repro.attacker import FSMAttacker
from repro.config import APTConfig, SimConfig
from repro.eval.metrics import AggregateResult
from repro.eval.runner import evaluate_policy

__all__ = ["robustness_matrix", "format_matrix"]


def robustness_matrix(
    config: SimConfig,
    defenders: dict[str, object],
    attackers: dict[str, APTConfig],
    episodes: int = 10,
    seed: int = 0,
    max_steps: int | None = None,
    sample_qualitative: bool = False,
) -> dict[str, dict[str, AggregateResult]]:
    """Evaluate every defender against every attacker.

    Returns ``matrix[defender_name][attacker_name]``. Episodes are
    seeded identically across cells so differences are attributable to
    the policies, not the draw.
    """
    matrix: dict[str, dict[str, AggregateResult]] = {}
    for defender_name, defender in defenders.items():
        row: dict[str, AggregateResult] = {}
        for attacker_name, apt in attackers.items():
            env = repro.make_env(
                config.with_apt(apt),
                attacker=FSMAttacker(
                    apt, sample_qualitative=sample_qualitative
                ),
            )
            aggregate, _ = evaluate_policy(
                env, defender, episodes, seed=seed, max_steps=max_steps
            )
            row[attacker_name] = aggregate
        matrix[defender_name] = row
    return matrix


def format_matrix(
    matrix: dict[str, dict[str, AggregateResult]],
    metric: str = "discounted_return",
    precision: int = 2,
) -> str:
    """Render one metric of a robustness matrix as an aligned table."""
    defenders = list(matrix)
    attackers = list(next(iter(matrix.values())))
    name_width = max(len(d) for d in defenders) + 2
    col_width = max(12, max(len(a) for a in attackers) + 2)
    lines = [
        f"{'defender':<{name_width}}"
        + "".join(f"{a:>{col_width}}" for a in attackers)
    ]
    for defender_name in defenders:
        row = matrix[defender_name]
        cells = "".join(
            f"{row[a].mean(metric):>{col_width}.{precision}f}"
            for a in attackers
        )
        lines.append(f"{defender_name:<{name_width}}{cells}")
    return "\n".join(lines)
