"""Networking devices: switches, routers, and firewalls.

Devices matter for two reasons (paper appendix, IDS module): messages
passing through a device may generate an alert with a probability scaled
by the device's factor, and quarantine VLANs block attacker traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["DeviceType", "Device"]


class DeviceType(enum.Enum):
    SWITCH = "switch"
    ROUTER = "router"
    FIREWALL = "firewall"


@dataclass(frozen=True)
class Device:
    device_id: int
    name: str
    dtype: DeviceType
    level: int
    ip: str

    def alert_factor(self, switch: float, router: float, firewall: float) -> float:
        """The IDS multiplier contributed by this device on a message path."""
        if self.dtype is DeviceType.SWITCH:
            return switch
        if self.dtype is DeviceType.ROUTER:
            return router
        return firewall
