"""Random network generation for size-generalization studies.

The attention architecture's claim (paper Section 4.4) is that one
policy protects networks of *any* size. Testing that claim needs a
family of networks, not three presets. :class:`TopologySampler` draws
valid :class:`~repro.config.TopologyConfig` instances from bounded
ranges, with the paper's presets as interior points; the
``bench_size_generalization`` bench sweeps a fixed policy across a
sample of them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import SimConfig, TopologyConfig

__all__ = ["TopologySampler", "sample_configs"]

#: server-role pools to draw from; the OPC is always present because
#: the attacker's "opc" vector and the FSM's phase criteria need it
_ROLE_POOLS = (
    ("opc",),
    ("opc", "historian"),
    ("opc", "historian", "domain_controller"),
)


@dataclass(frozen=True)
class TopologySampler:
    """Bounded uniform sampler over network shapes.

    Defaults bracket the paper's presets: tiny (3 workstations, 4 PLCs)
    through paper (25 workstations, 50 PLCs) and beyond.
    """

    min_workstations: int = 3
    max_workstations: int = 40
    min_hmis: int = 1
    max_hmis: int = 8
    min_plcs: int = 4
    max_plcs: int = 80

    def __post_init__(self) -> None:
        for low, high, name in (
            (self.min_workstations, self.max_workstations, "workstations"),
            (self.min_hmis, self.max_hmis, "hmis"),
            (self.min_plcs, self.max_plcs, "plcs"),
        ):
            if low < 1 or low > high:
                raise ValueError(f"invalid {name} bounds [{low}, {high}]")

    def sample(self, rng: np.random.Generator) -> TopologyConfig:
        roles = _ROLE_POOLS[int(rng.integers(len(_ROLE_POOLS)))]
        return TopologyConfig(
            l2_workstations=int(
                rng.integers(self.min_workstations, self.max_workstations + 1)
            ),
            l2_servers=roles,
            l1_hmis=int(rng.integers(self.min_hmis, self.max_hmis + 1)),
            plcs=int(rng.integers(self.min_plcs, self.max_plcs + 1)),
        )


def sample_configs(
    n: int,
    base: SimConfig,
    sampler: TopologySampler | None = None,
    seed: int = 0,
) -> list[SimConfig]:
    """``n`` SimConfigs with random topologies and ``base``'s other
    settings (attacker, IDS, reward, horizon).

    Attacker thresholds are clamped to each sampled network (an APT
    demanding 15 PLCs on a 6-PLC plant would never execute); the FSM
    already clamps at runtime, so this only keeps the configs honest
    when inspected.
    """
    sampler = sampler or TopologySampler()
    rng = np.random.default_rng(seed)
    configs = []
    for _ in range(n):
        topology = sampler.sample(rng)
        apt = replace(
            base.apt,
            lateral_threshold=min(base.apt.lateral_threshold,
                                  topology.l2_workstations),
            hmi_threshold=min(base.apt.hmi_threshold, topology.l1_hmis),
            plc_threshold_destroy=min(base.apt.plc_threshold_destroy,
                                      topology.plcs),
            plc_threshold_disrupt=min(base.apt.plc_threshold_disrupt,
                                      topology.plcs),
        )
        configs.append(replace(base, topology=topology, apt=apt))
    return configs
