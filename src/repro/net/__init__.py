"""Network substrate: nodes, PLCs, networking devices, and topology."""

from repro.net.nodes import (
    Condition,
    Node,
    NodeType,
    PLC,
    ServerRole,
    CONDITION_PREREQS,
)
from repro.net.devices import Device, DeviceType
from repro.net.topology import Topology, Vlan, build_topology

__all__ = [
    "Condition",
    "CONDITION_PREREQS",
    "Node",
    "NodeType",
    "PLC",
    "ServerRole",
    "Device",
    "DeviceType",
    "Topology",
    "Vlan",
    "build_topology",
]
