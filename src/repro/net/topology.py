"""Topology builder and message-path model.

The network mirrors Fig 2 of the paper: two PERA levels, each with an
operations VLAN and a nominally empty quarantine VLAN, a dedicated
router per level, and a firewall joining the level routers. Every VLAN
is realized as a discrete switch connected to its level's router; PLCs
hang off the level-1 operations switch.

Message paths determine alert multipliers (switch x1, router x2,
firewall x5 by default) and reachability: traffic to or from a
quarantine VLAN is dropped, which is what makes the defender's
Quarantine action effective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import networkx as nx

from repro.config import IDSConfig, TopologyConfig
from repro.net.devices import Device, DeviceType
from repro.net.nodes import PLC, Node, NodeType, ServerRole

__all__ = ["Vlan", "Topology", "build_topology"]

#: well-known VLAN names
L2_OPS = "vlan-2-ops"
L2_QUAR = "vlan-2-quarantine"
L1_OPS = "vlan-1-ops"
L1_QUAR = "vlan-1-quarantine"


@dataclass(frozen=True)
class Vlan:
    name: str
    level: int
    quarantine: bool
    switch_id: int


@dataclass
class Topology:
    """Static network structure plus message-path queries."""

    config: TopologyConfig
    nodes: list[Node]
    plcs: list[PLC]
    devices: list[Device]
    vlans: dict[str, Vlan]
    graph: nx.Graph = field(repr=False)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def plc(self, plc_id: int) -> PLC:
        return self.plcs[plc_id]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_plcs(self) -> int:
        return len(self.plcs)

    def nodes_of_type(self, ntype: NodeType) -> list[Node]:
        return [n for n in self.nodes if n.ntype is ntype]

    def server(self, role: ServerRole) -> Node | None:
        """The unique server with the given role, if present."""
        cache = self.__dict__.get("_server_by_role")
        if cache is None:
            cache = {}
            for n in self.nodes:
                cache.setdefault(n.role, n)
            self._server_by_role = cache
        return cache.get(role)

    # ------------------------------------------------------------------
    # cached per-topology invariants (nodes/plcs/vlans are frozen, so
    # these never go stale; they keep the per-step hot paths off Python
    # attribute walks over the node list)
    # ------------------------------------------------------------------
    @cached_property
    def node_levels(self) -> list[int]:
        return [n.level for n in self.nodes]

    @cached_property
    def hmi_ids(self) -> list[int]:
        return [n.node_id for n in self.nodes if n.ntype is NodeType.HMI]

    @cached_property
    def hmi_id_set(self) -> frozenset[int]:
        return frozenset(self.hmi_ids)

    @cached_property
    def l2_workstation_ids(self) -> list[int]:
        return [
            n.node_id for n in self.nodes
            if n.level == 2 and n.ntype is NodeType.WORKSTATION
        ]

    @cached_property
    def ops_vlan_set(self) -> frozenset[str]:
        return frozenset(self.ops_vlans())

    def nodes_in_vlan(self, vlan: str, node_vlans: list[str]) -> list[int]:
        """Node ids currently assigned to ``vlan``.

        ``node_vlans`` is the dynamic per-node VLAN assignment owned by
        the simulation state (quarantine moves nodes around).
        """
        return [i for i, v in enumerate(node_vlans) if v == vlan]

    def quarantine_vlan_for(self, node: Node) -> str:
        return L2_QUAR if node.level == 2 else L1_QUAR

    def ops_vlans(self) -> list[str]:
        return [v.name for v in self.vlans.values() if not v.quarantine]

    # ------------------------------------------------------------------
    # message paths
    # ------------------------------------------------------------------
    def path_devices(self, src_vlan: str, dst_vlan: str) -> list[Device]:
        """Devices traversed by a message between two VLANs.

        Includes both endpoint switches. A message within one VLAN
        traverses just that VLAN's switch.
        """
        src_switch = self.vlans[src_vlan].switch_id
        dst_switch = self.vlans[dst_vlan].switch_id
        if src_switch == dst_switch:
            return [self.devices[src_switch]]
        path = nx.shortest_path(self.graph, src_switch, dst_switch)
        return [self.devices[d] for d in path]

    def reachable(self, src_vlan: str, dst_vlan: str) -> bool:
        """Whether APT traffic can flow between two VLANs.

        Quarantine VLANs drop attacker traffic in both directions
        (except loopback within the same quarantine VLAN, which never
        helps the attacker because quarantined nodes are alone).
        """
        if self.vlans[src_vlan].quarantine or self.vlans[dst_vlan].quarantine:
            return src_vlan == dst_vlan
        return True

    def alert_factor(self, src_vlan: str, dst_vlan: str, ids: IDSConfig) -> float:
        """Product of device alert factors along the message path.

        Paths between a fixed VLAN pair never change, so factors are
        memoized per (pair, factor triple) — this keeps graph shortest-
        path searches out of the attacker-launch hot path.
        """
        key = (src_vlan, dst_vlan, ids.switch_factor, ids.router_factor,
               ids.firewall_factor)
        cache = self.__dict__.setdefault("_alert_factor_cache", {})
        factor = cache.get(key)
        if factor is None:
            factor = 1.0
            for dev in self.path_devices(src_vlan, dst_vlan):
                factor *= dev.alert_factor(
                    ids.switch_factor, ids.router_factor, ids.firewall_factor
                )
            cache[key] = factor
        return factor


def _ip(level: int, vlan_index: int, host: int) -> str:
    return f"10.{level}.{vlan_index}.{host}"


def build_topology(config: TopologyConfig) -> Topology:
    """Construct the Fig 2 network for the given size configuration."""
    devices: list[Device] = []

    def add_device(name: str, dtype: DeviceType, level: int) -> int:
        device_id = len(devices)
        devices.append(
            Device(device_id, name, dtype, level, _ip(level, 250, device_id + 1))
        )
        return device_id

    sw_l2_ops = add_device("switch-2-ops", DeviceType.SWITCH, 2)
    sw_l2_quar = add_device("switch-2-quarantine", DeviceType.SWITCH, 2)
    sw_l1_ops = add_device("switch-1-ops", DeviceType.SWITCH, 1)
    sw_l1_quar = add_device("switch-1-quarantine", DeviceType.SWITCH, 1)
    router_l2 = add_device("router-2", DeviceType.ROUTER, 2)
    router_l1 = add_device("router-1", DeviceType.ROUTER, 1)
    firewall = add_device("firewall-2-1", DeviceType.FIREWALL, 2)

    graph = nx.Graph()
    graph.add_nodes_from(d.device_id for d in devices)
    graph.add_edge(sw_l2_ops, router_l2)
    graph.add_edge(sw_l2_quar, router_l2)
    graph.add_edge(sw_l1_ops, router_l1)
    graph.add_edge(sw_l1_quar, router_l1)
    graph.add_edge(router_l2, firewall)
    graph.add_edge(firewall, router_l1)

    vlans = {
        L2_OPS: Vlan(L2_OPS, 2, False, sw_l2_ops),
        L2_QUAR: Vlan(L2_QUAR, 2, True, sw_l2_quar),
        L1_OPS: Vlan(L1_OPS, 1, False, sw_l1_ops),
        L1_QUAR: Vlan(L1_QUAR, 1, True, sw_l1_quar),
    }

    nodes: list[Node] = []

    def add_node(name: str, ntype: NodeType, role: ServerRole, level: int, vlan: str):
        node_id = len(nodes)
        nodes.append(
            Node(node_id, name, ntype, role, level, vlan, _ip(level, 1, node_id + 1))
        )

    for i in range(config.l2_workstations):
        add_node(f"eng-ws-{i:02d}", NodeType.WORKSTATION, ServerRole.NONE, 2, L2_OPS)
    for role_name in config.l2_servers:
        role = ServerRole(role_name)
        add_node(f"server-{role_name}", NodeType.SERVER, role, 2, L2_OPS)
    for i in range(config.l1_hmis):
        add_node(f"hmi-{i:02d}", NodeType.HMI, ServerRole.NONE, 1, L1_OPS)

    plcs = [
        PLC(i, f"plc-{i:02d}", L1_OPS, _ip(1, 2, i + 1)) for i in range(config.plcs)
    ]

    return Topology(
        config=config, nodes=nodes, plcs=plcs, devices=devices, vlans=vlans,
        graph=graph,
    )
