"""Computing nodes and PLCs.

Static node identity lives here; the *dynamic* compromise state is held
as arrays in :class:`repro.sim.state.NetworkState` for speed. The
compromise conditions and their prerequisite chain reproduce Table 1 of
the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Condition",
    "CONDITION_PREREQS",
    "NodeType",
    "ServerRole",
    "Node",
    "PLC",
]


class Condition(enum.IntEnum):
    """Node compromise conditions (paper Table 1), used as array columns."""

    SCANNED = 0
    COMPROMISED = 1
    REBOOT_PERSIST = 2
    ADMIN = 3
    CRED_PERSIST = 4
    CLEANED = 5


N_CONDITIONS = len(Condition)

#: Table 1 "Required Condition" column: condition -> prerequisite (or None).
CONDITION_PREREQS: dict[Condition, Condition | None] = {
    Condition.SCANNED: None,
    Condition.COMPROMISED: Condition.SCANNED,
    Condition.REBOOT_PERSIST: Condition.COMPROMISED,
    Condition.ADMIN: Condition.COMPROMISED,
    Condition.CRED_PERSIST: Condition.ADMIN,
    Condition.CLEANED: Condition.ADMIN,
}


class NodeType(enum.Enum):
    """Computing node classes. HMIs are the level-1 workstations."""

    WORKSTATION = "workstation"
    SERVER = "server"
    HMI = "hmi"

    @property
    def is_host(self) -> bool:
        """Workstation-class nodes (quarantine-eligible)."""
        return self is not NodeType.SERVER


class ServerRole(enum.Enum):
    NONE = "none"
    OPC = "opc"
    HISTORIAN = "historian"
    DOMAIN_CONTROLLER = "domain_controller"


@dataclass(frozen=True)
class Node:
    """A computing node the APT may compromise."""

    node_id: int
    name: str
    ntype: NodeType
    role: ServerRole
    level: int  # PERA level: 1 (plant) or 2 (engineering)
    home_vlan: str  # operations VLAN the node belongs to when not quarantined
    ip: str

    @property
    def is_server(self) -> bool:
        return self.ntype is NodeType.SERVER

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.name}({self.ip})"


@dataclass(frozen=True)
class PLC:
    """A programmable logic controller at PERA level 1."""

    plc_id: int
    name: str
    vlan: str
    ip: str
