"""SQLite-backed run registry for the evaluation service.

Every job the service executes becomes one row in ``runs`` plus one row
per completed episode in ``episodes`` — scenario, seed, policy
identifier, per-episode metrics (including wall-time), aggregate
metrics, and exploitability where applicable — so results survive the
process and are queryable long after the server restarted
(``repro runs list`` reads the same file).

Design points:

* **WAL mode.** Readers never block the single writer, so ``repro runs
  list`` can watch a live server's store, and several store handles
  (service + CLI, or concurrent service threads) coexist.
* **Schema versioning.** ``PRAGMA user_version`` tracks the schema; a
  reopen is a no-op, an old file is migrated step-by-step through
  ``_MIGRATIONS``, and a file from a *newer* code version is refused
  rather than scribbled on.
* **Append-only data.** ``runs`` and ``episodes`` rows are never
  deleted; the only in-place mutation is the run's status lifecycle
  (``queued -> running -> done/error/cancelled``, or ``interrupted``
  when a reopening store finds rows a crashed server left ``running``)
  and its closing timestamps/metrics. Free-form detail travels in JSON
  columns, so the schema does not chase every new job field.
* **Crash accounting.** Since v2 every run carries a ``faults``
  column — the number of worker-process faults the job survived — and
  :meth:`RunStore.reconcile_interrupted` runs at service startup so a
  killed server never leaves phantom ``running`` rows behind.

The store is thread-safe: one connection guarded by a lock, with a
busy timeout so independent handles on the same file (WAL) retry
instead of failing.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid

__all__ = ["RunStore", "SCHEMA_VERSION", "RUN_STATUSES", "new_run_id"]

SCHEMA_VERSION = 3

#: the run status lifecycle; terminal states are never left
#: (``interrupted`` marks runs stranded ``running`` by a server crash)
RUN_STATUSES = ("queued", "running", "done", "error", "cancelled",
                "interrupted")

#: each entry migrates user_version i -> i+1
_MIGRATIONS = [
    # 0 -> 1: initial schema
    """
    CREATE TABLE runs (
        run_id      TEXT PRIMARY KEY,
        kind        TEXT NOT NULL,
        scenario_id TEXT,
        spec        TEXT,           -- ScenarioSpec JSON (inline-spec jobs)
        policy      TEXT,           -- policy / checkpoint identifier
        seed        INTEGER,
        episodes    INTEGER,        -- requested episode count
        status      TEXT NOT NULL,
        created_at  REAL NOT NULL,
        started_at  REAL,
        finished_at REAL,
        wall_time   REAL,           -- whole-run wall-clock seconds
        code_version TEXT,
        tags        TEXT NOT NULL DEFAULT '[]',  -- JSON array
        detail      TEXT NOT NULL DEFAULT '{}',  -- JSON request payload
        metrics     TEXT,           -- JSON aggregate metrics
        error       TEXT
    );
    CREATE INDEX idx_runs_scenario ON runs (scenario_id);
    CREATE INDEX idx_runs_status ON runs (status);
    CREATE INDEX idx_runs_created ON runs (created_at);
    CREATE TABLE episodes (
        run_id        TEXT NOT NULL,
        lane          INTEGER NOT NULL DEFAULT 0,
        episode_index INTEGER NOT NULL,
        seed          INTEGER,
        wall_time     REAL,
        recorded_at   REAL NOT NULL,
        detail        TEXT NOT NULL,  -- JSON EpisodeMetrics / round record
        PRIMARY KEY (run_id, lane, episode_index)
    );
    """,
    # 1 -> 2: per-run worker-fault count (fault-tolerant execution)
    """
    ALTER TABLE runs ADD COLUMN faults INTEGER NOT NULL DEFAULT 0;
    """,
    # 2 -> 3: checkpoint-promotion verdicts (offline OPE gate)
    """
    CREATE TABLE promotions (
        promotion_id     TEXT PRIMARY KEY,
        candidate_run_id TEXT NOT NULL,
        baseline_run_id  TEXT,          -- NULL for fixed-value baselines
        estimator        TEXT NOT NULL,
        candidate_lower  REAL NOT NULL,
        baseline_lower   REAL NOT NULL,
        min_margin       REAL NOT NULL,
        verdict          TEXT NOT NULL,
        created_at       REAL NOT NULL,
        detail           TEXT NOT NULL DEFAULT '{}'  -- JSON context
    );
    CREATE INDEX idx_promotions_candidate ON promotions (candidate_run_id);
    CREATE INDEX idx_promotions_created ON promotions (created_at);
    """,
]


def new_run_id() -> str:
    """A short, unique run identifier (also the service's job id)."""
    return uuid.uuid4().hex[:12]


def _json_or_none(value):
    return None if value is None else json.dumps(value, sort_keys=True)


class RunStore:
    """Append-only SQLite registry of service runs and their episodes.

    All methods are safe to call from any thread; rows come back as
    plain JSON-compatible dicts (JSON columns decoded), so they can be
    returned from the HTTP API verbatim.
    """

    def __init__(self, path: str, *, timeout: float = 10.0):
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._closed = False
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
            self._migrate()

    # -- schema --------------------------------------------------------
    def _migrate(self) -> None:
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise RuntimeError(
                f"run store {self.path!r} has schema version {version}, "
                f"newer than this code's {SCHEMA_VERSION}; refusing to touch it"
            )
        while version < SCHEMA_VERSION:
            with self._conn:  # one transaction per migration step
                self._conn.executescript(_MIGRATIONS[version])
                version += 1
                self._conn.execute(f"PRAGMA user_version={version}")

    @property
    def schema_version(self) -> int:
        with self._lock:
            return self._conn.execute("PRAGMA user_version").fetchone()[0]

    # -- writes --------------------------------------------------------
    def create_run(self, kind: str, *, run_id: str | None = None,
                   scenario_id: str | None = None, spec: dict | None = None,
                   policy: str | None = None, seed: int | None = None,
                   episodes: int | None = None, tags: list[str] | None = None,
                   detail: dict | None = None, code_version: str | None = None,
                   status: str = "queued") -> str:
        """Insert a new run row; returns its id."""
        if status not in RUN_STATUSES:
            raise ValueError(f"unknown run status {status!r}")
        run_id = run_id or new_run_id()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO runs (run_id, kind, scenario_id, spec, policy,"
                " seed, episodes, status, created_at, code_version, tags,"
                " detail) VALUES (?,?,?,?,?,?,?,?,?,?,?,?)",
                (run_id, kind, scenario_id, _json_or_none(spec), policy,
                 seed, episodes, status, time.time(), code_version,
                 json.dumps(list(tags or [])),
                 json.dumps(detail or {}, sort_keys=True)),
            )
        return run_id

    def mark_running(self, run_id: str) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE runs SET status='running', started_at=? "
                "WHERE run_id=? AND status='queued'",
                (time.time(), run_id),
            )

    def record_episode(self, run_id: str, episode_index: int, detail: dict, *,
                       lane: int = 0, seed: int | None = None,
                       wall_time: float | None = None) -> None:
        """Append one completed episode (or self-play round) record.

        ``INSERT OR REPLACE``: a job retried after a worker fault
        re-runs its episodes from scratch, and the fresh record simply
        supersedes the one from the aborted attempt."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO episodes (run_id, lane,"
                " episode_index, seed, wall_time, recorded_at, detail)"
                " VALUES (?,?,?,?,?,?,?)",
                (run_id, lane, episode_index, seed, wall_time, time.time(),
                 json.dumps(detail, sort_keys=True)),
            )

    def _finish(self, run_id: str, status: str, *, metrics: dict | None,
                error: str | None, faults: int = 0) -> None:
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE runs SET status=?, finished_at=?,"
                " wall_time=CASE WHEN started_at IS NULL THEN NULL"
                " ELSE ? - started_at END,"
                " metrics=?, error=?, faults=? WHERE run_id=?",
                (status, time.time(), time.time(),
                 _json_or_none(metrics), error, int(faults), run_id),
            )

    def finish_run(self, run_id: str, metrics: dict | None = None, *,
                   faults: int = 0) -> None:
        self._finish(run_id, "done", metrics=metrics, error=None,
                     faults=faults)

    def fail_run(self, run_id: str, error: str, *, faults: int = 0) -> None:
        self._finish(run_id, "error", metrics=None, error=error,
                     faults=faults)

    def cancel_run(self, run_id: str) -> None:
        self._finish(run_id, "cancelled", metrics=None, error=None)

    def reconcile_interrupted(self) -> list[dict]:
        """Mark runs a dead server stranded ``running`` as ``interrupted``.

        Called at service startup (and usable from the CLI): any row
        still ``running`` cannot actually be running — this process
        just opened the store — so it is flagged rather than left as a
        phantom forever. Returns the affected rows (decoded), so the
        caller can requeue them from their stored request payloads.
        """
        with self._lock, self._conn:
            rows = self._conn.execute(
                "SELECT * FROM runs WHERE status='running'"
            ).fetchall()
            stranded = [self._decode_run(row) for row in rows]
            if stranded:
                self._conn.executemany(
                    "UPDATE runs SET status='interrupted', finished_at=?,"
                    " error=COALESCE(error, 'server exited mid-run')"
                    " WHERE run_id=?",
                    [(time.time(), run["run_id"]) for run in stranded],
                )
        for run in stranded:
            run["status"] = "interrupted"
        return stranded

    def record_promotion(self, *, candidate_run_id: str,
                         baseline_run_id: str | None, estimator: str,
                         candidate_lower: float, baseline_lower: float,
                         min_margin: float, verdict: str,
                         detail: dict | None = None) -> str:
        """Append one checkpoint-promotion verdict; returns its id.

        Promotion rows are append-only history, like runs: re-judging
        the same candidate writes a new row rather than mutating the
        old verdict."""
        promotion_id = new_run_id()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO promotions (promotion_id, candidate_run_id,"
                " baseline_run_id, estimator, candidate_lower,"
                " baseline_lower, min_margin, verdict, created_at, detail)"
                " VALUES (?,?,?,?,?,?,?,?,?,?)",
                (promotion_id, candidate_run_id, baseline_run_id, estimator,
                 float(candidate_lower), float(baseline_lower),
                 float(min_margin), verdict, time.time(),
                 json.dumps(detail or {}, sort_keys=True)),
            )
        return promotion_id

    def promotions(self, *, candidate_run_id: str | None = None,
                   limit: int = 50) -> list[dict]:
        """Newest-first promotion verdicts, optionally per candidate."""
        query = "SELECT * FROM promotions"
        params: list = []
        if candidate_run_id is not None:
            query += " WHERE candidate_run_id=?"
            params.append(candidate_run_id)
        query += " ORDER BY created_at DESC, promotion_id DESC"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        decoded = []
        for row in rows:
            promotion = dict(row)
            promotion["detail"] = json.loads(promotion["detail"])
            decoded.append(promotion)
        return decoded[: max(0, limit)] if limit is not None else decoded

    # -- reads ---------------------------------------------------------
    @staticmethod
    def _decode_run(row: sqlite3.Row) -> dict:
        run = dict(row)
        for key in ("spec", "metrics"):
            if run.get(key) is not None:
                run[key] = json.loads(run[key])
        run["tags"] = json.loads(run["tags"])
        run["detail"] = json.loads(run["detail"])
        return run

    def get_run(self, run_id: str) -> dict | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id=?", (run_id,)
            ).fetchone()
        return None if row is None else self._decode_run(row)

    def list_runs(self, *, scenario: str | None = None,
                  status: str | None = None, kind: str | None = None,
                  tag: str | None = None, limit: int = 50) -> list[dict]:
        """Newest-first run rows, optionally filtered.

        ``scenario``/``status``/``kind`` filter in SQL; ``tag``
        membership is checked on the decoded JSON array (portable
        across sqlite builds with and without the json1 extension).
        """
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if scenario is not None:
            clauses.append("scenario_id=?")
            params.append(scenario)
        if status is not None:
            clauses.append("status=?")
            params.append(status)
        if kind is not None:
            clauses.append("kind=?")
            params.append(kind)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created_at DESC, run_id DESC"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        runs = [self._decode_run(row) for row in rows]
        if tag is not None:
            runs = [run for run in runs if tag in run["tags"]]
        return runs[: max(0, limit)] if limit is not None else runs

    def episodes_of(self, run_id: str) -> list[dict]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM episodes WHERE run_id=?"
                " ORDER BY lane, episode_index",
                (run_id,),
            ).fetchall()
        episodes = []
        for row in rows:
            episode = dict(row)
            episode["detail"] = json.loads(episode["detail"])
            episodes.append(episode)
        return episodes

    def count_runs(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
