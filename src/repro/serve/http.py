"""Hand-rolled HTTP/JSON front end for :class:`~repro.serve.service.EvalService`.

Built directly on :func:`asyncio.start_server` — no web framework, no
new dependencies. The protocol surface is deliberately small and
JSON-only:

====== ========================== ===========================================
Method Path                       Meaning
====== ========================== ===========================================
GET    /health                    liveness + queue depth + pool + fault stats
GET    /healthz                   alias of /health (probe convention)
POST   /jobs                      submit a job (202; 400/429/503 on reject)
GET    /jobs                      live job table (this process's lifetime)
GET    /jobs/<id>                 one job's status + progress
POST   /jobs/<id>/cancel          request cancellation
GET    /runs                      run store query (scenario/status/kind/tag)
GET    /runs/<id>                 one run row + its episode records
POST   /promote                   judge a checkpoint promotion (OPE gate)
GET    /promotions                promotion verdict history
POST   /shutdown                  graceful shutdown (drain, then exit)
====== ========================== ===========================================

Every response is a JSON object; errors carry ``{"error": ...}``.
Queue overflow maps to **429** — the backpressure contract: the
server sheds load instead of buffering unboundedly, and clients retry.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qs, urlsplit

import repro
from repro.serve.jobs import JobError
from repro.serve.service import EvalService, QueueFullError, ServiceClosedError

__all__ = ["ServeServer"]

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: request-body bound; a job payload is small, anything bigger is abuse
MAX_BODY_BYTES = 1 << 20


class ServeServer:
    """One TCP listener bound to an :class:`EvalService`.

    ``port=0`` binds an ephemeral port (the bound port is exposed as
    :attr:`port` after :meth:`start` — tests and the CLI print it).
    :meth:`serve_forever` blocks until a ``POST /shutdown`` arrives or
    :meth:`request_shutdown` is called, then drains the service.
    """

    def __init__(self, service: EvalService, *, host: str = "127.0.0.1",
                 port: int = 8642):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown_event: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._shutdown_event = asyncio.Event()
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def serve_forever(self) -> None:
        await self._shutdown_event.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting connections, then drain the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.shutdown()

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", 0) or 0)
            if length > MAX_BODY_BYTES:
                await self._respond(writer, 413,
                                    {"error": "request body too large"})
                return
            body = await reader.readexactly(length) if length else b""
            status, payload = await self._route(method, target, body)
            await self._respond(writer, status, payload)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing -------------------------------------------------------
    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, dict]:
        url = urlsplit(target)
        parts = [p for p in url.path.split("/") if p]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            return self._dispatch(method, parts, query, body)
        except JobError as exc:
            return 400, {"error": str(exc)}
        except QueueFullError as exc:
            return 429, {"error": str(exc)}
        except ServiceClosedError as exc:
            return 503, {"error": str(exc)}
        except Exception as exc:  # route bug: report, keep serving
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def _dispatch(self, method: str, parts: list[str], query: dict,
                  body: bytes) -> tuple[int, dict]:
        service = self.service
        if parts in (["health"], ["healthz"]) and method == "GET":
            return 200, {
                "status": "closing" if service.closing else "ok",
                "version": repro.__version__,
                "queue_depth": service.queue_depth(),
                "max_queue": service.max_queue,
                "pool": service.pool.stats,
                "faults": service.fault_summary(),
                "jobs": len(service.jobs()),
            }
        if parts == ["jobs"] and method == "POST":
            job = service.submit(self._json_body(body))
            return 202, job.snapshot()
        if parts == ["jobs"] and method == "GET":
            return 200, {"jobs": [j.snapshot() for j in service.jobs()]}
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            job = service.job(parts[1])
            if job is None:
                return 404, {"error": f"unknown job {parts[1]!r}"}
            return 200, job.snapshot()
        if (len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel"
                and method == "POST"):
            job = service.cancel(parts[1])
            if job is None:
                return 404, {"error": f"unknown job {parts[1]!r}"}
            return 200, job.snapshot()
        if parts == ["runs"] and method == "GET":
            limit = int(query.get("limit", 50))
            runs = service.store.list_runs(
                scenario=query.get("scenario"), status=query.get("status"),
                kind=query.get("kind"), tag=query.get("tag"), limit=limit,
            )
            return 200, {"runs": runs}
        if len(parts) == 2 and parts[0] == "runs" and method == "GET":
            run = service.store.get_run(parts[1])
            if run is None:
                return 404, {"error": f"unknown run {parts[1]!r}"}
            run["episode_records"] = service.store.episodes_of(parts[1])
            return 200, run
        if parts == ["promote"] and method == "POST":
            return 200, service.promote(self._json_body(body))
        if parts == ["promotions"] and method == "GET":
            limit = int(query.get("limit", 50))
            return 200, {"promotions": service.store.promotions(
                candidate_run_id=query.get("candidate"), limit=limit,
            )}
        if parts == ["shutdown"] and method == "POST":
            self.request_shutdown()
            return 202, {"status": "shutting down"}
        if parts and parts[0] in ("health", "healthz", "jobs", "runs",
                                  "shutdown", "promote", "promotions"):
            return 405, {"error": f"{method} not allowed on /{'/'.join(parts)}"}
        return 404, {"error": f"no such endpoint: /{'/'.join(parts)}"}

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            raise JobError("request body must be a JSON object")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobError(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise JobError("request body must be a JSON object")
        return payload
