"""Blocking JSON client for a running ``repro serve`` instance.

Built on :mod:`http.client` (stdlib only, one connection per request —
the server closes connections after each response). This is what the
``repro submit`` / ``repro runs`` CLI verbs and the test-suite speak;
anything else that talks HTTP+JSON works just as well (``curl`` included).

Error mapping mirrors the server's contract:

* 400 -> :class:`ServeRequestError` (malformed job payload)
* 404 -> :class:`ServeNotFoundError`
* 429 -> :class:`ServeQueueFullError` (backpressure; retry later)
* 503 -> :class:`ServeClosingError` (server draining for shutdown)
"""

from __future__ import annotations

import http.client
import json
import time

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeRequestError",
    "ServeNotFoundError",
    "ServeQueueFullError",
    "ServeClosingError",
    "JobFailedError",
]


class ServeError(RuntimeError):
    """Base class for client-visible service errors."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class ServeRequestError(ServeError):
    """The server rejected the payload (HTTP 400)."""


class ServeNotFoundError(ServeError):
    """Unknown job/run/endpoint (HTTP 404)."""


class ServeQueueFullError(ServeError):
    """The job queue is full (HTTP 429); back off and retry."""


class ServeClosingError(ServeError):
    """The server is shutting down (HTTP 503)."""


class JobFailedError(ServeError):
    """A waited-on job finished in a non-``done`` state."""

    def __init__(self, job: dict):
        super().__init__(
            f"job {job.get('job_id')} finished as {job.get('status')!r}"
            + (f": {job['error']}" if job.get("error") else "")
        )
        self.job = job


_ERROR_TYPES = {
    400: ServeRequestError,
    404: ServeNotFoundError,
    429: ServeQueueFullError,
    503: ServeClosingError,
}


class ServeClient:
    """Talk to ``repro serve`` at ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8") or "{}")
            if response.status >= 400:
                error_type = _ERROR_TYPES.get(response.status, ServeError)
                raise error_type(data.get("error", f"HTTP {response.status}"),
                                 response.status)
            return data
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def submit(self, payload: dict) -> dict:
        """Submit a job; returns its snapshot (``job_id`` keyed)."""
        return self._request("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def runs(self, *, scenario: str | None = None, status: str | None = None,
             kind: str | None = None, tag: str | None = None,
             limit: int = 50) -> list[dict]:
        query = "&".join(
            f"{key}={value}"
            for key, value in (("scenario", scenario), ("status", status),
                               ("kind", kind), ("tag", tag), ("limit", limit))
            if value is not None
        )
        return self._request("GET", f"/runs?{query}")["runs"]

    def run(self, run_id: str) -> dict:
        """One run row, with its episode records attached."""
        return self._request("GET", f"/runs/{run_id}")

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # -- conveniences --------------------------------------------------
    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll: float = 0.05, raise_on_failure: bool = True) -> dict:
        """Poll until a job reaches a terminal state; returns its snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "error", "cancelled"):
                if job["status"] != "done" and raise_on_failure:
                    raise JobFailedError(job)
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']!r} after {timeout}s"
                )
            time.sleep(poll)
