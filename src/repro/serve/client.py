"""Blocking JSON client for a running ``repro serve`` instance.

Built on :mod:`http.client` (stdlib only, one connection per request —
the server closes connections after each response). This is what the
``repro submit`` / ``repro runs`` CLI verbs and the test-suite speak;
anything else that talks HTTP+JSON works just as well (``curl`` included).

Error mapping mirrors the server's contract:

* 400 -> :class:`ServeRequestError` (malformed job payload)
* 404 -> :class:`ServeNotFoundError`
* 429 -> :class:`ServeQueueFullError` (backpressure; retry later)
* 503 -> :class:`ServeClosingError` (server draining for shutdown)

Transient failures — 429 backpressure and connection-level errors
(refused/reset/broken pipe/timeout, e.g. the server restarting) — are
retried with exponential backoff and jitter up to ``retries`` times
before surfacing; 400/404/503 are never retried. :meth:`ServeClient.wait`
polls with a backoff too, so long jobs do not hammer the server.
"""

from __future__ import annotations

import http.client
import json
import random
import time

__all__ = [
    "ServeClient",
    "ServeError",
    "ServeRequestError",
    "ServeNotFoundError",
    "ServeQueueFullError",
    "ServeClosingError",
    "JobFailedError",
]


class ServeError(RuntimeError):
    """Base class for client-visible service errors."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


class ServeRequestError(ServeError):
    """The server rejected the payload (HTTP 400)."""


class ServeNotFoundError(ServeError):
    """Unknown job/run/endpoint (HTTP 404)."""


class ServeQueueFullError(ServeError):
    """The job queue is full (HTTP 429); back off and retry."""


class ServeClosingError(ServeError):
    """The server is shutting down (HTTP 503)."""


class JobFailedError(ServeError):
    """A waited-on job finished in a non-``done`` state."""

    def __init__(self, job: dict):
        super().__init__(
            f"job {job.get('job_id')} finished as {job.get('status')!r}"
            + (f": {job['error']}" if job.get("error") else "")
        )
        self.job = job


_ERROR_TYPES = {
    400: ServeRequestError,
    404: ServeNotFoundError,
    429: ServeQueueFullError,
    503: ServeClosingError,
}


#: connection-level failures worth retrying (server restarting, socket
#: cut mid-response); anything protocol-level surfaces immediately
_TRANSIENT_ERRORS = (ConnectionRefusedError, ConnectionResetError,
                     BrokenPipeError, TimeoutError)


class ServeClient:
    """Talk to ``repro serve`` at ``host:port``.

    ``retries``/``backoff``/``backoff_cap`` govern the transient-error
    retry loop: attempt ``n`` sleeps ``min(cap, backoff * 2**n)`` plus
    up to 25% jitter. ``retries=0`` disables retrying entirely.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 timeout: float = 30.0, retries: int = 3,
                 backoff: float = 0.2, backoff_cap: float = 5.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap

    # -- transport -----------------------------------------------------
    def _request_once(self, method: str, path: str,
                      payload: dict | None = None) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8") or "{}")
            if response.status >= 400:
                error_type = _ERROR_TYPES.get(response.status, ServeError)
                raise error_type(data.get("error", f"HTTP {response.status}"),
                                 response.status)
            return data
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 payload: dict | None = None) -> dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except (ServeQueueFullError, *_TRANSIENT_ERRORS):
                if attempt >= self.retries:
                    raise
                delay = min(self.backoff_cap, self.backoff * 2 ** attempt)
                time.sleep(delay * (1.0 + random.random() * 0.25))
                attempt += 1

    # -- endpoints -----------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health")

    def submit(self, payload: dict) -> dict:
        """Submit a job; returns its snapshot (``job_id`` keyed)."""
        return self._request("POST", "/jobs", payload)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def runs(self, *, scenario: str | None = None, status: str | None = None,
             kind: str | None = None, tag: str | None = None,
             limit: int = 50) -> list[dict]:
        query = "&".join(
            f"{key}={value}"
            for key, value in (("scenario", scenario), ("status", status),
                               ("kind", kind), ("tag", tag), ("limit", limit))
            if value is not None
        )
        return self._request("GET", f"/runs?{query}")["runs"]

    def run(self, run_id: str) -> dict:
        """One run row, with its episode records attached."""
        return self._request("GET", f"/runs/{run_id}")

    def promote(self, run_id: str, baseline, *, estimator: str = "DR",
                min_margin: float = 0.0) -> dict:
        """Judge a checkpoint promotion; returns the verdict record."""
        return self._request("POST", "/promote", {
            "run_id": run_id, "baseline": baseline,
            "estimator": estimator, "min_margin": min_margin,
        })

    def promotions(self, *, candidate: str | None = None,
                   limit: int = 50) -> list[dict]:
        query = "&".join(
            f"{key}={value}"
            for key, value in (("candidate", candidate), ("limit", limit))
            if value is not None
        )
        return self._request("GET", f"/promotions?{query}")["promotions"]

    def shutdown(self) -> dict:
        return self._request("POST", "/shutdown")

    # -- conveniences --------------------------------------------------
    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll: float = 0.05, max_poll: float = 1.0,
             raise_on_failure: bool = True) -> dict:
        """Poll until a job reaches a terminal state; returns its snapshot.

        The poll interval starts at ``poll`` and grows 1.5x per probe
        up to ``max_poll`` — snappy for short jobs, gentle on the
        server for long ones. ``interrupted`` (a server crash marked by
        the reconciling restart) counts as terminal.
        """
        deadline = time.monotonic() + timeout
        interval = poll
        while True:
            job = self.job(job_id)
            if job["status"] in ("done", "error", "cancelled", "interrupted"):
                if job["status"] != "done" and raise_on_failure:
                    raise JobFailedError(job)
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']!r} after {timeout}s"
                )
            time.sleep(interval)
            interval = min(max_poll, interval * 1.5)
