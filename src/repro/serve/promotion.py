"""CI-enforceable checkpoint promotion from offline OPE reports.

A candidate defender checkpoint is promoted only when the *lower*
bootstrap confidence bound of its off-policy value estimate clears the
baseline's lower bound by ``min_margin`` — comparing pessimistic
bounds, not point estimates, so a high-variance log cannot promote on
noise. The inputs are ``ope-report`` runs in the
:class:`~repro.serve.store.RunStore` (their ``metrics`` column holds a
:class:`~repro.validation.suite.OPESuiteReport` dict, written by
``repro ope report``), and every decision is appended to the store's
``promotions`` table so the gate's history is queryable alongside the
runs it judged.
"""

from __future__ import annotations

from repro.serve.store import RunStore

__all__ = ["PROMOTION_VERDICTS", "PromotionError", "promote_checkpoint",
           "report_lower_bound"]

PROMOTION_VERDICTS = ("promote", "hold")


class PromotionError(ValueError):
    """A promotion request that cannot be judged (not a vague 'hold')."""


def report_lower_bound(store: RunStore, run_id: str, estimator: str) -> float:
    """The CI lower bound one ``ope-report`` run assigns ``estimator``."""
    run = store.get_run(run_id)
    if run is None:
        raise PromotionError(f"unknown run {run_id!r}")
    if run["kind"] != "ope-report":
        raise PromotionError(
            f"run {run_id!r} is a {run['kind']!r} run, not an ope-report"
        )
    if run["status"] != "done" or not run.get("metrics"):
        raise PromotionError(
            f"run {run_id!r} has status {run['status']!r} and no usable "
            "report; only completed ope-report runs can be judged"
        )
    estimates = run["metrics"].get("estimates", {})
    if estimator not in estimates:
        known = ", ".join(sorted(estimates)) or "none"
        raise PromotionError(
            f"run {run_id!r} has no {estimator!r} estimate (has: {known})"
        )
    return float(estimates[estimator]["lower"])


def promote_checkpoint(store: RunStore, run_id: str,
                       baseline: str | float, *, estimator: str = "DR",
                       min_margin: float = 0.0) -> dict:
    """Judge candidate run ``run_id`` against ``baseline``; record it.

    ``baseline`` is either another ``ope-report`` run id (its lower
    bound is looked up with the same ``estimator``) or a number — a
    fixed value floor, which is how CI pins an absolute bar without a
    baseline run in the store. Returns the decision as a dict:
    verdict (``promote``/``hold``), both lower bounds, the margin, and
    the stored ``promotion_id``.
    """
    candidate_lower = report_lower_bound(store, run_id, estimator)
    if isinstance(baseline, str):
        baseline_run_id = baseline
        baseline_lower = report_lower_bound(store, baseline, estimator)
    else:
        baseline_run_id = None
        baseline_lower = float(baseline)
    verdict = ("promote" if candidate_lower >= baseline_lower + min_margin
               else "hold")
    decision = {
        "candidate_run_id": run_id,
        "baseline_run_id": baseline_run_id,
        "estimator": estimator,
        "candidate_lower": candidate_lower,
        "baseline_lower": baseline_lower,
        "min_margin": float(min_margin),
        "verdict": verdict,
    }
    decision["promotion_id"] = store.record_promotion(
        candidate_run_id=run_id, baseline_run_id=baseline_run_id,
        estimator=estimator, candidate_lower=candidate_lower,
        baseline_lower=baseline_lower, min_margin=min_margin,
        verdict=verdict,
        detail={"baseline_kind": "run" if baseline_run_id else "value"},
    )
    return decision
