"""The long-lived evaluation service behind ``repro serve``.

:class:`EvalService` is the job engine: submissions land in a bounded
:class:`asyncio.Queue` (overflow is *rejected*, not buffered — the
HTTP layer turns :class:`QueueFullError` into a 429), a fixed group of
worker tasks drains it, and each job executes on a thread-pool executor
so the event loop stays responsive while episodes run. All jobs share
one :class:`~repro.sim.vec_backends.VecPool`: worker-pool backends are
acquired from it under the service's pool lock, so a burst of queued
jobs re-lanes one persistent set of worker processes instead of
spawning a pool per job.

Every job is recorded in the :class:`~repro.serve.store.RunStore` from
the moment it is accepted: the run row is created at submit time
(status ``queued``), episodes append as they complete (progress is
readable mid-run), and the terminal status (``done`` / ``error`` /
``cancelled``) lands with aggregate metrics and wall time. Results are
produced by the same :mod:`repro.eval.runner` functions the one-shot
CLI uses, so a served evaluation is bit-identical to ``repro
simulate``/``repro evaluate`` for the same scenario, seed, and policy.

Graceful shutdown (:meth:`EvalService.shutdown`) stops accepting
submissions, cancels still-queued jobs, drains the jobs already
in flight, then closes the pool and the store — no orphaned worker
processes or shared-memory segments survive the service.

**Fault tolerance.** Pooled jobs run under the vector backends' worker
supervision (deterministic in-place recovery; see
:mod:`repro.sim.vec_supervisor`), so most worker deaths never surface —
they are counted per job and in the service-wide totals
(:meth:`EvalService.fault_summary`, exposed on ``/healthz``). A job
that still dies to a :class:`~repro.sim.vec_backends.WorkerDiedError`
is retried from scratch with exponential backoff and jitter, up to the
job's ``retries`` (or the service's ``job_retries``) budget; retried
episodes simply re-record over the aborted attempt's rows. At startup
the store is reconciled: runs a crashed server stranded ``running``
become ``interrupted`` and — with ``requeue_interrupted`` — are
resubmitted from their recorded request payloads.
"""

from __future__ import annotations

import asyncio
import dataclasses
import random
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor

from repro.serve.jobs import (
    JobCancelled,
    JobError,
    JobRequest,
    build_policy,
    parse_job,
)
from repro.serve.store import RunStore, new_run_id

__all__ = ["EvalService", "Job", "QueueFullError", "ServiceClosedError"]


class QueueFullError(RuntimeError):
    """The job queue is at capacity; the submission was rejected (429)."""


class ServiceClosedError(RuntimeError):
    """The service is shutting down; no new submissions (503)."""


class Job:
    """One accepted job: request, live status, and progress counters."""

    __slots__ = ("id", "request", "status", "created_at", "started_at",
                 "finished_at", "error", "metrics", "completed", "total",
                 "cancel_event", "worker_faults", "retries_used")

    def __init__(self, job_id: str, request: JobRequest, total: int):
        self.id = job_id
        self.request = request
        self.status = "queued"
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.error: str | None = None
        self.metrics: dict | None = None
        self.completed = 0
        self.total = total
        self.cancel_event = threading.Event()
        self.worker_faults = 0   # worker deaths this job rode through
        self.retries_used = 0    # whole-job re-runs after fatal faults

    def snapshot(self) -> dict:
        """A JSON-compatible view for the HTTP API."""
        return {
            "job_id": self.id,
            "kind": self.request.kind,
            "scenario": self.request.scenario_label,
            "policy": self.request.policy,
            "seed": self.request.seed,
            "status": self.status,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": {"completed": self.completed, "total": self.total},
            "faults": {"worker_faults": self.worker_faults,
                       "retries_used": self.retries_used},
            "metrics": self.metrics,
            "error": self.error,
            "tags": list(self.request.tags),
        }


def _aggregate_dict(aggregate) -> dict:
    return dataclasses.asdict(aggregate)


class EvalService:
    """Asyncio job service over a shared worker pool and a run store.

    Parameters
    ----------
    store:
        A :class:`RunStore` or a path to create one at.
    default_backend:
        Backend for jobs that do not name one (``sync``, ``process``,
        ``shm``, or ``auto``).
    max_queue:
        Queue depth bound; submissions beyond it raise
        :class:`QueueFullError` (backpressure, not buffering).
    workers:
        Concurrent job executors. The default of 1 serializes episode
        work through the shared pool — parallelism comes from the
        pool's worker *processes*, and exactly one pool serves any
        burst of same-geometry jobs. Raising it lets sync-backend jobs
        overlap; pooled jobs still serialize on the pool lock.
    pool:
        A shared :class:`~repro.sim.vec_backends.VecPool`; the service
        creates (and owns) one when omitted.
    job_retries:
        Whole-job re-runs granted when a job dies to a worker fault
        (a job's own ``retries`` field overrides this).
    retry_backoff:
        Base delay before the first retry; doubles per attempt
        (capped at 5s) with up to 25% jitter.
    step_timeout:
        Default per-step watchdog for pooled jobs, in seconds (a job's
        ``step_timeout`` overrides it; ``None`` disables).
    supervise:
        Arm worker supervision on pooled jobs (on by default; turning
        it off restores fail-fast workers, leaving only job retries).
    requeue_interrupted:
        At startup, resubmit runs a crashed server stranded
        ``running``, from their recorded request payloads.
    """

    def __init__(self, store: RunStore | str, *,
                 default_backend: str = "sync", max_queue: int = 64,
                 workers: int = 1, num_workers: int | None = None,
                 pool=None, job_retries: int = 2, retry_backoff: float = 0.1,
                 step_timeout: float | None = None, supervise: bool = True,
                 requeue_interrupted: bool = False):
        from repro.sim.vec_backends import VecPool

        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if job_retries < 0:
            raise ValueError("job_retries must be >= 0")
        if default_backend not in ("sync", "batched", "process", "shm", "auto"):
            raise ValueError(f"unknown backend {default_backend!r}")
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.default_backend = default_backend
        self.max_queue = max_queue
        self.num_workers = num_workers
        self._owns_pool = pool is None
        self.pool = VecPool() if pool is None else pool
        self._pool_lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._queue: asyncio.Queue | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._n_workers = workers
        self._closing = False
        self._closed = False
        self.job_retries = job_retries
        self.retry_backoff = retry_backoff
        self.step_timeout = step_timeout
        self.supervise = supervise
        self.requeue_interrupted = requeue_interrupted
        self._fault_lock = threading.Lock()
        self._fault_totals = {"worker_faults": 0, "job_retries": 0,
                              "jobs_interrupted": 0, "jobs_requeued": 0}

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Create the queue, reconcile the store, spawn the workers."""
        if self._queue is not None:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self._n_workers)
        ]
        stranded = self.store.reconcile_interrupted()
        if stranded:
            with self._fault_lock:
                self._fault_totals["jobs_interrupted"] += len(stranded)
        if self.requeue_interrupted:
            for run in stranded:
                payload = dict(run.get("detail") or {})
                if not payload:
                    continue
                payload["tags"] = list(payload.get("tags", [])) + [
                    f"requeued:{run['run_id']}"
                ]
                try:
                    self.submit(payload)
                except Exception:
                    continue  # malformed legacy payload or full queue
                with self._fault_lock:
                    self._fault_totals["jobs_requeued"] += 1

    async def shutdown(self) -> None:
        """Drain in-flight jobs, cancel queued ones, release resources."""
        if self._closed:
            return
        self._closing = True
        if self._queue is not None:
            # queued jobs are cancelled (their worker skips them);
            # running jobs finish — that is the drain
            for job in self._jobs.values():
                if job.status == "queued":
                    job.cancel_event.set()
            for _ in self._worker_tasks:
                await self._queue.put(None)
            await asyncio.gather(*self._worker_tasks)
        self._closed = True
        self._executor.shutdown(wait=True)
        if self._owns_pool:
            self.pool.close()
        self.store.close()

    @property
    def closing(self) -> bool:
        return self._closing

    def fault_summary(self) -> dict:
        """Service-lifetime fault counters (the ``/healthz`` payload)."""
        with self._fault_lock:
            return dict(self._fault_totals)

    def _note_faults(self, job: Job, count: int) -> None:
        if count <= 0:
            return
        job.worker_faults += count
        with self._fault_lock:
            self._fault_totals["worker_faults"] += count

    # -- submission / queries -----------------------------------------
    def queue_depth(self) -> int:
        return 0 if self._queue is None else self._queue.qsize()

    def submit(self, payload: dict) -> Job:
        """Validate, persist, and enqueue a job (event-loop thread only).

        Raises :class:`~repro.serve.jobs.JobError` on a malformed
        payload, :class:`QueueFullError` when the queue is at capacity,
        and :class:`ServiceClosedError` during shutdown.
        """
        import repro

        if self._closing or self._queue is None:
            raise ServiceClosedError("service is not accepting jobs")
        request = parse_job(payload)
        total = (request.cem_iterations if request.kind == "selfplay"
                 else request.episodes)
        job = Job(new_run_id(), request, total)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            raise QueueFullError(
                f"job queue is full ({self.max_queue} pending)"
            ) from None
        self._jobs[job.id] = job
        self.store.create_run(
            request.kind,
            run_id=job.id,
            scenario_id=request.scenario_label,
            spec=request.spec,
            policy=request.policy,
            seed=request.seed,
            episodes=total,
            tags=request.tags,
            detail=request.to_payload(),
            code_version=repro.__version__,
        )
        return job

    def job(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.created_at)

    def cancel(self, job_id: str) -> Job | None:
        """Flag a job for cancellation (queued or running)."""
        job = self._jobs.get(job_id)
        if job is not None and job.status in ("queued", "running"):
            job.cancel_event.set()
        return job

    def promote(self, payload: dict) -> dict:
        """Judge a checkpoint promotion and append the verdict row.

        Synchronous — two store reads and one insert, no rollouts — so
        it bypasses the job queue. The payload mirrors
        :func:`~repro.serve.promotion.promote_checkpoint`: ``run_id``,
        ``baseline`` (an ope-report run id or a number), optional
        ``estimator`` and ``min_margin``.
        """
        from repro.serve.promotion import PromotionError, promote_checkpoint

        try:
            run_id = payload["run_id"]
            baseline = payload["baseline"]
        except (KeyError, TypeError):
            raise JobError(
                "promotion payload needs 'run_id' and 'baseline'"
            ) from None
        if not isinstance(baseline, (str, int, float)) \
                or isinstance(baseline, bool):
            raise JobError("'baseline' must be a run id or a number")
        estimator = payload.get("estimator", "DR")
        min_margin = payload.get("min_margin", 0.0)
        if not isinstance(min_margin, (int, float)) \
                or isinstance(min_margin, bool):
            raise JobError("'min_margin' must be a number")
        try:
            return promote_checkpoint(
                self.store, run_id,
                baseline if isinstance(baseline, str) else float(baseline),
                estimator=str(estimator), min_margin=float(min_margin),
            )
        except PromotionError as exc:
            raise JobError(str(exc)) from None

    # -- worker loop ---------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job is None:
                return
            if job.cancel_event.is_set():
                job.status = "cancelled"
                job.finished_at = time.time()
                self.store.cancel_run(job.id)
                continue
            await loop.run_in_executor(self._executor, self._run_job, job)

    # -- synchronous execution (executor threads) ----------------------
    def _run_job(self, job: Job) -> None:
        job.status = "running"
        job.started_at = time.time()
        self.store.mark_running(job.id)
        try:
            metrics = self._execute_with_retries(job)
        except JobCancelled:
            job.status = "cancelled"
            self.store.cancel_run(job.id)
        except Exception as exc:
            job.status = "error"
            job.error = f"{type(exc).__name__}: {exc}"
            traceback.print_exc()
            self.store.fail_run(job.id, job.error,
                                faults=job.worker_faults)
        else:
            job.status = "done"
            job.metrics = metrics
            self.store.finish_run(job.id, metrics,
                                  faults=job.worker_faults)
        finally:
            job.finished_at = time.time()

    def _execute_with_retries(self, job: Job) -> dict:
        """Run a job, re-running it from scratch on fatal worker faults.

        Supervision recovers most worker deaths in place (they only
        show up in the fault counters); this loop is the backstop for
        the unrecoverable ones — each attempt restarts the episode
        sequence from episode 0, which is safe because episode records
        are keyed writes and the final metrics replace the aborted
        attempt's entirely.
        """
        from repro.sim.vec_backends import WorkerDiedError

        budget = (job.request.retries if job.request.retries is not None
                  else self.job_retries)
        attempt = 0
        while True:
            try:
                if job.request.kind == "selfplay":
                    return self._execute_selfplay(job)
                return self._execute_evaluation(job)
            except WorkerDiedError:
                if job.request.kind == "selfplay":
                    # pooled evaluations count faults at the venv; the
                    # selfplay fitness pool is internal, so count here
                    self._note_faults(job, 1)
                if job.cancel_event.is_set():
                    raise JobCancelled(job.id) from None
                if attempt >= budget:
                    raise
                attempt += 1
                job.retries_used = attempt
                job.completed = 0  # the re-run restarts the count
                with self._fault_lock:
                    self._fault_totals["job_retries"] += 1
                delay = min(5.0, self.retry_backoff * 2 ** (attempt - 1))
                time.sleep(delay * (1.0 + random.random() * 0.25))

    def _resolve_run(self, request: JobRequest):
        """(spec, config) with ``max_steps`` folded into the horizon,
        exactly as the CLI's ``_resolve_config`` does."""
        spec = request.resolve_spec()
        config = spec.build_config()
        if request.max_steps:
            config = config.with_tmax(min(config.tmax, request.max_steps))
        return spec, config

    def _on_episode(self, job: Job):
        def on_episode(ep: int, metrics) -> None:
            self.store.record_episode(
                job.id, ep, dataclasses.asdict(metrics),
                seed=metrics.seed, wall_time=metrics.wall_time,
            )
            job.completed += 1
            if job.cancel_event.is_set():
                raise JobCancelled(job.id)

        return on_episode

    def _execute_evaluation(self, job: Job) -> dict:
        import repro
        from repro.eval.runner import evaluate_policy, evaluate_policy_vec
        from repro.sim.vec_backends import normalize_backend

        request = job.request
        spec, config = self._resolve_run(request)
        policy = build_policy(request, config)
        on_episode = self._on_episode(job)

        if request.num_envs == 1:
            env = spec.build_env(config=config, seed=request.seed)
            aggregate, _ = evaluate_policy(
                env, policy, request.episodes, seed=request.seed,
                max_steps=request.max_steps, on_episode=on_episode,
            )
            return _aggregate_dict(aggregate)

        backend = normalize_backend(request.backend or self.default_backend,
                                    request.num_envs, request.num_workers)
        run_spec = spec.with_overrides(horizon=config.tmax)
        if backend == "sync":
            venv = repro.make_vec(run_spec, request.num_envs,
                                  seed=request.seed)
            with venv:
                aggregate, _ = evaluate_policy_vec(
                    venv, policy, request.episodes, seed=request.seed,
                    max_steps=request.max_steps, on_episode=on_episode,
                )
            return _aggregate_dict(aggregate)
        # worker-pool backends share the service's VecPool; the pool
        # lock serializes jobs on it (one burst -> one spawned pool)
        with self._pool_lock:
            venv = self.pool.acquire(
                [run_spec] * request.num_envs, seed=request.seed,
                backend=backend, num_workers=request.num_workers
                or self.num_workers,
            )
            venv.configure_supervision(
                enabled=self.supervise,
                step_timeout=(request.step_timeout
                              if request.step_timeout is not None
                              else self.step_timeout),
            )
            faults_before = venv.fault_stats["faults"]
            try:
                aggregate, _ = evaluate_policy_vec(
                    venv, policy, request.episodes, seed=request.seed,
                    max_steps=request.max_steps, on_episode=on_episode,
                )
            finally:
                # worker deaths supervision absorbed are still faults
                self._note_faults(
                    job, venv.fault_stats["faults"] - faults_before)
                venv.close()  # soft release back to the pool
        return _aggregate_dict(aggregate)

    def _execute_selfplay(self, job: Job) -> dict:
        """CEM attacker best-response search against the job's defender.

        The service's standing form of the adversarial loop: the
        fixed-defender exploitability probe. Each CEM generation is one
        vectorized fan-out; generation records land in the episode
        table, the exploitability estimate in the run metrics.
        """
        import numpy as np

        from repro.adversarial import (
            AttackerParameterSpace,
            CrossEntropySearch,
        )
        from repro.adversarial.best_response import (
            attack_utility,
            make_defender_fitness_vec,
        )
        from repro.eval.runner import evaluate_policy
        from repro.sim.vec_backends import normalize_backend

        request = job.request
        spec, config = self._resolve_run(request)
        defender = build_policy(request, config)

        env = spec.build_env(config=config, seed=request.seed)
        baseline_agg, _ = evaluate_policy(
            env, defender, request.fitness_episodes, seed=request.seed,
            max_steps=request.max_steps,
        )
        baseline_utility = attack_utility(baseline_agg)

        backend = normalize_backend(request.backend or self.default_backend,
                                    request.cem_population,
                                    request.num_workers)
        run_spec = spec.with_overrides(horizon=config.tmax)
        pooled = backend in ("process", "shm")
        base_fitness = make_defender_fitness_vec(
            run_spec, defender, episodes=request.fitness_episodes,
            seed=request.seed, max_steps=request.max_steps, backend=backend,
            num_workers=request.num_workers or self.num_workers,
            pool=self.pool if pooled else None, reuse_pool=False,
        )
        generation = 0

        def fitness(attackers):
            nonlocal generation
            if job.cancel_event.is_set():
                raise JobCancelled(job.id)
            fits = np.asarray(base_fitness(attackers), dtype=float)
            self.store.record_episode(
                job.id, generation,
                {"mean_fitness": float(fits.mean()),
                 "best_fitness": float(fits.max()),
                 "candidates": len(attackers)},
                seed=request.seed,
            )
            generation += 1
            job.completed += 1
            return fits

        search = CrossEntropySearch(
            AttackerParameterSpace(base=config.apt),
            population=request.cem_population, seed=request.seed,
            batch_fitness_fn=fitness,
        )
        if pooled:
            with self._pool_lock:
                result = search.run(iterations=request.cem_iterations)
        else:
            result = search.run(iterations=request.cem_iterations)
        return {
            "baseline_utility": baseline_utility,
            "best_response_utility": result.best_fitness,
            "exploitability": result.best_fitness - baseline_utility,
            "evaluations": result.evaluations,
            "best_attacker": dataclasses.asdict(result.best_config),
        }
