"""Job payloads accepted by the evaluation service.

A job is a JSON object; :func:`parse_job` validates it into a
:class:`JobRequest` before it is queued, so malformed submissions are
rejected at the HTTP boundary (400) instead of failing inside a worker.

Three kinds are served:

* ``evaluate`` / ``simulate`` — run one defender policy for
  ``episodes`` seeded episodes on a scenario (the two names share an
  executor; ``simulate`` mirrors the CLI verb). Metrics are produced by
  the exact :mod:`repro.eval.runner` code paths the one-shot CLI uses,
  so a served evaluation is bit-identical to ``repro simulate`` /
  ``repro evaluate`` for the same scenario, seed, and policy.
* ``selfplay`` — a CEM attacker best-response search against the fixed
  defender; per-generation records land in the episode table and the
  final exploitability estimate in the run metrics.

The scenario is named either by registry id (``{"scenario": "..."}``)
or shipped inline as a ScenarioSpec dict (``{"spec": {...}}`` — the
same JSON form :mod:`repro.scenarios.serialization` uses on the worker
wire), so a client can submit scenarios the server never registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["JobRequest", "JobError", "JobCancelled", "parse_job",
           "build_policy", "JOB_KINDS", "SERVE_POLICIES"]

JOB_KINDS = ("evaluate", "simulate", "selfplay")

#: policies constructible from a payload alone; ``expert``/``acso``
#: additionally need artifact paths (``dbn`` / ``qnet``) on the server's
#: filesystem
SERVE_POLICIES = ("noop", "playbook", "random", "expert", "acso")


class JobError(ValueError):
    """A malformed or unsatisfiable job payload (HTTP 400)."""


class JobCancelled(Exception):
    """Raised inside an executor to abort a cancelled job's episode loop."""


@dataclass
class JobRequest:
    """A validated job, ready for the queue."""

    kind: str = "evaluate"
    scenario: str | None = None
    spec: dict | None = None          # inline ScenarioSpec dict
    policy: str = "playbook"
    episodes: int = 1
    seed: int = 0
    max_steps: int | None = None
    num_envs: int = 1
    backend: str | None = None        # None -> the service default
    num_workers: int | None = None
    tags: list[str] = field(default_factory=list)
    dbn: str | None = None            # DBN tables artifact (expert/acso)
    qnet: str | None = None           # Q-network artifact (acso)
    # fault-tolerance knobs (None -> the service defaults)
    step_timeout: float | None = None  # per-step worker watchdog, seconds
    retries: int | None = None         # re-runs granted after worker faults
    # selfplay knobs
    cem_iterations: int = 2
    cem_population: int = 4
    fitness_episodes: int = 1

    def resolve_spec(self):
        """The :class:`~repro.scenarios.spec.ScenarioSpec` to run."""
        if self.scenario is not None:
            from repro.scenarios import get_scenario

            return get_scenario(self.scenario)
        from repro.scenarios.serialization import spec_from_dict

        return spec_from_dict(self.spec)

    @property
    def scenario_label(self) -> str:
        if self.scenario is not None:
            return self.scenario
        return self.spec.get("scenario_id", "<inline>")

    def to_payload(self) -> dict:
        """The JSON object a client posts (omits default-valued fields)."""
        payload: dict = {"kind": self.kind}
        for key in ("scenario", "spec", "policy", "episodes", "seed",
                    "max_steps", "num_envs", "backend", "num_workers",
                    "tags", "dbn", "qnet", "step_timeout", "retries",
                    "cem_iterations", "cem_population", "fitness_episodes"):
            value = getattr(self, key)
            if value not in (None, [], JobRequest.__dataclass_fields__[key].default):
                payload[key] = value
        return payload


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobError(message)


def parse_job(payload: dict) -> JobRequest:
    """Validate a JSON job payload into a :class:`JobRequest`."""
    _require(isinstance(payload, dict), "job payload must be a JSON object")
    known = set(JobRequest.__dataclass_fields__)
    unknown = set(payload) - known
    _require(not unknown, f"unknown job fields: {sorted(unknown)}")

    request = JobRequest(**payload)
    _require(request.kind in JOB_KINDS,
             f"unknown job kind {request.kind!r}; choose from {JOB_KINDS}")
    _require((request.scenario is None) != (request.spec is None),
             "exactly one of 'scenario' (a registry id) or 'spec' "
             "(an inline ScenarioSpec object) is required")
    if request.scenario is not None:
        _require(isinstance(request.scenario, str) and request.scenario,
                 "'scenario' must be a non-empty string")
    else:
        _require(isinstance(request.spec, dict),
                 "'spec' must be a ScenarioSpec JSON object")
        try:
            request.resolve_spec()
        except Exception as exc:
            raise JobError(f"invalid inline spec: {exc}") from None
    _require(request.policy in SERVE_POLICIES,
             f"unknown policy {request.policy!r}; "
             f"choose from {SERVE_POLICIES}")
    _require(request.policy not in ("expert", "acso") or request.dbn,
             f"policy {request.policy!r} needs a 'dbn' artifact path")
    _require(isinstance(request.episodes, int) and request.episodes >= 1,
             "'episodes' must be a positive integer")
    _require(isinstance(request.seed, int), "'seed' must be an integer")
    _require(request.max_steps is None
             or (isinstance(request.max_steps, int) and request.max_steps >= 1),
             "'max_steps' must be a positive integer")
    _require(isinstance(request.num_envs, int) and request.num_envs >= 1,
             "'num_envs' must be a positive integer")
    if request.backend is not None:
        _require(request.backend in ("sync", "batched", "process", "shm", "auto"),
                 f"unknown backend {request.backend!r}")
    _require(isinstance(request.tags, list)
             and all(isinstance(t, str) for t in request.tags),
             "'tags' must be a list of strings")
    _require(request.step_timeout is None
             or (isinstance(request.step_timeout, (int, float))
                 and request.step_timeout > 0),
             "'step_timeout' must be a positive number of seconds")
    _require(request.retries is None
             or (isinstance(request.retries, int) and request.retries >= 0),
             "'retries' must be a non-negative integer")
    if request.kind == "selfplay":
        for knob in ("cem_iterations", "cem_population", "fitness_episodes"):
            _require(isinstance(getattr(request, knob), int)
                     and getattr(request, knob) >= 1,
                     f"'{knob}' must be a positive integer")
        _require(request.cem_population >= 2,
                 "'cem_population' must be >= 2 (CEM needs an elite set)")
    return request


def build_policy(request: JobRequest, config):
    """Construct the defender policy a job names.

    The same catalogue as the CLI's ``--policy``, minus the CLI's
    fit-tables-on-the-fly fallback: a service job must name its
    artifacts explicitly so every run row is reproducible.
    """
    from repro.defenders import NoopPolicy, PlaybookPolicy, SemiRandomPolicy

    if request.policy == "noop":
        return NoopPolicy()
    if request.policy == "playbook":
        return PlaybookPolicy()
    if request.policy == "random":
        return SemiRandomPolicy(seed=request.seed)
    from repro.dbn import DBNTables
    from repro.defenders import DBNExpertPolicy

    tables = DBNTables.load(request.dbn)
    if request.policy == "expert":
        return DBNExpertPolicy(tables, seed=request.seed)
    from repro.defenders.acso import ACSOPolicy
    from repro.rl import AttentionQNetwork, QNetConfig

    qnet = AttentionQNetwork(QNetConfig(), seed=request.seed)
    if request.qnet:
        from repro.nn import load_state

        load_state(qnet, request.qnet)
    return ACSOPolicy(qnet, tables)
