"""``repro serve`` — the long-lived evaluation service.

Turns the one-shot CLI reproduction into a standing service: jobs
(evaluation, simulation, self-play exploitability probes) arrive over a
local HTTP/JSON API, fan out over one shared persistent
:class:`~repro.sim.vec_backends.VecPool`, and every run is recorded in
a SQLite-backed :class:`~repro.serve.store.RunStore` that outlives the
process. Layers:

* :mod:`repro.serve.store` — the run registry (WAL, schema-versioned,
  append-only ``runs``/``episodes`` tables);
* :mod:`repro.serve.jobs` — job payload validation and policy lookup;
* :mod:`repro.serve.service` — the asyncio job engine (bounded queue
  with 429 backpressure, worker-task group, cancellation, graceful
  drain);
* :mod:`repro.serve.http` — the hand-rolled HTTP/JSON listener
  (stdlib asyncio only);
* :mod:`repro.serve.client` — the blocking client behind
  ``repro submit`` and ``repro runs``.

Start a server with ``repro serve``; drive it with ``repro submit`` /
``repro runs list`` / ``repro runs show`` or any HTTP client.
"""

from repro.serve.client import (
    JobFailedError,
    ServeClient,
    ServeClosingError,
    ServeError,
    ServeNotFoundError,
    ServeQueueFullError,
    ServeRequestError,
)
from repro.serve.http import ServeServer
from repro.serve.jobs import JobCancelled, JobError, JobRequest, parse_job
from repro.serve.promotion import (
    PROMOTION_VERDICTS,
    PromotionError,
    promote_checkpoint,
)
from repro.serve.service import EvalService, Job, QueueFullError, ServiceClosedError
from repro.serve.store import RunStore, SCHEMA_VERSION, new_run_id

__all__ = [
    "EvalService",
    "PROMOTION_VERDICTS",
    "PromotionError",
    "promote_checkpoint",
    "Job",
    "JobCancelled",
    "JobError",
    "JobFailedError",
    "JobRequest",
    "QueueFullError",
    "RunStore",
    "SCHEMA_VERSION",
    "ServeClient",
    "ServeClosingError",
    "ServeError",
    "ServeNotFoundError",
    "ServeQueueFullError",
    "ServeRequestError",
    "ServeServer",
    "ServiceClosedError",
    "new_run_id",
    "parse_job",
]
