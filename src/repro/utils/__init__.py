"""Shared utilities: seeded randomness, statistics, and episode logging."""

from repro.utils.rng import RngFactory, ensure_rng
from repro.utils.stats import (
    RunningStat,
    discounted_return,
    kl_divergence,
    mean_stderr,
)

__all__ = [
    "RngFactory",
    "ensure_rng",
    "RunningStat",
    "discounted_return",
    "kl_divergence",
    "mean_stderr",
]
