"""Small statistics helpers used by the evaluation harness and the DBN."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["discounted_return", "mean_stderr", "kl_divergence", "RunningStat"]


def discounted_return(rewards, gamma: float) -> float:
    """Discounted sum of a reward sequence: sum_t gamma^t r_t."""
    total = 0.0
    for r in reversed(list(rewards)):
        total = r + gamma * total
    return total


def mean_stderr(values) -> tuple[float, float]:
    """Mean and one standard error of the mean (paper reporting format)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0, 0.0
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(arr.std(ddof=1) / math.sqrt(arr.size))


def kl_divergence(p, q, eps: float = 1e-12) -> float:
    """KL(p || q) between two discrete distributions, with clamping."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    p = np.clip(p, eps, None)
    q = np.clip(q, eps, None)
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))


@dataclass
class RunningStat:
    """Streaming mean/variance (Welford) for per-step metrics."""

    count: int = 0
    _mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)

    def push(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)
