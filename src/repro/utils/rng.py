"""Seeded random number generation.

Every stochastic component in the simulator owns a dedicated
:class:`numpy.random.Generator` spawned from a single root seed, so that
episodes are reproducible and perturbing one module (e.g. the attacker)
does not change the random stream of another (e.g. the IDS).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngFactory", "ensure_rng"]


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Return a Generator from a seed, an existing generator, or None."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


class RngFactory:
    """Deterministically spawn named child generators from a root seed.

    The same (seed, name) pair always yields an identical stream,
    independent of the order in which other children are requested.
    """

    def __init__(self, seed: int | None = None):
        self._seed_seq = np.random.SeedSequence(seed)
        self.seed = self._seed_seq.entropy

    def child(self, name: str) -> np.random.Generator:
        """Spawn a generator whose stream depends only on (seed, name)."""
        digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
        key = [int(x) for x in digest]
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self._seed_seq.entropy, spawn_key=key)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngFactory(seed={self.seed})"
