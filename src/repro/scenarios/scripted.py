"""Deterministic scripted attacker for registry scenarios.

:class:`~repro.attacker.scripted.ScriptedAttacker` replays a schedule
that hard-codes node ids, but the engine picks the beachhead node
randomly at reset — so a registry scenario cannot write the script
ahead of time. :class:`BeachheadRushAttacker` closes the gap: on its
first action of each episode it reads the beachhead from the attacker's
own view (the APT knows which node it controls) and builds the
:func:`~repro.attacker.scripted.beachhead_rush` schedule from it.
"""

from __future__ import annotations

import numpy as np

from repro.attacker.scripted import ScriptedAttacker, beachhead_rush
from repro.sim.apt_actions import APTActionRequest, APTView

__all__ = ["BeachheadRushAttacker"]


class BeachheadRushAttacker:
    """Escalate on the episode's actual beachhead, then rush the PLCs.

    ``n_plcs`` caps how many PLCs are attacked (``None`` = all);
    ``disrupt`` selects disruption vs firmware-flash-and-destroy.
    """

    def __init__(self, n_plcs: int | None = None, disrupt: bool = True,
                 start: int = 1, spacing: int = 4):
        self.n_plcs = n_plcs
        self.disrupt = disrupt
        self.start = start
        self.spacing = spacing
        self._inner: ScriptedAttacker | None = None

    @property
    def phase_name(self) -> str:
        if self._inner is None:
            return "script-pending"
        return self._inner.phase_name

    def reset(self, rng) -> None:
        self._inner = None

    def act(self, view: APTView) -> list[APTActionRequest]:
        if self._inner is None:
            from repro.net.nodes import Condition

            compromised = np.flatnonzero(
                view.state.conditions[:, Condition.COMPROMISED]
            )
            if compromised.size == 0:
                return []  # evicted before the script was built
            beachhead = int(compromised[0])
            n = view.topology.n_plcs if self.n_plcs is None else self.n_plcs
            script = beachhead_rush(
                beachhead,
                target_plcs=list(range(min(n, view.topology.n_plcs))),
                start=view.t + self.start,
                spacing=self.spacing,
                disrupt=self.disrupt,
            )
            self._inner = ScriptedAttacker(script)
        return self._inner.act(view)
