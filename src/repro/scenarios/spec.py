"""Frozen scenario specifications.

A :class:`ScenarioSpec` names everything needed to reconstruct an
experiment environment: network preset, attacker profile and
qualitative (objective, vector) pair, reward variant, horizon, and the
Fig 6 stealth knob. Specs are immutable and hashable, so a scenario id
is a complete, reproducible description of an environment — the same
role RLlib's registered env creators and OBP's named datasets play in
their pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import RewardConfig, SimConfig, paper_network, small_network, tiny_network

__all__ = [
    "ScenarioSpec",
    "NETWORK_PRESETS",
    "REWARD_VARIANTS",
    "ATTACKER_KINDS",
    "ATTACKER_PROFILES",
]

#: network preset name -> SimConfig constructor
NETWORK_PRESETS = {
    "tiny": tiny_network,
    "small": small_network,
    "paper": paper_network,
}

#: named reward parameterisations (eqs 1-4 with different trade-offs):
#: ``paper`` is the published objective; ``cost_sensitive`` triples the
#: IT-availability weight (defenders that over-respond score worse);
#: ``availability`` doubles the process-outage penalties (PLC uptime
#: dominates IT cost).
REWARD_VARIANTS: dict[str, RewardConfig] = {
    "paper": RewardConfig(),
    "cost_sensitive": RewardConfig(lambda_it=0.3),
    "availability": RewardConfig(disrupted_penalty=0.1, destroyed_penalty=0.2),
}

#: attacker construction strategies
ATTACKER_KINDS = ("fsm", "scripted")

#: quantitative FSM profiles: ``apt1`` keeps the preset's thresholds
#: (the nominal Section 3.2 attacker), ``apt2`` applies the aggressive
#: Section 5 overrides (lateral threshold 1, PLC thresholds 5/10).
ATTACKER_PROFILES = ("apt1", "apt2")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, reproducible experiment configuration.

    ``objective``/``vector`` fix the FSM attacker's qualitative pair
    (one of the four Fig 8 configurations); leaving both ``None`` draws
    the pair uniformly at each episode reset, the paper's training
    regime. ``horizon`` overrides the preset's ``tmax``;
    ``cleanup_effectiveness`` overrides the Fig 6 stealth knob.
    """

    scenario_id: str
    network: str = "paper"
    attacker: str = "fsm"
    profile: str = "apt1"
    objective: str | None = None
    vector: str | None = None
    reward_variant: str = "paper"
    horizon: int | None = None
    cleanup_effectiveness: float | None = None
    description: str = ""
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.scenario_id or not isinstance(self.scenario_id, str):
            raise ValueError("scenario_id must be a non-empty string")
        if self.network not in NETWORK_PRESETS:
            raise ValueError(
                f"unknown network preset {self.network!r}; "
                f"choose from {sorted(NETWORK_PRESETS)}"
            )
        if self.attacker not in ATTACKER_KINDS:
            raise ValueError(
                f"unknown attacker kind {self.attacker!r}; "
                f"choose from {ATTACKER_KINDS}"
            )
        if self.profile not in ATTACKER_PROFILES:
            raise ValueError(
                f"unknown attacker profile {self.profile!r}; "
                f"choose from {ATTACKER_PROFILES}"
            )
        if (self.objective is None) != (self.vector is None):
            raise ValueError(
                "objective and vector must be fixed together or both "
                "left None (sampled each reset)"
            )
        if self.objective is not None and self.objective not in ("disrupt", "destroy"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.vector is not None and self.vector not in ("opc", "hmi"):
            raise ValueError(f"unknown vector {self.vector!r}")
        if self.reward_variant not in REWARD_VARIANTS:
            raise ValueError(
                f"unknown reward variant {self.reward_variant!r}; "
                f"choose from {sorted(REWARD_VARIANTS)}"
            )
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.cleanup_effectiveness is not None and not (
            0.0 <= self.cleanup_effectiveness <= 1.0
        ):
            raise ValueError("cleanup_effectiveness must be in [0, 1]")
        object.__setattr__(self, "tags", tuple(self.tags))

    # ------------------------------------------------------------------
    @property
    def sample_qualitative(self) -> bool:
        """Whether the FSM (objective, vector) pair is drawn per episode."""
        return self.objective is None

    def build_config(self) -> SimConfig:
        """Materialise the :class:`SimConfig` this spec describes."""
        config = NETWORK_PRESETS[self.network]()
        apt = config.apt
        if self.profile == "apt2":
            apt = replace(
                apt,
                lateral_threshold=1,
                hmi_threshold=1,
                plc_threshold_destroy=min(5, apt.plc_threshold_destroy),
                plc_threshold_disrupt=min(10, apt.plc_threshold_disrupt),
            )
        if self.objective is not None:
            apt = replace(apt, objective=self.objective, vector=self.vector)
        if self.cleanup_effectiveness is not None:
            apt = replace(apt, cleanup_effectiveness=self.cleanup_effectiveness)
        config = replace(
            config, apt=apt, reward=REWARD_VARIANTS[self.reward_variant]
        )
        if self.horizon is not None:
            config = config.with_tmax(self.horizon)
        return config

    def build_attacker(self, config: SimConfig):
        """Construct the attacker policy this spec names."""
        if self.attacker == "scripted":
            from repro.scenarios.scripted import BeachheadRushAttacker

            return BeachheadRushAttacker()
        from repro.attacker import FSMAttacker

        return FSMAttacker(config.apt, sample_qualitative=self.sample_qualitative)

    def build_env(self, seed: int | None = None, record_truth: bool = True,
                  config: SimConfig | None = None):
        """Construct a ready :class:`~repro.sim.env.InasimEnv`.

        ``config`` overrides :meth:`build_config` when the caller has
        already derived one (e.g. the CLI capping ``tmax``).
        """
        from repro.sim.env import InasimEnv

        if config is None:
            config = self.build_config()
        env = InasimEnv(config, self.build_attacker(config), seed=seed,
                        record_truth=record_truth)
        env.scenario = self
        return env

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """A copy with ``overrides`` applied (keeps the frozen contract)."""
        return replace(self, **overrides)
