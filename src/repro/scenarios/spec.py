"""Frozen scenario specifications.

A :class:`ScenarioSpec` names everything needed to reconstruct an
experiment environment: network preset, attacker profile and
qualitative (objective, vector) pair, reward variant, horizon, and the
Fig 6 stealth knob. Specs are immutable and hashable, so a scenario id
is a complete, reproducible description of an environment — the same
role RLlib's registered env creators and OBP's named datasets play in
their pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.config import (
    APTConfig,
    RewardConfig,
    SimConfig,
    paper_network,
    small_network,
    tiny_network,
)

__all__ = [
    "ScenarioSpec",
    "NETWORK_PRESETS",
    "REWARD_VARIANTS",
    "ATTACKER_KINDS",
    "ATTACKER_PROFILES",
    "spec_for_config",
]

#: network preset name -> SimConfig constructor
NETWORK_PRESETS = {
    "tiny": tiny_network,
    "small": small_network,
    "paper": paper_network,
}

#: named reward parameterisations (eqs 1-4 with different trade-offs):
#: ``paper`` is the published objective; ``cost_sensitive`` triples the
#: IT-availability weight (defenders that over-respond score worse);
#: ``availability`` doubles the process-outage penalties (PLC uptime
#: dominates IT cost).
REWARD_VARIANTS: dict[str, RewardConfig] = {
    "paper": RewardConfig(),
    "cost_sensitive": RewardConfig(lambda_it=0.3),
    "availability": RewardConfig(disrupted_penalty=0.1, destroyed_penalty=0.2),
}

#: attacker construction strategies
ATTACKER_KINDS = ("fsm", "scripted")

#: quantitative FSM profiles: ``apt1`` keeps the preset's thresholds
#: (the nominal Section 3.2 attacker), ``apt2`` applies the aggressive
#: Section 5 overrides (lateral threshold 1, PLC thresholds 5/10).
ATTACKER_PROFILES = ("apt1", "apt2")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, reproducible experiment configuration.

    ``objective``/``vector`` fix the FSM attacker's qualitative pair
    (one of the four Fig 8 configurations); leaving both ``None`` draws
    the pair uniformly at each episode reset, the paper's training
    regime. ``horizon`` overrides the preset's ``tmax``;
    ``cleanup_effectiveness`` overrides the Fig 6 stealth knob.

    ``apt_overrides`` replaces arbitrary quantitative
    :class:`~repro.config.APTConfig` fields (thresholds, labor rate,
    time scale, ...) *after* the profile/objective/stealth steps — the
    bridge that lets attacker behaviours discovered by search (e.g.
    self-play best responses) become named, reproducible scenarios.
    Accepts a mapping at construction; stored as a sorted tuple of
    ``(name, value)`` pairs so specs stay hashable.
    """

    scenario_id: str
    network: str = "paper"
    attacker: str = "fsm"
    profile: str = "apt1"
    objective: str | None = None
    vector: str | None = None
    reward_variant: str = "paper"
    horizon: int | None = None
    cleanup_effectiveness: float | None = None
    apt_overrides: tuple[tuple[str, object], ...] = ()
    description: str = ""
    tags: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.scenario_id or not isinstance(self.scenario_id, str):
            raise ValueError("scenario_id must be a non-empty string")
        if self.network not in NETWORK_PRESETS:
            raise ValueError(
                f"unknown network preset {self.network!r}; "
                f"choose from {sorted(NETWORK_PRESETS)}"
            )
        if self.attacker not in ATTACKER_KINDS:
            raise ValueError(
                f"unknown attacker kind {self.attacker!r}; "
                f"choose from {ATTACKER_KINDS}"
            )
        if self.profile not in ATTACKER_PROFILES:
            raise ValueError(
                f"unknown attacker profile {self.profile!r}; "
                f"choose from {ATTACKER_PROFILES}"
            )
        if (self.objective is None) != (self.vector is None):
            raise ValueError(
                "objective and vector must be fixed together or both "
                "left None (sampled each reset)"
            )
        if self.objective is not None and self.objective not in ("disrupt", "destroy"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.vector is not None and self.vector not in ("opc", "hmi"):
            raise ValueError(f"unknown vector {self.vector!r}")
        if self.reward_variant not in REWARD_VARIANTS:
            raise ValueError(
                f"unknown reward variant {self.reward_variant!r}; "
                f"choose from {sorted(REWARD_VARIANTS)}"
            )
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.cleanup_effectiveness is not None and not (
            0.0 <= self.cleanup_effectiveness <= 1.0
        ):
            raise ValueError("cleanup_effectiveness must be in [0, 1]")
        overrides = self.apt_overrides
        if isinstance(overrides, dict):
            overrides = tuple(sorted(overrides.items()))
        else:
            overrides = tuple(sorted((str(k), v) for k, v in overrides))
        apt_fields = {f.name for f in fields(APTConfig)}
        names = [name for name, _ in overrides]
        unknown = sorted(set(names) - apt_fields)
        if unknown:
            raise ValueError(f"unknown APTConfig fields in apt_overrides: {unknown}")
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names in apt_overrides")
        reserved = {"objective", "vector", "cleanup_effectiveness"} & set(names)
        if reserved:
            raise ValueError(
                f"set {sorted(reserved)} through the spec's own fields, "
                "not apt_overrides"
            )
        object.__setattr__(self, "apt_overrides", overrides)
        object.__setattr__(self, "tags", tuple(self.tags))

    # ------------------------------------------------------------------
    @property
    def sample_qualitative(self) -> bool:
        """Whether the FSM (objective, vector) pair is drawn per episode."""
        return self.objective is None

    def build_config(self) -> SimConfig:
        """Materialise the :class:`SimConfig` this spec describes."""
        config = NETWORK_PRESETS[self.network]()
        apt = config.apt
        if self.profile == "apt2":
            apt = replace(
                apt,
                lateral_threshold=1,
                hmi_threshold=1,
                plc_threshold_destroy=min(5, apt.plc_threshold_destroy),
                plc_threshold_disrupt=min(10, apt.plc_threshold_disrupt),
            )
        if self.objective is not None:
            apt = replace(apt, objective=self.objective, vector=self.vector)
        if self.cleanup_effectiveness is not None:
            apt = replace(apt, cleanup_effectiveness=self.cleanup_effectiveness)
        if self.apt_overrides:
            apt = replace(apt, **dict(self.apt_overrides))
        config = replace(
            config, apt=apt, reward=REWARD_VARIANTS[self.reward_variant]
        )
        if self.horizon is not None:
            config = config.with_tmax(self.horizon)
        return config

    def build_attacker(self, config: SimConfig):
        """Construct the attacker policy this spec names."""
        if self.attacker == "scripted":
            from repro.scenarios.scripted import BeachheadRushAttacker

            return BeachheadRushAttacker()
        from repro.attacker import FSMAttacker

        return FSMAttacker(config.apt, sample_qualitative=self.sample_qualitative)

    def build_env(self, seed: int | None = None, record_truth: bool = True,
                  config: SimConfig | None = None):
        """Construct a ready :class:`~repro.sim.env.InasimEnv`.

        ``config`` overrides :meth:`build_config` when the caller has
        already derived one (e.g. the CLI capping ``tmax``).
        """
        from repro.sim.env import InasimEnv

        if config is None:
            config = self.build_config()
        env = InasimEnv(config, self.build_attacker(config), seed=seed,
                        record_truth=record_truth)
        env.scenario = self
        return env

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """A copy with ``overrides`` applied (keeps the frozen contract)."""
        return replace(self, **overrides)


def spec_for_config(config: SimConfig, scenario_id: str,
                    **fields) -> ScenarioSpec:
    """Express a preset-derived :class:`SimConfig` as a :class:`ScenarioSpec`.

    The reverse bridge of :meth:`ScenarioSpec.build_config`: matches
    ``config.topology`` against the named network presets and
    ``config.reward`` against the reward variants, carries a non-preset
    ``tmax`` as ``horizon``, and expresses attacker deviations through
    ``cleanup_effectiveness`` / ``apt_overrides``. Raises ``ValueError``
    for configurations the catalogue cannot express (custom topologies
    or reward parameterisations). The attacker's qualitative
    (objective, vector) pair is left sampled-per-episode — matching
    ``repro.make_env`` defaults — *unless* the config deviates from the
    preset's pair, in which case the deviation is honoured by fixing
    the pair through the spec fields.
    """
    from repro.attacker.profiles import apt_diff

    network = next(
        (name for name, preset in NETWORK_PRESETS.items()
         if preset().topology == config.topology),
        None,
    )
    if network is None:
        raise ValueError(
            "config.topology matches no network preset; register a custom "
            "scenario (repro.register) instead of bridging the config"
        )
    reward_variant = next(
        (name for name, reward in REWARD_VARIANTS.items()
         if reward == config.reward),
        None,
    )
    if reward_variant is None:
        raise ValueError(
            "config.reward matches no reward variant; register a custom "
            "scenario (repro.register) instead of bridging the config"
        )
    preset = NETWORK_PRESETS[network]()
    overrides = apt_diff(config.apt, preset.apt)
    overrides.pop("objective", None)
    overrides.pop("vector", None)
    cleanup = overrides.pop("cleanup_effectiveness", None)
    # a pair that deviates from the preset was chosen deliberately; pin
    # it (both fields: the spec requires them fixed together)
    pair_deviates = (config.apt.objective != preset.apt.objective
                     or config.apt.vector != preset.apt.vector)
    spec_fields = dict(
        network=network,
        reward_variant=reward_variant,
        objective=config.apt.objective if pair_deviates else None,
        vector=config.apt.vector if pair_deviates else None,
        horizon=None if config.tmax == preset.tmax else config.tmax,
        cleanup_effectiveness=cleanup,
        apt_overrides=overrides,
    )
    spec_fields.update(fields)
    return ScenarioSpec(scenario_id, **spec_fields)
