"""Scenario registry: named, reproducible experiment configurations.

The public construction API of the reproduction lives here (re-exported
at the top level as ``repro.make`` / ``repro.make_vec`` / ...):

* :class:`ScenarioSpec` — a frozen description of (network preset,
  attacker profile and qualitative pair, reward variant, horizon);
* :func:`make` / :func:`make_vec` — build a single environment or a
  batched :class:`~repro.sim.vec_env.VectorEnv` from a scenario id;
* :func:`register` / :func:`list_scenarios` / :func:`get_scenario` —
  extend and discover the catalogue;
* :data:`BUILTIN_SCENARIOS` — the built-in catalogue covering the
  tiny/small/paper networks crossed with the Fig 8 attacker configs
  plus APT2, stealth, scripted, and reward variants.
"""

from repro.scenarios.spec import (
    ATTACKER_KINDS,
    ATTACKER_PROFILES,
    NETWORK_PRESETS,
    REWARD_VARIANTS,
    ScenarioSpec,
    spec_for_config,
)
from repro.scenarios.registry import (
    REGISTRY,
    ScenarioRegistry,
    get_scenario,
    list_scenarios,
    make,
    make_vec,
    make_vec_from_specs,
    register,
)
from repro.scenarios.builtin import BUILTIN_SCENARIOS, register_builtin_scenarios
from repro.scenarios.scripted import BeachheadRushAttacker
from repro.scenarios.serialization import (
    load_registry,
    load_spec,
    save_registry,
    save_spec,
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)

register_builtin_scenarios()

__all__ = [
    "ScenarioSpec",
    "ScenarioRegistry",
    "REGISTRY",
    "BUILTIN_SCENARIOS",
    "NETWORK_PRESETS",
    "REWARD_VARIANTS",
    "ATTACKER_KINDS",
    "ATTACKER_PROFILES",
    "BeachheadRushAttacker",
    "register",
    "register_builtin_scenarios",
    "get_scenario",
    "list_scenarios",
    "make",
    "make_vec",
    "make_vec_from_specs",
    "spec_for_config",
    "spec_to_dict",
    "spec_from_dict",
    "spec_to_json",
    "spec_from_json",
    "save_spec",
    "load_spec",
    "save_registry",
    "load_registry",
]
