"""The built-in scenario catalogue.

Ids follow ``<network>-<variant>-v<rev>``; the three flagship ids keep
the ``inasim-`` prefix. The catalogue crosses the paper's three network
presets with the Fig 8 attacker configurations plus the aggressive
APT2 (Fig 10), stealth (Fig 6), scripted, and reward-variant
scenarios. Tags group scenarios for sweeps:

* ``eval`` / ``train`` / ``test`` — intended use;
* ``fig8`` / ``fig10`` / ``fig6`` — the paper experiment they back;
* ``adversarial`` / ``scripted`` — attacker family;
* ``reward`` — non-paper reward parameterisation;
* ``selfplay`` — best responses emitted by the self-play loop. These
  are *not* built-ins: :class:`~repro.adversarial.selfplay.SelfPlayLoop`
  registers them at runtime under the ``selfplay/`` id namespace
  (``selfplay/<run-name>-r<round>-br<n>``), which it owns — re-running
  a loop with the same run name overwrites them. Persist and restore
  them across processes with
  :func:`~repro.adversarial.selfplay.save_population` /
  :func:`~repro.adversarial.selfplay.load_population`.
"""

from __future__ import annotations

from repro.scenarios.registry import REGISTRY
from repro.scenarios.spec import ScenarioSpec

__all__ = ["BUILTIN_SCENARIOS", "register_builtin_scenarios"]

BUILTIN_SCENARIOS: tuple[ScenarioSpec, ...] = (
    # flagship presets: FSM attacker, (objective, vector) sampled per
    # episode -- the paper's training/evaluation regime
    ScenarioSpec(
        scenario_id="inasim-paper-v1",
        network="paper",
        description="Fig 2 evaluation network, nominal APT1, sampled "
                    "Fig 8 qualitative pair, paper reward.",
        tags=("paper", "eval"),
    ),
    ScenarioSpec(
        scenario_id="inasim-small-v1",
        network="small",
        description="Section 4.2 grid-search network, nominal APT1.",
        tags=("small", "train"),
    ),
    ScenarioSpec(
        scenario_id="inasim-tiny-v1",
        network="tiny",
        description="Minimal unit-test network, fast attacker, short "
                    "horizon.",
        tags=("tiny", "test"),
    ),
    # the four Fig 8 FSM configurations on the evaluation network
    ScenarioSpec(
        scenario_id="paper-disrupt-opc-v1",
        network="paper",
        objective="disrupt",
        vector="opc",
        description="Fig 8 config: disrupt PLCs through the OPC server.",
        tags=("paper", "eval", "fig8"),
    ),
    ScenarioSpec(
        scenario_id="paper-disrupt-hmi-v1",
        network="paper",
        objective="disrupt",
        vector="hmi",
        description="Fig 8 config: disrupt PLCs from captured L1 HMIs.",
        tags=("paper", "eval", "fig8"),
    ),
    ScenarioSpec(
        scenario_id="paper-destroy-opc-v1",
        network="paper",
        objective="destroy",
        vector="opc",
        description="Fig 8 config: flash firmware and destroy PLCs "
                    "through the OPC server.",
        tags=("paper", "eval", "fig8"),
    ),
    ScenarioSpec(
        scenario_id="paper-destroy-hmi-v1",
        network="paper",
        objective="destroy",
        vector="hmi",
        description="Fig 8 config: flash firmware and destroy PLCs from "
                    "captured L1 HMIs.",
        tags=("paper", "eval", "fig8"),
    ),
    # adversarial variants: the aggressive APT2 and the stealth sweep
    ScenarioSpec(
        scenario_id="paper-apt2-v1",
        network="paper",
        profile="apt2",
        description="Fig 10 robustness probe: aggressive APT2 "
                    "(lateral threshold 1, PLC thresholds 5/10).",
        tags=("paper", "eval", "fig10", "adversarial"),
    ),
    ScenarioSpec(
        scenario_id="small-apt2-v1",
        network="small",
        profile="apt2",
        description="APT2 on the training network (transfer studies).",
        tags=("small", "train", "fig10", "adversarial"),
    ),
    ScenarioSpec(
        scenario_id="paper-stealth-v1",
        network="paper",
        cleanup_effectiveness=0.9,
        description="Fig 6 stealth extreme: cleanup removes 90% of the "
                    "forensic evidence.",
        tags=("paper", "eval", "fig6", "adversarial"),
    ),
    # scripted deterministic campaigns (regression / debugging)
    ScenarioSpec(
        scenario_id="tiny-scripted-rush-v1",
        network="tiny",
        attacker="scripted",
        description="Deterministic beachhead-rush campaign on the tiny "
                    "network.",
        tags=("tiny", "test", "scripted"),
    ),
    ScenarioSpec(
        scenario_id="small-scripted-rush-v1",
        network="small",
        attacker="scripted",
        description="Deterministic beachhead-rush campaign on the "
                    "training network.",
        tags=("small", "test", "scripted"),
    ),
    # reward variants
    ScenarioSpec(
        scenario_id="paper-cost-sensitive-v1",
        network="paper",
        reward_variant="cost_sensitive",
        description="Paper network with 3x IT-availability weight "
                    "(penalises over-response).",
        tags=("paper", "eval", "reward"),
    ),
    ScenarioSpec(
        scenario_id="paper-availability-v1",
        network="paper",
        reward_variant="availability",
        description="Paper network with doubled process-outage "
                    "penalties (PLC uptime dominates).",
        tags=("paper", "eval", "reward"),
    ),
)


def register_builtin_scenarios() -> None:
    """Idempotently load the built-in catalogue into the registry."""
    for spec in BUILTIN_SCENARIOS:
        if spec.scenario_id not in REGISTRY:
            REGISTRY.register(spec)
