"""Global scenario registry: named construction of environments.

``make("inasim-paper-v1")`` replaces hand-wiring a config, attacker,
and environment in every consumer. User code extends the catalogue with
:func:`register`; experiment sweeps discover it with
:func:`list_scenarios`.
"""

from __future__ import annotations

import difflib
from typing import Iterable

from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "ScenarioRegistry",
    "REGISTRY",
    "register",
    "get_scenario",
    "list_scenarios",
    "make",
    "make_vec",
    "make_vec_from_specs",
]


class ScenarioRegistry:
    """An id -> :class:`ScenarioSpec` map with duplicate protection."""

    def __init__(self) -> None:
        self._specs: dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec, *, overwrite: bool = False) -> ScenarioSpec:
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(f"expected ScenarioSpec, got {type(spec).__name__}")
        if spec.scenario_id in self._specs and not overwrite:
            raise ValueError(
                f"scenario {spec.scenario_id!r} is already registered; "
                "pass overwrite=True to replace it"
            )
        self._specs[spec.scenario_id] = spec
        return spec

    def unregister(self, scenario_id: str) -> None:
        self._specs.pop(scenario_id, None)

    def get(self, scenario_id: str) -> ScenarioSpec:
        try:
            return self._specs[scenario_id]
        except KeyError:
            close = difflib.get_close_matches(
                scenario_id, self._specs, n=3, cutoff=0.4
            )
            hint = f"; did you mean {close}?" if close else ""
            raise KeyError(
                f"unknown scenario {scenario_id!r}{hint} "
                "(repro.list_scenarios() shows the catalogue)"
            ) from None

    def list(self, tag: str | None = None) -> list[ScenarioSpec]:
        specs = sorted(self._specs.values(), key=lambda s: s.scenario_id)
        if tag is None:
            return specs
        return [s for s in specs if tag in s.tags]

    def ids(self, tag: str | None = None) -> list[str]:
        return [s.scenario_id for s in self.list(tag)]

    def __contains__(self, scenario_id: str) -> bool:
        return scenario_id in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterable[ScenarioSpec]:
        return iter(self.list())


#: the process-wide catalogue (built-ins load on package import)
REGISTRY = ScenarioRegistry()


def register(spec: ScenarioSpec | None = None, *, overwrite: bool = False,
             **fields) -> ScenarioSpec:
    """Register a scenario, given a spec or its fields.

    ``register(ScenarioSpec(...))`` and
    ``register(scenario_id="my-scn", network="small", ...)`` are both
    accepted; duplicate ids raise unless ``overwrite=True``.
    """
    if spec is None:
        spec = ScenarioSpec(**fields)
    elif fields:
        raise TypeError("pass either a ScenarioSpec or fields, not both")
    return REGISTRY.register(spec, overwrite=overwrite)


def get_scenario(scenario_id: str) -> ScenarioSpec:
    """Look up a registered :class:`ScenarioSpec` by id."""
    return REGISTRY.get(scenario_id)


def list_scenarios(tag: str | None = None) -> list[ScenarioSpec]:
    """All registered scenarios (optionally filtered by tag), sorted by id."""
    return REGISTRY.list(tag)


def _resolve(scenario: str | ScenarioSpec, overrides: dict) -> ScenarioSpec:
    spec = REGISTRY.get(scenario) if isinstance(scenario, str) else scenario
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec


def make(scenario: str | ScenarioSpec, *, seed: int | None = None,
         record_truth: bool = True, **overrides):
    """Build an :class:`~repro.sim.env.InasimEnv` from a scenario.

    ``scenario`` is a registered id or an (unregistered) spec;
    ``overrides`` replace spec fields for this construction only, e.g.
    ``make("inasim-paper-v1", horizon=500)``.
    """
    return _resolve(scenario, overrides).build_env(
        seed=seed, record_truth=record_truth
    )


def make_vec(scenario: str | ScenarioSpec, num_envs: int, *,
             seed: int | None = None, auto_reset: bool = True,
             record_truth: bool = True, backend: str = "sync",
             num_workers: int | None = None, pool=None,
             reuse_pool: bool = False, **overrides):
    """Build a lockstep vector environment of ``num_envs`` independent
    copies of a scenario, seeded ``seed + i`` per lane.

    ``backend`` selects the execution engine behind the identical
    lockstep API (trajectories do not depend on it):

    * ``"sync"`` -- every lane stepped in-process
      (:class:`~repro.sim.vec_env.VectorEnv`);
    * ``"process"`` -- lanes partitioned over ``num_workers`` worker
      processes (:class:`~repro.sim.vec_backends.ProcessVectorEnv`);
    * ``"shm"`` -- the process backend with reward/done/mask batches in
      shared memory (:class:`~repro.sim.vec_backends.ShmVectorEnv`);
    * ``"auto"`` -- pick sync or process from ``os.cpu_count()`` and the
      batch width (:func:`~repro.sim.vec_backends.resolve_backend`).

    With ``pool`` (a :class:`~repro.sim.vec_backends.VecPool`) or
    ``reuse_pool=True`` (the process-wide default pool), worker-pool
    backends are acquired from a persistent pool: a live pool with the
    same geometry is re-laned onto this scenario instead of re-spawning
    processes, and ``close()`` on the returned env is a soft release.
    The sync backend ignores pooling (nothing to keep alive).
    """
    if num_envs < 1:
        raise ValueError("num_envs must be >= 1")
    spec = _resolve(scenario, overrides)
    from repro.sim.vec_backends import normalize_backend

    backend = normalize_backend(backend, num_envs, num_workers)
    if backend in ("sync", "batched"):
        cls = _in_process_cls(backend)
        envs = [
            spec.build_env(
                seed=None if seed is None else seed + i,
                record_truth=record_truth,
            )
            for i in range(num_envs)
        ]
        return cls(envs, auto_reset=auto_reset, base_seed=seed)
    pool = _resolve_pool(pool, reuse_pool)
    if pool is not None:
        return pool.acquire(
            [spec] * num_envs, seed=seed, backend=backend,
            num_workers=num_workers, auto_reset=auto_reset,
            record_truth=record_truth,
        )
    from repro.sim.vec_backends import ProcessVectorEnv, ShmVectorEnv

    cls = ProcessVectorEnv if backend == "process" else ShmVectorEnv
    return cls.from_spec(
        spec, num_envs, seed=seed, auto_reset=auto_reset,
        record_truth=record_truth, num_workers=num_workers,
    )


def _in_process_cls(backend: str):
    """The in-process vector-env class for ``sync`` / ``batched``."""
    if backend == "batched":
        from repro.sim.batched_engine import BatchedVectorEnv

        return BatchedVectorEnv
    from repro.sim.vec_env import VectorEnv

    return VectorEnv


def _resolve_pool(pool, reuse_pool: bool):
    """The :class:`~repro.sim.vec_backends.VecPool` to acquire from."""
    if pool is not None:
        return pool
    if reuse_pool:
        from repro.sim.vec_backends import default_pool

        return default_pool()
    return None


def make_vec_from_specs(specs, *, seed: int | None = None,
                        auto_reset: bool = True, record_truth: bool = True,
                        backend: str = "sync",
                        num_workers: int | None = None, pool=None,
                        reuse_pool: bool = False):
    """Build a lockstep vector env whose lane ``i`` runs ``specs[i]``.

    The heterogeneous sibling of :func:`make_vec`: each entry is a
    registered scenario id or a (possibly unregistered)
    :class:`~repro.scenarios.spec.ScenarioSpec`, and all entries must
    share a topology (same action space). The adversarial loops use
    this to fan an attacker population or a CEM candidate batch over
    one vector environment; lane seeding and backends behave exactly
    as in :func:`make_vec`.

    ``pool`` / ``reuse_pool`` opt worker-pool backends into persistent
    pooling: an existing live pool of the same geometry is re-laned
    onto ``specs`` (bit-identical to a fresh construction) instead of
    re-spawning worker processes -- this is how the CEM fitness loop
    evaluates every generation on one pool. Pooled envs treat
    ``close()`` as a soft release; the pool owns the real teardown.
    """
    resolved = [_resolve(s, {}) for s in specs]
    if not resolved:
        raise ValueError("make_vec_from_specs needs at least one spec")
    from repro.sim.vec_backends import normalize_backend

    backend = normalize_backend(backend, len(resolved), num_workers)
    if backend in ("sync", "batched"):
        cls = _in_process_cls(backend)
        envs = [
            spec.build_env(
                seed=None if seed is None else seed + i,
                record_truth=record_truth,
            )
            for i, spec in enumerate(resolved)
        ]
        return cls(envs, auto_reset=auto_reset, base_seed=seed)
    pool = _resolve_pool(pool, reuse_pool)
    if pool is not None:
        return pool.acquire(
            resolved, seed=seed, backend=backend, num_workers=num_workers,
            auto_reset=auto_reset, record_truth=record_truth,
        )
    from repro.sim.vec_backends import ProcessVectorEnv, ShmVectorEnv

    cls = ProcessVectorEnv if backend == "process" else ShmVectorEnv
    return cls.from_specs(
        resolved, seed=seed, auto_reset=auto_reset,
        record_truth=record_truth, num_workers=num_workers,
    )
