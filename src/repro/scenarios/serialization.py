"""JSON (de)serialization for scenario specifications.

The companion of :mod:`repro.config_io`, one layer up: where a
``SimConfig`` JSON file reproduces a single environment, a
:class:`~repro.scenarios.spec.ScenarioSpec` JSON document reproduces a
*named* experiment (network preset, attacker, reward variant, horizon)
and can be shipped to worker processes, checkpoints, or other machines
and re-registered there. Every spec field is a JSON-native type, so the
round trip is exact.
"""

from __future__ import annotations

import dataclasses
import json

from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "spec_to_dict",
    "spec_from_dict",
    "spec_to_json",
    "spec_from_json",
    "save_spec",
    "load_spec",
    "save_registry",
    "load_registry",
]


def spec_to_dict(spec: ScenarioSpec) -> dict:
    """ScenarioSpec -> plain dict (JSON-compatible types only)."""
    data = dataclasses.asdict(spec)
    data["tags"] = list(data["tags"])
    # stored as a sorted tuple of pairs for hashability; a JSON object
    # is the natural wire form (values are int/float/str already)
    data["apt_overrides"] = dict(data["apt_overrides"])
    return data


def spec_from_dict(data: dict) -> ScenarioSpec:
    """Plain dict -> ScenarioSpec, validating field names."""
    known = {f.name for f in dataclasses.fields(ScenarioSpec)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown ScenarioSpec fields: {sorted(unknown)}")
    kwargs = dict(data)
    if "tags" in kwargs:
        kwargs["tags"] = tuple(kwargs["tags"])
    if "apt_overrides" in kwargs and not isinstance(kwargs["apt_overrides"], dict):
        # accept the pair-tuple storage form as well as the JSON object
        kwargs["apt_overrides"] = dict(kwargs["apt_overrides"])
    return ScenarioSpec(**kwargs)


def spec_to_json(spec: ScenarioSpec) -> str:
    return json.dumps(spec_to_dict(spec), indent=2, sort_keys=True)


def spec_from_json(text: str) -> ScenarioSpec:
    return spec_from_dict(json.loads(text))


def save_spec(spec: ScenarioSpec, path) -> None:
    with open(path, "w") as handle:
        handle.write(spec_to_json(spec))
        handle.write("\n")


def load_spec(path) -> ScenarioSpec:
    with open(path) as handle:
        return spec_from_json(handle.read())


def save_registry(path, specs=None) -> None:
    """Write a scenario catalogue (default: the global registry) as JSON."""
    if specs is None:
        from repro.scenarios.registry import REGISTRY

        specs = list(REGISTRY)
    payload = {"scenarios": [spec_to_dict(spec) for spec in specs]}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_registry(path, *, register: bool = True,
                  overwrite: bool = False) -> list[ScenarioSpec]:
    """Load a scenario catalogue; optionally register every entry."""
    with open(path) as handle:
        payload = json.load(handle)
    entries = payload["scenarios"] if isinstance(payload, dict) else payload
    specs = [spec_from_dict(entry) for entry in entries]
    if register:
        from repro.scenarios.registry import REGISTRY

        for spec in specs:
            REGISTRY.register(spec, overwrite=overwrite)
    return specs
