"""APT attacker agents: the stochastic finite-state-machine policy."""

from repro.attacker.fsm import FSMAttacker, Phase
from repro.attacker.profiles import apt1, apt2, apt_diff, with_cleanup_effectiveness
from repro.attacker.scripted import ScriptedAttacker, ScriptedStep, beachhead_rush

__all__ = [
    "FSMAttacker",
    "Phase",
    "apt1",
    "apt2",
    "apt_diff",
    "with_cleanup_effectiveness",
    "ScriptedAttacker",
    "ScriptedStep",
    "beachhead_rush",
]
