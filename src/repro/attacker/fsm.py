"""Stochastic finite-state-machine APT policy (paper Section 3.2, Fig 3/8).

Each machine state (phase) defines a stochastic sub-policy emitting
action requests, and an exit criterion. The current phase is computed
every step by walking the phase sequence and stopping at the first
phase whose exit criterion is unsatisfied -- this implements the
paper's reversion rule ("if during execution an earlier phase criteria
is no longer satisfied, the policy will revert to that earlier phase").

The phase sequence depends on the two qualitative parameters:

* objective = disrupt: no Firmware Compromise phase;
* objective = destroy: PLCs must be firmware-flashed before destruction;
* vector = opc: a single L2 server (the OPC) provides PLC access, at the
  price of cross-firewall traffic that multiplies alert rates;
* vector = hmi: the APT must capture ``hmi_threshold`` level-1 HMIs
  first, but then attacks PLCs from inside level 1.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.config import APTConfig
from repro.net.nodes import Condition, ServerRole
from repro.net.topology import L1_OPS, L2_OPS
from repro.sim.apt_actions import APTActionRequest, APTActionType, APTView
from repro.utils.rng import ensure_rng

__all__ = ["Phase", "FSMAttacker"]

_A = APTActionType

#: Order in which the APT hardens a freshly compromised node.
_LADDER = (
    (Condition.REBOOT_PERSIST, _A.REBOOT_PERSIST),
    (Condition.ADMIN, _A.ESCALATE),
    (Condition.CRED_PERSIST, _A.CRED_PERSIST),
    (Condition.CLEANED, _A.CLEANUP),
)


class Phase(enum.Enum):
    LATERAL_MOVEMENT_L2 = "lateral_movement_l2"
    PROCESS_DISCOVERY = "process_discovery"
    NETWORK_DISCOVERY = "network_discovery"
    OPC_COMPROMISE = "opc_compromise"
    HMI_CAPTURE = "hmi_capture"
    LATERAL_MOVEMENT_L1 = "lateral_movement_l1"
    PLC_DISCOVERY = "plc_discovery"
    FIRMWARE_COMPROMISE = "firmware_compromise"
    EXECUTE = "execute"
    DONE = "done"


def phase_sequence(objective: str, vector: str) -> list[Phase]:
    seq = [
        Phase.LATERAL_MOVEMENT_L2,
        Phase.PROCESS_DISCOVERY,
        Phase.NETWORK_DISCOVERY,
    ]
    if vector == "opc":
        seq.append(Phase.OPC_COMPROMISE)
    else:
        seq.extend([Phase.HMI_CAPTURE, Phase.LATERAL_MOVEMENT_L1])
    seq.append(Phase.PLC_DISCOVERY)
    if objective == "destroy":
        seq.append(Phase.FIRMWARE_COMPROMISE)
    seq.append(Phase.EXECUTE)
    return seq


class FSMAttacker:
    """The paper's baseline APT agent.

    ``sample_qualitative=True`` draws the (objective, vector) pair
    uniformly at each episode reset, covering the four FSM
    configurations of Fig 8; otherwise the config's values are used.
    """

    #: The FSM recomputes its phase and requests from the live state on
    #: every call, so the engine may skip its turn entirely while the
    #: labor budget is exhausted (requests would be discarded anyway).
    #: Time-indexed attackers (scripted replays) must not set this.
    skip_when_saturated = True

    def __init__(self, config: APTConfig, sample_qualitative: bool = True):
        self.config = config
        self.sample_qualitative = sample_qualitative
        self.rng: np.random.Generator = ensure_rng(0)
        self.objective = config.objective
        self.vector = config.vector
        self._sequence = phase_sequence(self.objective, self.vector)
        self.phase = self._sequence[0]
        self._plc_goal: int | None = None
        self._phase_dirty = True
        self._phase_version = -1
        self._sub_policies = {
            Phase.LATERAL_MOVEMENT_L2: self._lateral_movement_l2,
            Phase.PROCESS_DISCOVERY: self._process_discovery,
            Phase.NETWORK_DISCOVERY: self._network_discovery,
            Phase.OPC_COMPROMISE: self._opc_compromise,
            Phase.HMI_CAPTURE: self._hmi_capture,
            Phase.LATERAL_MOVEMENT_L1: self._lateral_movement_l1,
            Phase.PLC_DISCOVERY: self._plc_discovery,
            Phase.FIRMWARE_COMPROMISE: self._firmware_compromise,
            Phase.EXECUTE: self._execute,
        }

    # ------------------------------------------------------------------
    @property
    def phase_name(self) -> str:
        return self.phase.value

    @property
    def plc_threshold(self) -> int:
        if self.objective == "destroy":
            return self.config.plc_threshold_destroy
        return self.config.plc_threshold_disrupt

    def reset(self, rng: np.random.Generator) -> None:
        self.rng = rng
        if self.sample_qualitative:
            self.objective = str(rng.choice(["disrupt", "destroy"]))
            self.vector = str(rng.choice(["opc", "hmi"]))
        else:
            self.objective = self.config.objective
            self.vector = self.config.vector
        self._sequence = phase_sequence(self.objective, self.vector)
        self.phase = self._sequence[0]
        self._plc_goal = None
        self._phase_dirty = True
        self._phase_version = -1

    def act_is_noop(self, state) -> bool:
        """True when :meth:`act` would provably do nothing.

        With the campaign complete (DONE phase), fresh criteria inputs,
        and an unchanged ``state.version``, :meth:`act` returns ``[]``
        without drawing randomness or mutating anything -- the batched
        engine uses this to skip the whole attacker turn for such lanes.
        """
        return (
            self.phase is Phase.DONE
            and not self._phase_dirty
            and self._phase_version == state.version
        )

    def mark_phase_dirty(self) -> None:
        """Engine hook: a criteria input (state / knowledge) changed.

        :meth:`_current_phase` is a deterministic, randomness-free
        function of (state, knowledge, episode constants), so the walk
        only needs re-running after action completions, re-intrusion,
        or a knowledge write -- the engine calls this at exactly those
        points, ``NetworkState.version`` catches out-of-band state
        edits, and :meth:`act`/:meth:`observe` reuse the cached phase
        otherwise (bit-identical, just cheaper).
        """
        self._phase_dirty = True

    def _refresh_phase(self, view: APTView) -> None:
        version = view.state.version
        if self._phase_dirty or version != self._phase_version:
            self.phase = self._current_phase(view)
            self._phase_dirty = False
            self._phase_version = version

    # ------------------------------------------------------------------
    def observe(self, view: APTView) -> None:
        """Refresh the reported phase without taking decisions.

        Called by the engine on labor-saturated steps instead of
        :meth:`act`, so the ``apt_phase`` diagnostic tracks completed
        actions even while no new requests can launch. Consumes no
        randomness.
        """
        self._refresh_phase(view)

    def act(self, view: APTView) -> list[APTActionRequest]:
        self._refresh_phase(view)
        if self.phase is Phase.DONE:
            return []
        requests = list(self._sub_policies[self.phase](view))
        # opportunistic hardening: with leftover labor, keep walking the
        # persistence/stealth ladder (reboot persist -> admin -> cred
        # persist -> cleanup) on every controlled node; cleanup is what
        # makes the APT hard to detect (Fig 6's perturbation axis)
        requests.extend(self._ladder_requests(view, view.controlled_nodes()))
        in_flight = view.in_flight_keys()
        unique: list[APTActionRequest] = []
        seen = set(in_flight)
        for req in requests:
            key = req.target_key()
            if key in seen:
                continue
            seen.add(key)
            unique.append(req)
        return unique[: view.labor_available]

    def _current_phase(self, view: APTView) -> Phase:
        for phase in self._sequence:
            if not self._criteria_met(phase, view):
                return phase
        return Phase.DONE

    # ------------------------------------------------------------------
    # exit criteria (Fig 3 diamonds)
    # ------------------------------------------------------------------
    def _criteria_met(self, phase: Phase, view: APTView) -> bool:
        state, know, topo = view.state, view.knowledge, view.topology
        if phase is Phase.LATERAL_MOVEMENT_L2:
            controlled = view.controlled_in_level(2)
            if len(controlled) < self.config.lateral_threshold:
                return False
            admin = state.conditions[:, Condition.ADMIN].tolist()
            return any(admin[n] for n in controlled)
        if phase is Phase.PROCESS_DISCOVERY:
            return know.historian_analysis_started or know.historian_analyzed
        if phase is Phase.NETWORK_DISCOVERY:
            return topo.ops_vlan_set <= know.discovered_vlans
        if phase is Phase.OPC_COMPROMISE:
            opc = topo.server(ServerRole.OPC)
            return (
                opc is not None
                and state.has_condition(opc.node_id, Condition.ADMIN)
                and state.has_condition(opc.node_id, Condition.CLEANED)
            )
        if phase is Phase.HMI_CAPTURE:
            return len(self._controlled_hmis(view)) >= 1
        if phase is Phase.LATERAL_MOVEMENT_L1:
            n_goal = min(self.config.hmi_threshold, view.topology.config.l1_hmis)
            return len(self._controlled_hmis(view)) >= n_goal
        if phase is Phase.PLC_DISCOVERY:
            return len(know.discovered_plcs) >= self._effective_plc_threshold(view)
        if phase is Phase.FIRMWARE_COMPROMISE:
            firmware = state.plc_firmware.tolist()
            flashed = sum(1 for p in know.discovered_plcs if firmware[p])
            return flashed >= self._effective_plc_threshold(view)
        if phase is Phase.EXECUTE:
            return state.n_plcs_offline() >= self._effective_plc_threshold(view)
        return True  # pragma: no cover

    def _effective_plc_threshold(self, view: APTView) -> int:
        # objective (and hence the threshold) is fixed for the episode
        goal = self._plc_goal
        if goal is None:
            goal = self._plc_goal = min(self.plc_threshold, view.topology.n_plcs)
        return goal

    def _controlled_hmis(self, view: APTView) -> list[int]:
        return view.controlled_hmis()

    # ------------------------------------------------------------------
    # sub-policies (Fig 3 rectangles)
    # ------------------------------------------------------------------
    def _ladder_requests(self, view: APTView, nodes) -> list[APTActionRequest]:
        if not nodes:
            return []
        out = []
        # bulk reads: plain-Python bools beat repeated numpy scalar
        # indexing on this per-act hot path; fancy indexing only pays
        # for itself once the pool outgrows per-row reads
        conditions = view.state.conditions
        if len(nodes) < 6:
            rows = [conditions[node].tolist() for node in nodes]
        else:
            rows = conditions[list(nodes)].tolist()
        for node, row in zip(nodes, rows):
            for cond, atype in _LADDER:
                if not row[cond]:
                    out.append(APTActionRequest(atype, node, target_node=node))
                    break
        return out

    def _pick(self, items):
        if not isinstance(items, list):
            items = list(items)
        if not items:
            return None
        return items[int(self.rng.integers(len(items)))]

    def _compromise_request(self, view, source_pool, target_pool):
        source = self._pick(source_pool)
        state, know = view.state, view.knowledge
        # incremental compromise set + one bulk column read: cheaper
        # than two numpy scalar reads per candidate on this hot path
        comp_set = state._comp_set
        scanned = state.conditions[:, Condition.SCANNED].tolist()
        node_vlan = state.node_vlan
        known_vlan = know.known_vlan
        candidates = [
            n for n in target_pool
            if n not in comp_set
            and scanned[n]
            and known_vlan.get(n) == node_vlan[n]
        ]
        target = self._pick(candidates)
        if source is None or target is None:
            return None
        return APTActionRequest(_A.COMPROMISE, source, target_node=target)

    def _lateral_movement_l2(self, view: APTView) -> list[APTActionRequest]:
        requests = []
        controlled = view.controlled_in_level(2)
        if not controlled:
            return []
        if L2_OPS not in view.knowledge.scanned_vlans:
            src = self._pick(controlled)
            requests.append(APTActionRequest(_A.SCAN_VLAN, src, target_vlan=L2_OPS))
            return requests
        if len(controlled) < self.config.lateral_threshold:
            req = self._compromise_request(
                view, controlled, view.topology.l2_workstation_ids
            )
            if req is not None:
                requests.append(req)
        requests.extend(self._ladder_requests(view, controlled))
        return requests

    def _process_discovery(self, view: APTView) -> list[APTActionRequest]:
        know, topo, state = view.knowledge, view.topology, view.state
        controlled = view.controlled_in_level(2)
        if not controlled:
            return []
        historian = topo.server(ServerRole.HISTORIAN)
        if historian is None:
            know.historian_analyzed = True  # degenerate test networks
            self._phase_dirty = True  # that write is a criteria input
            return []
        hid = historian.node_id
        if hid not in know.discovered_servers:
            src = self._pick(controlled)
            return [APTActionRequest(_A.DISCOVER_SERVER, src, target_vlan=L2_OPS)]
        if not state.is_compromised(hid):
            req = self._compromise_request(view, controlled, [hid])
            return [req] if req is not None else []
        if not state.has_condition(hid, Condition.ADMIN):
            return [APTActionRequest(_A.ESCALATE, hid, target_node=hid)]
        return [APTActionRequest(_A.ANALYZE_HISTORIAN, hid, target_node=hid)]

    def _network_discovery(self, view: APTView) -> list[APTActionRequest]:
        src = self._pick(view.controlled_nodes())
        if src is None:
            return []
        return [APTActionRequest(_A.DISCOVER_VLAN, src)]

    def _opc_compromise(self, view: APTView) -> list[APTActionRequest]:
        know, topo, state = view.knowledge, view.topology, view.state
        controlled = view.controlled_in_level(2)
        if not controlled:
            return []
        opc = topo.server(ServerRole.OPC)
        if opc is None:
            return []
        oid = opc.node_id
        if oid not in know.discovered_servers:
            src = self._pick(controlled)
            return [APTActionRequest(_A.DISCOVER_SERVER, src, target_vlan=L2_OPS)]
        if not state.is_compromised(oid):
            req = self._compromise_request(view, controlled, [oid])
            return [req] if req is not None else []
        return self._ladder_requests(view, [oid])

    def _hmi_capture(self, view: APTView) -> list[APTActionRequest]:
        know, topo, state = view.knowledge, view.topology, view.state
        controlled = view.controlled_nodes()
        if not controlled:
            return []
        if L1_OPS not in know.scanned_vlans:
            src = self._pick(controlled)
            return [APTActionRequest(_A.SCAN_VLAN, src, target_vlan=L1_OPS)]
        req = self._compromise_request(view, controlled, topo.hmi_ids)
        return [req] if req is not None else []

    def _lateral_movement_l1(self, view: APTView) -> list[APTActionRequest]:
        requests = []
        know, topo, state = view.knowledge, view.topology, view.state
        controlled_hmis = self._controlled_hmis(view)
        if not controlled_hmis:
            return self._hmi_capture(view)
        if L1_OPS not in know.scanned_vlans:
            src = self._pick(controlled_hmis)
            return [APTActionRequest(_A.SCAN_VLAN, src, target_vlan=L1_OPS)]
        # prefer moving laterally from inside level 1 (fewer alerts)
        req = self._compromise_request(view, controlled_hmis, topo.hmi_ids)
        if req is not None:
            requests.append(req)
        requests.extend(self._ladder_requests(view, controlled_hmis))
        return requests

    def _vector_sources(self, view: APTView) -> list[int]:
        """Nodes from which PLC commands are sent, per the access vector."""
        state, topo = view.state, view.topology
        if self.vector == "opc":
            opc = topo.server(ServerRole.OPC)
            if opc is not None and state.has_condition(opc.node_id, Condition.ADMIN) \
                    and not state.is_quarantined(opc.node_id):
                return [opc.node_id]
            return []
        return [
            n for n in self._controlled_hmis(view)
            if state.has_condition(n, Condition.ADMIN)
        ]

    def _plc_discovery(self, view: APTView) -> list[APTActionRequest]:
        sources = self._vector_sources(view)
        if not sources:
            # access vector lost its admin foothold; rebuild it
            if self.vector == "opc":
                return self._opc_compromise(view)
            return self._ladder_requests(view, self._controlled_hmis(view))
        src = self._pick(sources)
        return [APTActionRequest(_A.DISCOVER_PLC, src, target_vlan=L1_OPS)]

    def _attack_requests(self, view: APTView, atype, plc_filter):
        sources = self._vector_sources(view)
        if not sources:
            return []
        destroyed = view.state.plc_destroyed.tolist()
        plcs = sorted(view.knowledge.discovered_plcs)
        out = []
        for plc_id in plcs:
            if destroyed[plc_id]:
                continue
            if plc_filter(plc_id):
                src = self._pick(sources)
                out.append(APTActionRequest(atype, src, target_plc=plc_id))
        return out

    def _firmware_compromise(self, view: APTView) -> list[APTActionRequest]:
        firmware = view.state.plc_firmware.tolist()
        return self._attack_requests(
            view, _A.FLASH_FIRMWARE, lambda p: not firmware[p]
        )

    def _execute(self, view: APTView) -> list[APTActionRequest]:
        know, state = view.knowledge, view.state
        if not know.historian_analyzed:
            return []  # process knowledge still being exfiltrated
        if self.objective == "destroy":
            firmware = state.plc_firmware.tolist()
            destroyed = state.plc_destroyed.tolist()
            return self._attack_requests(
                view, _A.DESTROY_PLC,
                lambda p: firmware[p] and not destroyed[p],
            )
        disrupted = state.plc_disrupted.tolist()
        return self._attack_requests(
            view, _A.DISRUPT_PLC, lambda p: not disrupted[p]
        )
