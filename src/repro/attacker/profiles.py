"""Attacker profiles used in the paper's experiments.

* :func:`apt1` -- the nominal attacker (Section 3.2 defaults): lateral
  threshold 3, PLC thresholds 15 (destroy) / 25 (disrupt), two
  full-time attackers at keyboard (labor rate 2).
* :func:`apt2` -- the aggressive attacker of Section 5: lateral
  threshold 1, PLC thresholds 5 / 10; it moves faster through the
  tactics graph but is less resilient to setbacks.
* :func:`with_cleanup_effectiveness` -- the Fig 6 perturbation.
"""

from __future__ import annotations

from dataclasses import fields, replace

from repro.config import APTConfig

__all__ = ["apt1", "apt2", "with_cleanup_effectiveness", "apt_diff"]


def apt1(**overrides) -> APTConfig:
    """Nominal attacker profile (used for ACSO training)."""
    return APTConfig(**overrides)


def apt2(**overrides) -> APTConfig:
    """Aggressive attacker: faster escalation, less redundant access."""
    params = dict(
        lateral_threshold=1,
        hmi_threshold=1,
        plc_threshold_destroy=5,
        plc_threshold_disrupt=10,
    )
    params.update(overrides)
    return APTConfig(**params)


def with_cleanup_effectiveness(config: APTConfig, effectiveness: float) -> APTConfig:
    """Return a copy of ``config`` with a different cleanup effectiveness."""
    return replace(config, cleanup_effectiveness=effectiveness)


def apt_diff(apt: APTConfig, base: APTConfig | None = None) -> dict:
    """Fields of ``apt`` that differ from ``base`` (default profile).

    The values are JSON-native (int/float/str), so the diff can ride in
    a :class:`~repro.scenarios.spec.ScenarioSpec`'s ``apt_overrides``
    and ``replace(base, **diff)`` reconstructs ``apt`` exactly — the
    bridge that lets discovered attacker behaviours (e.g. self-play
    best responses) become named, registered scenarios.
    """
    if base is None:
        base = APTConfig()
    return {
        f.name: getattr(apt, f.name)
        for f in fields(APTConfig)
        if getattr(apt, f.name) != getattr(base, f.name)
    }
