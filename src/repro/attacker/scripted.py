"""Scripted attackers: deterministic action schedules for testing.

The FSM attacker is stochastic and adaptive -- ideal for evaluation,
awkward for regression tests and defender debugging. A
:class:`ScriptedAttacker` replays an explicit schedule of action
requests at fixed hours, so a test can stage *exactly* one compromise
at hour 10 and assert the defender's response. :func:`beachhead_rush`
builds the common canned scenario programmatically.

Scripted entries are filtered by the same labor budget and in-flight
deduplication as any attacker policy; entries whose hour has passed
while labor was exhausted fire at the next opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.apt_actions import APTActionRequest, APTActionType, APTView

__all__ = ["ScriptedStep", "ScriptedAttacker", "beachhead_rush"]

_A = APTActionType


@dataclass(frozen=True)
class ScriptedStep:
    """Launch ``request`` at (or after) hour ``t``."""

    t: int
    request: APTActionRequest


class ScriptedAttacker:
    """Replays a fixed schedule of APT action requests.

    The script is sorted by hour at construction; each entry fires once,
    the first time the clock has reached it and labor is available.
    ``phase_name`` reports progress through the script, mirroring the
    FSM attacker's telemetry field.
    """

    def __init__(self, script: list[ScriptedStep]):
        self.script = sorted(script, key=lambda step: step.t)
        self._next = 0

    @property
    def phase_name(self) -> str:
        if self._next >= len(self.script):
            return "script-done"
        return f"script-{self._next}/{len(self.script)}"

    @property
    def remaining(self) -> int:
        return len(self.script) - self._next

    def reset(self, rng) -> None:
        self._next = 0

    def act(self, view: APTView) -> list[APTActionRequest]:
        requests: list[APTActionRequest] = []
        in_flight = view.in_flight_keys()
        while (
            self._next < len(self.script)
            and self.script[self._next].t <= view.t
            and len(requests) < view.labor_available
        ):
            request = self.script[self._next].request
            if request.target_key() in in_flight:
                break  # wait for the colliding action to finish
            requests.append(request)
            self._next += 1
        return requests


def beachhead_rush(
    beachhead: int,
    target_plcs: list[int],
    source_for_attack: int | None = None,
    start: int = 1,
    spacing: int = 4,
    disrupt: bool = True,
) -> list[ScriptedStep]:
    """A minimal scripted campaign: harden the beachhead, then hit PLCs.

    The beachhead starts compromised (the engine's initial intrusion),
    so the script escalates privileges there and then launches one
    attack per PLC. With ``disrupt`` False, firmware is flashed and the
    PLCs destroyed instead. ``spacing`` hours separate launches so a
    labor budget of 1 can keep up.
    """
    source = beachhead if source_for_attack is None else source_for_attack
    script = [
        ScriptedStep(start, APTActionRequest(_A.ESCALATE, beachhead,
                                             target_node=beachhead)),
    ]
    t = start + spacing
    for plc_id in target_plcs:
        if disrupt:
            script.append(ScriptedStep(
                t, APTActionRequest(_A.DISRUPT_PLC, source, target_plc=plc_id)
            ))
            t += spacing
        else:
            script.append(ScriptedStep(
                t, APTActionRequest(_A.FLASH_FIRMWARE, source,
                                    target_plc=plc_id)
            ))
            script.append(ScriptedStep(
                t + spacing,
                APTActionRequest(_A.DESTROY_PLC, source, target_plc=plc_id),
            ))
            t += 2 * spacing
    return script
