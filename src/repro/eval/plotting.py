"""Text-mode charts for experiment outputs.

The reproduction environment has no display stack, so the figure
benches render their series as Unicode/ASCII charts alongside the
numeric tables. Three primitives:

* :func:`bar_chart` -- horizontal bars for one metric across policies;
* :func:`series_plot` -- a multi-series scatter over a shared x-axis
  (the Fig 6 sweep and Fig 10 grouped comparisons);
* :func:`sparkline` -- a one-line trend (training curves in logs).
"""

from __future__ import annotations

import math

__all__ = ["bar_chart", "series_plot", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@%&"


def _finite(values) -> list[float]:
    return [v for v in values if v is not None and math.isfinite(v)]


def bar_chart(labels, values, width: int = 40, title: str = "",
              fmt: str = "{:.2f}") -> str:
    """Horizontal bar chart; bars scale to the largest |value|."""
    labels = [str(label) for label in labels]
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        raise ValueError("nothing to plot")
    biggest = max((abs(v) for v in _finite(values)), default=0.0)
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if biggest == 0.0 or not math.isfinite(value):
            bar = ""
        else:
            bar = "█" * max(1, round(abs(value) / biggest * width)) if value else ""
        lines.append(
            f"{label:<{label_width}}  {bar:<{width}}  " + fmt.format(value)
        )
    return "\n".join(lines)


def series_plot(xs, series: dict[str, list], height: int = 12,
                width: int = 60, title: str = "",
                y_label: str = "") -> str:
    """Plot several y-series over shared x values on a character grid.

    Each series gets a marker from ``oxo+*...``; colliding points show
    the later series' marker. Designed for the Fig 6-style sweeps
    (few x values, few policies).
    """
    xs = [float(x) for x in xs]
    if not xs or not series:
        raise ValueError("nothing to plot")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length != x length")
    all_y = _finite(v for ys in series.values() for v in ys)
    if not all_y:
        raise ValueError("no finite values to plot")
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            if y is None or not math.isfinite(y):
                continue
            col = round((x - x_min) / x_span * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [title] if title else []
    if y_label:
        lines.append(y_label)
    top_label, bottom_label = f"{y_max:.2f}", f"{y_min:.2f}"
    gutter = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        prefix = (top_label if i == 0
                  else bottom_label if i == height - 1 else "")
        lines.append(f"{prefix:>{gutter}} |" + "".join(row))
    axis = f"{'':>{gutter}} +" + "-" * width
    lines.append(axis)
    lines.append(
        f"{'':>{gutter}}  {x_min:<{width // 2}.2f}{x_max:>{width // 2}.2f}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{'':>{gutter}}  {legend}")
    return "\n".join(lines)


def sparkline(values) -> str:
    """One-line trend from a numeric sequence (█ high, ▁ low)."""
    values = [float(v) for v in values]
    finite = _finite(values)
    if not finite:
        return ""
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0
    chars = []
    for value in values:
        if not math.isfinite(value):
            chars.append(" ")
            continue
        index = int((value - low) / span * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[index])
    return "".join(chars)
