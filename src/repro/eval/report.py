"""Markdown experiment reports.

Benches write plain-text tables under ``benchmarks/results/``; this
module renders the same aggregates as markdown for EXPERIMENTS.md-style
documents, with the paper's reporting format (mean plus-minus one
standard error over N episodes).
"""

from __future__ import annotations

import datetime

from repro.eval.metrics import METRIC_NAMES, AggregateResult

__all__ = ["markdown_table", "markdown_sweep", "experiment_report"]

_LABELS = {
    "discounted_return": "Return",
    "final_plcs_offline": "PLCs offline",
    "avg_it_cost": "IT cost",
    "avg_nodes_compromised": "Nodes compromised",
}
_DIGITS = {
    "discounted_return": 1,
    "final_plcs_offline": 2,
    "avg_it_cost": 3,
    "avg_nodes_compromised": 2,
}


def _cell(agg: AggregateResult, metric: str) -> str:
    digits = _DIGITS[metric]
    return f"{agg.mean(metric):.{digits}f} ± {agg.stderr(metric):.{digits}f}"


def markdown_table(results: dict[str, AggregateResult],
                   metrics=METRIC_NAMES) -> str:
    """One row per policy, one column per metric (Table 2 layout)."""
    if not results:
        raise ValueError("no results to render")
    header = "| Policy | " + " | ".join(_LABELS[m] for m in metrics) + " |"
    divider = "|" + "---|" * (len(metrics) + 1)
    lines = [header, divider]
    for name, agg in results.items():
        cells = " | ".join(_cell(agg, m) for m in metrics)
        lines.append(f"| {name} | {cells} |")
    return "\n".join(lines)


def markdown_sweep(sweep: dict, metric: str, x_label: str) -> str:
    """Rows = policies, columns = swept x values (Fig 6 layout)."""
    if not sweep:
        raise ValueError("no sweep points to render")
    xs = list(sweep)
    policies = list(next(iter(sweep.values())))
    header = f"| Policy ({x_label}) | " + " | ".join(str(x) for x in xs) + " |"
    divider = "|" + "---|" * (len(xs) + 1)
    lines = [header, divider]
    for name in policies:
        cells = " | ".join(_cell(sweep[x][name], metric) for x in xs)
        lines.append(f"| {name} | {cells} |")
    return "\n".join(lines)


def experiment_report(
    title: str,
    description: str,
    sections: dict[str, str],
    episodes: int | None = None,
    stamp: bool = False,
) -> str:
    """Assemble a full markdown report from rendered sections."""
    lines = [f"# {title}", ""]
    if stamp:
        lines += [f"*Generated {datetime.date.today().isoformat()}*", ""]
    if episodes is not None:
        lines += [f"*{episodes} episodes per cell; mean ± one standard "
                  "error (paper reporting format).*", ""]
    lines += [description.strip(), ""]
    for heading, body in sections.items():
        lines += [f"## {heading}", "", body.strip(), ""]
    return "\n".join(lines)
