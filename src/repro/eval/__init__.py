"""Evaluation harness: metrics, episode runner, and experiment drivers
reproducing Table 2, Fig 6, and Fig 10."""

from repro.eval.metrics import AggregateResult, EpisodeMetrics, aggregate
from repro.eval.runner import (
    evaluate_policy,
    evaluate_policy_per_lane,
    evaluate_policy_vec,
    run_episode,
)
from repro.eval.tables import format_aggregate_table, format_sweep_table
from repro.eval.analysis import (
    DwellTime,
    action_counts,
    dwell_time,
    mean_time_to_repair,
    phase_breakdown,
    time_to_first_response,
)
from repro.eval.plotting import bar_chart, series_plot, sparkline
from repro.eval.report import experiment_report, markdown_sweep, markdown_table
from repro.eval.experiments import run_fig6, run_fig10, run_table2

__all__ = [
    "EpisodeMetrics",
    "AggregateResult",
    "aggregate",
    "run_episode",
    "evaluate_policy",
    "evaluate_policy_per_lane",
    "evaluate_policy_vec",
    "format_aggregate_table",
    "format_sweep_table",
    "DwellTime",
    "dwell_time",
    "time_to_first_response",
    "mean_time_to_repair",
    "phase_breakdown",
    "action_counts",
    "bar_chart",
    "series_plot",
    "sparkline",
    "experiment_report",
    "markdown_table",
    "markdown_sweep",
    "run_table2",
    "run_fig6",
    "run_fig10",
]
