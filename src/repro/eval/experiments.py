"""Experiment drivers for the paper's evaluation section.

Each driver takes a mapping of policy name -> policy instance (the same
instance is reset per episode), runs seeded episodes, and returns
aggregates keyed exactly like the paper's tables/figures:

* :func:`run_table2` -- nominal environment, all policies (Table 2);
* :func:`run_fig6`  -- sweep over APT cleanup effectiveness (Fig 6);
* :func:`run_fig10` -- APT1 vs the aggressive APT2 (Fig 10).
"""

from __future__ import annotations

from repro.attacker import FSMAttacker, apt2, with_cleanup_effectiveness
from repro.config import SimConfig
from repro.eval.metrics import AggregateResult
from repro.eval.runner import evaluate_policy
from repro.sim.env import InasimEnv

__all__ = ["run_table2", "run_fig6", "run_fig10"]


def _make_env(config: SimConfig) -> InasimEnv:
    attacker = FSMAttacker(config.apt, sample_qualitative=True)
    return InasimEnv(config, attacker)


def run_table2(
    config: SimConfig,
    policies: dict[str, object],
    episodes: int = 100,
    seed: int = 0,
    max_steps: int | None = None,
) -> dict[str, AggregateResult]:
    """Nominal evaluation: same simulation parameters as training."""
    results: dict[str, AggregateResult] = {}
    for name, policy in policies.items():
        env = _make_env(config)
        agg, _ = evaluate_policy(env, policy, episodes, seed=seed,
                                 max_steps=max_steps)
        results[name] = agg
    return results


def run_fig6(
    config: SimConfig,
    policies: dict[str, object],
    effectiveness_values=(0.1, 0.3, 0.5, 0.7, 0.9),
    episodes: int = 100,
    seed: int = 0,
    max_steps: int | None = None,
) -> dict[float, dict[str, AggregateResult]]:
    """Robustness to APT cleanup effectiveness (nominal training: 0.5)."""
    sweep: dict[float, dict[str, AggregateResult]] = {}
    for effectiveness in effectiveness_values:
        apt = with_cleanup_effectiveness(config.apt, effectiveness)
        sweep[effectiveness] = run_table2(
            config.with_apt(apt), policies, episodes, seed, max_steps
        )
    return sweep


def run_fig10(
    config: SimConfig,
    policies: dict[str, object],
    episodes: int = 100,
    seed: int = 0,
    max_steps: int | None = None,
) -> dict[str, dict[str, AggregateResult]]:
    """APT policy robustness: nominal APT1 vs aggressive APT2."""
    apt2_config = apt2(
        cleanup_effectiveness=config.apt.cleanup_effectiveness,
        time_scale=config.apt.time_scale,
        labor_rate=config.apt.labor_rate,
    )
    return {
        "APT1": run_table2(config, policies, episodes, seed, max_steps),
        "APT2": run_table2(
            config.with_apt(apt2_config), policies, episodes, seed, max_steps
        ),
    }
