"""Episode runner used by all experiments.

:func:`run_episode` / :func:`evaluate_policy` drive one environment at
a time; :func:`evaluate_policy_vec` fans the same seeded episodes out
over a :class:`~repro.sim.vec_env.VectorEnv` and produces identical
metrics for deterministic policies (episode ``i`` always runs with
seed ``seed + i`` against a freshly reset policy).
:func:`evaluate_policy_per_lane` is the heterogeneous sibling: every
lane — typically one attacker variant each, built with
``repro.make_vec_from_specs`` — runs its *own* ``episodes`` seeded
episodes, so one lockstep pass scores a whole population or candidate
batch and each lane's aggregate equals the single-env
:func:`evaluate_policy` result for deterministic policies.
"""

from __future__ import annotations

import copy
import time

from repro.eval.metrics import EpisodeMetrics, aggregate

__all__ = [
    "run_episode",
    "evaluate_policy",
    "evaluate_policy_vec",
    "evaluate_policy_per_lane",
    "drive_vec_episodes",
]


def run_episode(env, policy, seed: int | None = None,
                max_steps: int | None = None) -> EpisodeMetrics:
    """Run one full episode and compute the paper's metrics."""
    started = time.perf_counter()
    obs = env.reset(seed=seed)
    policy.reset(env)
    gamma = env.config.reward.gamma
    horizon = env.config.tmax if max_steps is None else min(max_steps, env.config.tmax)

    discounted, discount = 0.0, 1.0
    total_cost = 0.0
    total_compromised = 0
    done, t = False, 0
    info: dict = {}
    while not done and t < horizon:
        actions = policy.act(obs)
        obs, reward, done, info = env.step(actions)
        t = info["t"]
        discounted += discount * reward
        discount *= gamma
        total_cost += info["it_cost"]
        total_compromised += info["n_compromised"]

    steps = max(t, 1)
    return EpisodeMetrics(
        discounted_return=discounted,
        final_plcs_offline=int(info.get("n_plcs_offline", 0)),
        avg_it_cost=total_cost / steps,
        avg_nodes_compromised=total_compromised / steps,
        steps=t,
        seed=seed,
        wall_time=time.perf_counter() - started,
    )


def evaluate_policy(env, policy, episodes: int, seed: int = 0,
                    max_steps: int | None = None, on_episode=None):
    """Run ``episodes`` seeded episodes; returns (aggregate, per-episode).

    ``on_episode(index, metrics)`` — when given — fires as each episode
    completes; the evaluation service uses it for progress reporting,
    incremental run-store writes, and cooperative cancellation (an
    exception raised inside the callback aborts the loop).
    """
    results = []
    for i in range(episodes):
        metrics = run_episode(env, policy, seed=seed + i, max_steps=max_steps)
        results.append(metrics)
        if on_episode is not None:
            on_episode(i, metrics)
    return aggregate(results), results


class _Lane:
    """Bookkeeping for one VectorEnv slot running episode ``ep``."""

    __slots__ = ("ep", "obs", "discounted", "discount", "cost",
                 "compromised", "t", "info", "started")

    def __init__(self, ep: int, obs):
        self.ep = ep
        self.obs = obs
        self.discounted = 0.0
        self.discount = 1.0
        self.cost = 0.0
        self.compromised = 0
        self.t = 0
        self.info: dict = {}
        self.started = time.perf_counter()

    def metrics(self, seed: int) -> EpisodeMetrics:
        steps = max(self.t, 1)
        return EpisodeMetrics(
            discounted_return=self.discounted,
            final_plcs_offline=int(self.info.get("n_plcs_offline", 0)),
            avg_it_cost=self.cost / steps,
            avg_nodes_compromised=self.compromised / steps,
            steps=self.t,
            seed=seed,
            wall_time=time.perf_counter() - self.started,
        )


def _policy_factory(policy):
    from repro.defenders.base import DefenderPolicy

    if isinstance(policy, DefenderPolicy):
        return lambda: copy.deepcopy(policy)
    if callable(policy):
        return policy
    raise TypeError("policy must be a DefenderPolicy or a factory")


def evaluate_policy_per_lane(venv, policy, episodes: int, seed: int = 0,
                             max_steps: int | None = None, on_episode=None):
    """Run ``episodes`` seeded episodes on *every* lane of ``venv``.

    Unlike :func:`evaluate_policy_vec` (which fans one environment's
    episode budget over homogeneous lanes), every lane here is its own
    evaluation subject: lane ``i`` runs episodes seeded ``seed + e``
    against a fresh clone of ``policy``, honouring its own
    ``lane_config(i)`` horizon and discount. Returns a list of
    ``(aggregate, per-episode metrics)`` pairs, one per lane; for
    deterministic policies each pair equals what
    :func:`evaluate_policy` returns on that lane's environment. This is
    the batched engine behind the adversarial loops: attacker
    populations and CEM candidate batches are scored in one lockstep
    pass instead of sequential episode loops.

    Each record carries its episode seed and wall-clock time (lane
    start to completion under lockstep stepping), so consumers like
    the run store read them off the record instead of re-deriving
    them. ``on_episode(lane, index, metrics)`` fires per completion.
    """
    make_policy = _policy_factory(policy)
    n = venv.num_envs
    gammas, horizons = [], []
    for i in range(n):
        config = venv.lane_config(i)
        gammas.append(config.reward.gamma)
        horizons.append(config.tmax if max_steps is None
                        else min(max_steps, config.tmax))

    results: list[list[EpisodeMetrics | None]] = [
        [None] * episodes for _ in range(n)
    ]
    policies = [make_policy() for _ in range(n)]
    lanes: list[_Lane | None] = [None] * n
    next_ep = [0] * n

    def start(slot: int) -> None:
        ep = next_ep[slot]
        if ep >= episodes:
            lanes[slot] = None
            return
        next_ep[slot] = ep + 1
        obs = venv.reset_env(slot, seed=seed + ep)
        policies[slot].reset(venv.policy_env(slot))
        lanes[slot] = _Lane(ep, obs)

    was_auto_reset = venv.auto_reset
    venv.auto_reset = False  # episode boundaries are scheduled here
    try:
        for slot in range(n):
            start(slot)
        while any(lane is not None for lane in lanes):
            active = [lane is not None for lane in lanes]
            actions = [
                policies[i].act(lane.obs) if (lane := lanes[i]) else None
                for i in range(n)
            ]
            step = venv.step(actions, mask=active)
            for i, lane in enumerate(lanes):
                if lane is None:
                    continue
                lane.obs = step.observations[i]
                info = step.infos[i]
                lane.t = info["t"]
                lane.discounted += lane.discount * step.rewards[i]
                lane.discount *= gammas[i]
                lane.cost += info["it_cost"]
                lane.compromised += info["n_compromised"]
                lane.info = info
                if step.dones[i] or lane.t >= horizons[i]:
                    results[i][lane.ep] = lane.metrics(seed + lane.ep)
                    if on_episode is not None:
                        on_episode(i, lane.ep, results[i][lane.ep])
                    start(i)
    finally:
        venv.auto_reset = was_auto_reset

    assert all(r is not None for row in results for r in row)
    return [(aggregate(row), row) for row in results]


def drive_vec_episodes(venv, episodes: int, seed: int = 0, *,
                       horizon: int,
                       on_episode_start, act, on_step=None,
                       on_episode_end) -> None:
    """Lockstep episode scheduler shared by evaluation and trace recording.

    Fans ``episodes`` seeded episodes over the lanes of ``venv``:
    episode ``ep`` always runs with seed ``seed + ep``, lanes pick up
    the next pending episode as they finish (so results are independent
    of lane count for per-episode-deterministic agents), and auto-reset
    is suspended because episode boundaries are scheduled here. The
    agent side is supplied via callbacks:

    * ``on_episode_start(slot, ep, obs)`` — fired after
      ``reset_env(slot, seed + ep)``; bind/reset per-episode agent
      state here (``venv.policy_env(slot)`` gives the lane view);
    * ``act(slot, ep, obs) -> action`` — one action for ``venv.step``;
    * ``on_step(slot, ep, obs, reward, done, info)`` — every
      transition, with the post-step observation (optional);
    * ``on_episode_end(slot, ep, obs)`` — when the lane reports done
      or ``info["t"]`` reaches ``horizon``; ``obs`` is the final
      observation of the episode.
    """
    n = venv.num_envs
    current: list[int | None] = [None] * n
    latest_obs: list = [None] * n
    next_ep = 0

    def start(slot: int) -> None:
        nonlocal next_ep
        if next_ep >= episodes:
            current[slot] = None
            return
        ep = next_ep
        next_ep += 1
        obs = venv.reset_env(slot, seed=seed + ep)
        current[slot] = ep
        latest_obs[slot] = obs
        on_episode_start(slot, ep, obs)

    was_auto_reset = venv.auto_reset
    venv.auto_reset = False  # episode boundaries are scheduled here
    try:
        for slot in range(n):
            start(slot)
        while any(ep is not None for ep in current):
            active = [ep is not None for ep in current]
            actions = [
                act(i, ep, latest_obs[i]) if (ep := current[i]) is not None
                else None
                for i in range(n)
            ]
            step = venv.step(actions, mask=active)
            for i, ep in enumerate(current):
                if ep is None:
                    continue
                latest_obs[i] = step.observations[i]
                info = step.infos[i]
                if on_step is not None:
                    on_step(i, ep, step.observations[i], step.rewards[i],
                            step.dones[i], info)
                if step.dones[i] or info["t"] >= horizon:
                    on_episode_end(i, ep, latest_obs[i])
                    start(i)
    finally:
        venv.auto_reset = was_auto_reset


def evaluate_policy_vec(venv, policy, episodes: int, seed: int = 0,
                        max_steps: int | None = None, on_episode=None):
    """Batched :func:`evaluate_policy`: fan episodes over a VectorEnv.

    Episode ``i`` runs with seed ``seed + i`` against its own clone of
    ``policy`` (or a fresh instance, when ``policy`` is a zero-argument
    factory), so for deterministic policies the (aggregate, per-episode)
    result matches the single-env path exactly. Lanes are stepped in
    lockstep via :func:`drive_vec_episodes`; each picks up the next
    pending episode as it finishes. ``on_episode(index, metrics)``
    fires as episodes complete (in completion order, not index order).
    """
    make_policy = _policy_factory(policy)
    n = venv.num_envs
    gamma = venv.config.reward.gamma
    tmax = venv.config.tmax
    horizon = tmax if max_steps is None else min(max_steps, tmax)

    results: list[EpisodeMetrics | None] = [None] * episodes
    policies = [make_policy() for _ in range(n)]
    lanes: list[_Lane | None] = [None] * n

    def on_episode_start(slot: int, ep: int, obs) -> None:
        policies[slot].reset(venv.policy_env(slot))
        lanes[slot] = _Lane(ep, obs)

    def act(slot: int, ep: int, obs):
        return policies[slot].act(obs)

    def on_step(slot: int, ep: int, obs, reward, done, info) -> None:
        lane = lanes[slot]
        lane.obs = obs
        lane.t = info["t"]
        lane.discounted += lane.discount * reward
        lane.discount *= gamma
        lane.cost += info["it_cost"]
        lane.compromised += info["n_compromised"]
        lane.info = info

    def on_episode_end(slot: int, ep: int, obs) -> None:
        results[ep] = lanes[slot].metrics(seed + ep)
        if on_episode is not None:
            on_episode(ep, results[ep])

    drive_vec_episodes(venv, episodes, seed=seed, horizon=horizon,
                       on_episode_start=on_episode_start, act=act,
                       on_step=on_step, on_episode_end=on_episode_end)

    assert all(r is not None for r in results)
    return aggregate(results), results
