"""Episode runner used by all experiments."""

from __future__ import annotations

from repro.eval.metrics import EpisodeMetrics, aggregate

__all__ = ["run_episode", "evaluate_policy"]


def run_episode(env, policy, seed: int | None = None,
                max_steps: int | None = None) -> EpisodeMetrics:
    """Run one full episode and compute the paper's metrics."""
    obs = env.reset(seed=seed)
    policy.reset(env)
    gamma = env.config.reward.gamma
    horizon = env.config.tmax if max_steps is None else min(max_steps, env.config.tmax)

    discounted, discount = 0.0, 1.0
    total_cost = 0.0
    total_compromised = 0
    done, t = False, 0
    info: dict = {}
    while not done and t < horizon:
        actions = policy.act(obs)
        obs, reward, done, info = env.step(actions)
        t = info["t"]
        discounted += discount * reward
        discount *= gamma
        total_cost += info["it_cost"]
        total_compromised += info["n_compromised"]

    steps = max(t, 1)
    return EpisodeMetrics(
        discounted_return=discounted,
        final_plcs_offline=int(info.get("n_plcs_offline", 0)),
        avg_it_cost=total_cost / steps,
        avg_nodes_compromised=total_compromised / steps,
        steps=t,
        seed=seed,
    )


def evaluate_policy(env, policy, episodes: int, seed: int = 0,
                    max_steps: int | None = None):
    """Run ``episodes`` seeded episodes; returns (aggregate, per-episode)."""
    results = [
        run_episode(env, policy, seed=seed + i, max_steps=max_steps)
        for i in range(episodes)
    ]
    return aggregate(results), results
