"""Security-operations metrics from episode traces.

The paper's four evaluation metrics summarize an episode; an operator
triaging a specific incident asks different questions -- how long did
the attacker dwell, how fast did defense respond, what did each phase
of the campaign cost? These functions compute the standard SOC metrics
from an :class:`~repro.sim.trace.EpisodeTrace`:

* :func:`dwell_time` -- total and longest contiguous compromised hours;
* :func:`time_to_first_response` -- hours from first compromise signal
  to the first defender action;
* :func:`mean_time_to_repair` -- average length of PLC-offline
  intervals;
* :func:`phase_breakdown` -- hours the attacker spent in each FSM phase;
* :func:`action_counts` -- defender action mix (investigations vs
  mitigations and their per-type counts).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.sim.orchestrator import DEFENDER_ACTION_SPECS, DefenderActionType
from repro.sim.trace import EpisodeTrace

__all__ = [
    "DwellTime",
    "dwell_time",
    "time_to_first_response",
    "mean_time_to_repair",
    "phase_breakdown",
    "action_counts",
]


@dataclass(frozen=True)
class DwellTime:
    """Attacker presence summary over one episode."""

    #: hours with at least one compromised node
    total_hours: int
    #: longest unbroken run of compromised hours
    longest_streak: int
    #: fraction of the episode with any compromise
    fraction: float


def dwell_time(trace: EpisodeTrace) -> DwellTime:
    """How long the attacker held any foothold."""
    if not trace.steps:
        return DwellTime(0, 0, 0.0)
    total = 0
    longest = 0
    streak = 0
    for step in trace.steps:
        if step.n_compromised > 0:
            total += 1
            streak += 1
            longest = max(longest, streak)
        else:
            streak = 0
    return DwellTime(total, longest, total / len(trace.steps))


def time_to_first_response(trace: EpisodeTrace) -> int | None:
    """Hours from the first alert to the first defender action.

    Returns None when either never happens. Negative values mean the
    defender acted before any alert (scheduled sweeps do).
    """
    first_alert = next(
        (step.t for step in trace.steps if step.n_alerts > 0), None
    )
    first_action = next(
        (step.t for step in trace.steps if step.actions), None
    )
    if first_alert is None or first_action is None:
        return None
    return first_action - first_alert


def mean_time_to_repair(trace: EpisodeTrace) -> float | None:
    """Average length (hours) of contiguous PLC-offline intervals.

    An interval still open at episode end counts with its observed
    length -- truncation underestimates, which is the conservative
    direction for a repair-speed claim. Returns None when no PLC ever
    went offline.
    """
    intervals: list[int] = []
    open_length = 0
    for step in trace.steps:
        if step.n_plcs_offline > 0:
            open_length += 1
        elif open_length:
            intervals.append(open_length)
            open_length = 0
    if open_length:
        intervals.append(open_length)
    if not intervals:
        return None
    return sum(intervals) / len(intervals)


def phase_breakdown(trace: EpisodeTrace) -> dict[str, int]:
    """Hours the attacker reported spending in each phase, in first-
    appearance order."""
    counts: Counter[str] = Counter()
    order: list[str] = []
    for step in trace.steps:
        phase = step.apt_phase or "unknown"
        if phase not in counts:
            order.append(phase)
        counts[phase] += 1
    return {phase: counts[phase] for phase in order}


def action_counts(trace: EpisodeTrace) -> dict[str, int]:
    """Defender action mix: per-type counts plus investigation /
    mitigation totals."""
    counts: Counter[str] = Counter()
    investigations = 0
    mitigations = 0
    for action in trace.actions_taken():
        counts[action.atype.value] += 1
        spec = DEFENDER_ACTION_SPECS[action.atype]
        if spec.is_investigation:
            investigations += 1
        elif action.atype is not DefenderActionType.NOOP:
            mitigations += 1
    out = dict(sorted(counts.items()))
    out["total_investigations"] = investigations
    out["total_mitigations"] = mitigations
    return out
