"""Paper-style table formatting for experiment outputs."""

from __future__ import annotations

from repro.eval.metrics import AggregateResult

__all__ = ["format_aggregate_table", "format_sweep_table"]

_COLUMNS = (
    ("discounted_return", "Discounted Return", 1),
    ("final_plcs_offline", "Final PLCs Offline", 2),
    ("avg_it_cost", "Average IT Cost", 3),
    ("avg_nodes_compromised", "Avg Nodes Compromised", 2),
)


def _cell(mean: float, err: float, digits: int) -> str:
    return f"{mean:.{digits}f} +/- {err:.{digits}f}"


def format_aggregate_table(results: dict[str, AggregateResult],
                           title: str = "") -> str:
    """Render a Table 2-style grid: one row per policy."""
    header = ["Policy"] + [label for _, label, _ in _COLUMNS]
    rows = [header]
    for name, agg in results.items():
        row = [name]
        for metric, _, digits in _COLUMNS:
            mean, err = getattr(agg, metric)
            row.append(_cell(mean, err, digits))
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_sweep_table(sweep: dict, metric: str, x_label: str,
                       title: str = "") -> str:
    """Render a Fig 6/10-style series: rows = policies, cols = x values.

    ``sweep`` maps x value -> {policy name -> AggregateResult}.
    """
    xs = list(sweep)
    policies = list(next(iter(sweep.values())))
    header = [x_label] + [str(x) for x in xs]
    rows = [header]
    for name in policies:
        row = [name]
        for x in xs:
            mean, err = getattr(sweep[x][name], metric)
            row.append(f"{mean:.2f}+/-{err:.2f}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
