"""Per-episode metrics and aggregation (paper Section 5).

The paper reports, over 100 episodes, the mean and one standard error
of: discounted task return, final PLCs offline, average IT cost per
step, and average number of compromised nodes per hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.stats import mean_stderr

__all__ = ["EpisodeMetrics", "AggregateResult", "aggregate", "METRIC_NAMES"]

METRIC_NAMES = (
    "discounted_return",
    "final_plcs_offline",
    "avg_it_cost",
    "avg_nodes_compromised",
)


@dataclass(frozen=True)
class EpisodeMetrics:
    discounted_return: float
    final_plcs_offline: int
    avg_it_cost: float
    avg_nodes_compromised: float
    steps: int
    seed: int | None = None
    #: wall-clock seconds the episode took; measurement metadata, so it
    #: is excluded from equality (vec-vs-single parity compares records)
    wall_time: float | None = field(default=None, compare=False)


@dataclass(frozen=True)
class AggregateResult:
    """Mean and one-standard-error pairs for each paper metric."""

    discounted_return: tuple[float, float]
    final_plcs_offline: tuple[float, float]
    avg_it_cost: tuple[float, float]
    avg_nodes_compromised: tuple[float, float]
    episodes: int

    def mean(self, metric: str) -> float:
        return getattr(self, metric)[0]

    def stderr(self, metric: str) -> float:
        return getattr(self, metric)[1]


def aggregate(episodes: list[EpisodeMetrics]) -> AggregateResult:
    values = {
        name: mean_stderr(getattr(e, name) for e in episodes)
        for name in METRIC_NAMES
    }
    return AggregateResult(episodes=len(episodes), **values)
