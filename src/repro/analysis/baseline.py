"""Baseline file: grandfathered findings with recorded justifications.

The baseline lets ``repro check`` gate CI from day one without first
rewriting every pre-existing violation: a finding matched by a baseline
entry is reported as suppressed instead of failing the run. Every entry
must carry a human justification -- the file is a ledger of accepted
debt, not a mute button.

Format (``.repro-check-baseline.json``)::

    {
      "version": 1,
      "entries": [
        {
          "rule": "rng-unsanctioned-factory",
          "path": "sim/legacy.py",
          "code": "rng = np.random.default_rng(0)",
          "justification": "seeded placeholder, overwritten on reset()"
        }
      ]
    }

Matching is by ``(rule, path, stripped source line)`` -- findings
survive unrelated line renumbering but stop matching the moment the
offending code itself changes. Entries that match nothing produce a
``baseline-unused`` warning so the ledger shrinks over time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Finding, Severity

__all__ = [
    "Baseline",
    "BaselineError",
    "BASELINE_VERSION",
    "PARKED_JUSTIFICATION",
]

BASELINE_VERSION = 1

#: machine tag ``--write-baseline`` stamps on every entry it emits; the
#: checker reports each tagged (or legacy ``TODO``-prefixed) entry as a
#: ``baseline-parked`` finding until a human replaces it with a reason
PARKED_JUSTIFICATION = "baseline-parked"


def _is_parked(justification: str) -> bool:
    text = justification.strip()
    return text == PARKED_JUSTIFICATION or text.upper().startswith("TODO")


class BaselineError(Exception):
    """The baseline file is malformed or missing a justification."""


@dataclass(frozen=True)
class _Entry:
    rule: str
    path: str
    code: str
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.code)


class Baseline:
    """A loaded baseline; tracks which entries matched this run."""

    def __init__(self, entries: list[_Entry], path: Path | None = None):
        self.path = path
        self._entries: dict[tuple[str, str, str], _Entry] = {}
        for entry in entries:
            self._entries[entry.key] = entry
        self._used: set[tuple[str, str, str]] = set()

    def __len__(self) -> int:
        return len(self._entries)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise BaselineError(f"cannot load baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"{path}: expected a baseline object with version "
                f"{BASELINE_VERSION}"
            )
        entries = []
        for i, raw in enumerate(data.get("entries", [])):
            missing = {"rule", "path", "code", "justification"} - set(raw)
            if missing:
                raise BaselineError(
                    f"{path}: entry {i} is missing {sorted(missing)}"
                )
            if not str(raw["justification"]).strip():
                raise BaselineError(
                    f"{path}: entry {i} ({raw['rule']} at {raw['path']}) has "
                    "an empty justification -- baselined findings must say "
                    "why they are acceptable"
                )
            entries.append(
                _Entry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    code=str(raw["code"]),
                    justification=str(raw["justification"]),
                )
            )
        return cls(entries, path=path)

    def matches(self, finding: Finding, source_line: str) -> bool:
        """True (and mark the entry used) if ``finding`` is baselined."""
        key = finding.fingerprint(source_line)
        if key in self._entries:
            self._used.add(key)
            return True
        return False

    def unused_findings(self) -> list[Finding]:
        """One ``baseline-unused`` warning per stale entry."""
        findings = []
        for key, entry in sorted(self._entries.items()):
            if key in self._used:
                continue
            findings.append(
                Finding(
                    rule="baseline-unused",
                    path=entry.path,
                    line=0,
                    severity=Severity.WARNING,
                    message=(
                        f"baseline entry for {entry.rule} no longer matches "
                        f"any finding (code: {entry.code!r})"
                    ),
                    hint="delete the stale entry from the baseline file",
                )
            )
        return findings

    def parked_findings(self) -> list[Finding]:
        """One ``baseline-parked`` warning per unedited placeholder entry.

        ``--write-baseline`` parks findings under the machine tag
        :data:`PARKED_JUSTIFICATION`; an entry still carrying that tag
        (or a legacy ``TODO`` placeholder) was never actually justified,
        so the ledger reports it instead of silently accepting it.
        """
        findings = []
        for _, entry in sorted(self._entries.items()):
            if not _is_parked(entry.justification):
                continue
            findings.append(
                Finding(
                    rule="baseline-parked",
                    path=entry.path,
                    line=0,
                    severity=Severity.WARNING,
                    message=(
                        f"baseline entry for {entry.rule} still carries the "
                        "parked placeholder justification "
                        f"{entry.justification!r}"
                    ),
                    hint=(
                        "edit the entry to say why the finding is "
                        "acceptable (or fix the finding and delete it)"
                    ),
                )
            )
        return findings

    @staticmethod
    def write(path: str | Path, findings: list[Finding],
              source_line_of, justification: str) -> int:
        """Write a baseline covering ``findings``; returns the entry count.

        ``source_line_of`` maps a finding to its source line text. All
        entries share one ``justification`` (typically a placeholder the
        author then edits -- the loader rejects empty ones, and review
        should reject unedited ones).
        """
        seen = set()
        entries = []
        for finding in findings:
            key = finding.fingerprint(source_line_of(finding))
            if key in seen:
                continue
            seen.add(key)
            entries.append(
                {
                    "rule": key[0],
                    "path": key[1],
                    "code": key[2],
                    "justification": justification,
                }
            )
        payload = {"version": BASELINE_VERSION, "entries": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return len(entries)
