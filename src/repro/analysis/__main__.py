"""``python -m repro.analysis`` -- standalone entry for the CI lint job."""

import sys

from repro.analysis.runner import main

if __name__ == "__main__":
    sys.exit(main())
