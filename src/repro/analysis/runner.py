"""The analysis driver behind ``repro check`` / ``python -m repro.analysis``.

Pipeline: load policy -> build the project -> run every enabled checker
-> drop findings covered by inline suppressions or the baseline ->
report in the requested format. Exit status: 0 clean, 1 findings, 2
analyzer/config error.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import (
    PARKED_JUSTIFICATION,
    Baseline,
    BaselineError,
)
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.core import (
    AnalysisError,
    Finding,
    Project,
    Severity,
    sort_findings,
)
from repro.analysis.policy import RULE_CATALOG, Policy
from repro.analysis.report import FORMATS, render

__all__ = ["run_check", "CheckResult", "main", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = ".repro-check-baseline.json"


@dataclass
class CheckResult:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _default_root() -> Path:
    """The repro package directory (we analyze the installed source)."""
    return Path(__file__).resolve().parent.parent


def run_check(
    root: str | Path | None = None,
    policy: Policy | None = None,
    baseline: Baseline | None = None,
    checkers=ALL_CHECKERS,
) -> CheckResult:
    """Run every checker over ``root`` and post-process suppressions."""
    project = Project(Path(root) if root is not None else _default_root())
    policy = policy or Policy.default()
    baseline = baseline or Baseline.empty()
    raw: list[Finding] = []
    for checker_cls in checkers:
        raw.extend(checker_cls().run(project, policy))
    result = CheckResult()
    for finding in sort_findings(raw):
        if project.has(finding.path):
            source = project.file(finding.path)
            suppression = source.suppression_for(finding)
            if suppression is not None:
                result.suppressed.append(
                    (finding, suppression.justification)
                )
                continue
            if baseline.matches(finding, source.line_text(finding.line)):
                result.baselined.append(finding)
                continue
        result.findings.append(finding)
    # malformed suppressions are findings themselves: a mute button
    # without a written reason is exactly what the baseline forbids
    for relpath in project.relpaths:
        if relpath not in project._files:
            continue  # never parsed -> no checker looked at it
        source = project.file(relpath)
        for line, text in source.malformed_suppressions:
            result.findings.append(
                Finding(
                    rule="suppression-syntax",
                    path=relpath,
                    line=line,
                    severity=Severity.ERROR,
                    message=(
                        "inline suppression has no justification: "
                        f"{text!r}"
                    ),
                    hint=(
                        "write '# repro: allow[rule-id] -- why this is "
                        "acceptable'"
                    ),
                )
            )
    result.findings.extend(baseline.unused_findings())
    result.findings.extend(baseline.parked_findings())
    result.findings = sort_findings(result.findings)
    return result


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "AST-based static enforcement of the repo's determinism, "
            "transport-schema, and resource-lifecycle contracts."
        ),
    )
    parser.add_argument(
        "root", nargs="?", default=None,
        help="directory to analyze (default: the repro package source)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="findings format (github emits PR annotations)",
    )
    parser.add_argument(
        "--policy", default=None, metavar="FILE",
        help="JSON policy overrides, deep-merged over the defaults",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE_NAME} next to the analyzed "
            "root, when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=(
            "write the current findings to the baseline file (with "
            "placeholder justifications you must edit) and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _resolve_baseline_path(args, root: Path) -> Path | None:
    if args.baseline:
        return Path(args.baseline)
    # walk up from the analyzed root so `repro check` inside src/repro
    # still finds the repo-level baseline
    for candidate in (root, *root.parents):
        path = candidate / DEFAULT_BASELINE_NAME
        if path.exists():
            return path
    if args.write_baseline:
        return Path.cwd() / DEFAULT_BASELINE_NAME
    return None


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        width = max(len(rule) for rule in RULE_CATALOG)
        for rule, description in sorted(RULE_CATALOG.items()):
            print(f"{rule:<{width}}  {description}")
        return 0
    root = Path(args.root) if args.root else _default_root()
    try:
        policy = Policy.load(args.policy) if args.policy else Policy.default()
        baseline_path = (
            None if args.no_baseline else _resolve_baseline_path(args, root)
        )
        baseline = (
            Baseline.load(baseline_path)
            if baseline_path is not None and baseline_path.exists()
            and not args.write_baseline
            else Baseline.empty()
        )
        result = run_check(root=root, policy=policy, baseline=baseline)
    except (AnalysisError, BaselineError) as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        project = Project(root)

        def line_of(finding: Finding) -> str:
            if project.has(finding.path):
                return project.file(finding.path).line_text(finding.line)
            return ""

        target = baseline_path or (Path.cwd() / DEFAULT_BASELINE_NAME)
        count = Baseline.write(
            target, result.findings, line_of,
            justification=PARKED_JUSTIFICATION,
        )
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {target} -- each is tagged {PARKED_JUSTIFICATION!r} and "
              "reported as a finding until its justification is edited")
        return 0
    print(render(args.format, result.findings,
                 suppressed=len(result.suppressed),
                 baselined=len(result.baselined)))
    return result.exit_code()
