"""``repro check``: AST-based static enforcement of repro invariants.

The platform's reproducibility story rests on contracts that no type
checker sees: RNG streams must be injected, the binary wire format must
cover every transported field, worker resources must be released on
every path, and the hot transport modules must stay pickle-free. This
package proves those contracts at lint time, before a parity test has
to catch them dynamically.

The framework is deliberately stdlib-only (``ast`` + ``json``): it runs
in the CI lint job without installing the simulator's dependencies.

Entry points:

* ``repro check`` (CLI verb) and ``python -m repro.analysis``;
* :func:`run_check` for tests and embedding.

See ``README.md`` ("Static analysis gates") for the rule catalog,
suppression syntax, and baseline file format.
"""

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.core import (
    AnalysisError,
    Finding,
    Project,
    Severity,
    SourceFile,
    Suppression,
)
from repro.analysis.policy import Policy, RuleConfig
from repro.analysis.runner import main, run_check

__all__ = [
    "AnalysisError",
    "Baseline",
    "BaselineError",
    "Finding",
    "Policy",
    "Project",
    "RuleConfig",
    "Severity",
    "SourceFile",
    "Suppression",
    "main",
    "run_check",
]
