"""Core types for the static analyzer: findings, files, projects.

A :class:`Project` is a set of parsed source files rooted at a package
directory; checkers receive it together with a
:class:`~repro.analysis.policy.Policy` and return :class:`Finding`
records. Everything here is stdlib-only so the analyzer can run in
environments (the CI lint job) that never install numpy.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "AnalysisError",
    "Severity",
    "Finding",
    "Suppression",
    "SourceFile",
    "Project",
]


class AnalysisError(Exception):
    """The analyzer itself cannot proceed (bad config, unreadable tree)."""


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation, machine-readable.

    ``path`` is project-relative with forward slashes; ``line`` is
    1-based. ``hint`` says how to fix (or legitimately suppress) the
    finding, not merely what is wrong.
    """

    rule: str
    path: str
    line: int
    severity: Severity
    message: str
    hint: str = ""
    col: int = 0

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
        }

    def fingerprint(self, source_line: str) -> tuple[str, str, str]:
        """Identity used by the baseline file: rule + path + the
        stripped source text of the offending line, so findings survive
        unrelated renumbering but die when the code itself changes."""
        return (self.rule, self.path, source_line.strip())


#: ``# repro: allow[rule-id] -- justification`` (the justification is
#: mandatory: a suppression without a recorded reason is itself an error)
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[a-z0-9*,\- ]+)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True)
class Suppression:
    """An inline ``# repro: allow[...]`` comment."""

    line: int  # line the comment sits on
    rules: frozenset[str]  # rule ids, or {"*"}
    justification: str

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def scan_suppressions(lines: list[str]) -> tuple[dict[int, Suppression], list]:
    """All inline suppressions of a file, keyed by the line they guard.

    A trailing comment guards its own line; a standalone comment line
    guards the next line. Malformed suppressions (missing ``--``
    justification) are returned separately so the runner can report
    them instead of silently honouring them.
    """
    guards: dict[int, Suppression] = {}
    malformed: list[tuple[int, str]] = []
    for i, text in enumerate(lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        why = match.group("why")
        if not why:
            malformed.append((i, text.strip()))
            continue
        rules = frozenset(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        supp = Suppression(line=i, rules=rules, justification=why)
        standalone = text.lstrip().startswith("#")
        guards[i + 1 if standalone else i] = supp
    return guards, malformed


class SourceFile:
    """One parsed python file: text, lines, AST, suppressions."""

    def __init__(self, path: Path, relpath: str):
        self.path = path
        self.relpath = relpath
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        try:
            self.tree = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:
            raise AnalysisError(
                f"{relpath}: cannot parse: {exc.msg} (line {exc.lineno})"
            ) from exc
        self.suppressions, self.malformed_suppressions = scan_suppressions(
            self.lines
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def suppression_for(self, finding: Finding) -> Suppression | None:
        supp = self.suppressions.get(finding.line)
        if supp is not None and supp.covers(finding.rule):
            return supp
        return None


class Project:
    """A tree of source files under ``root``, loaded lazily.

    ``relpath`` keys use forward slashes relative to ``root`` -- the
    same shape the policy's jurisdiction globs are written in.
    """

    def __init__(self, root: Path, paths: list[Path] | None = None):
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise AnalysisError(f"analysis root {root!r} is not a directory")
        if paths is None:
            paths = sorted(
                p for p in self.root.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        self._files: dict[str, SourceFile] = {}
        self._paths: dict[str, Path] = {}
        self.relpaths: list[str] = []
        for path in paths:
            rel = path.resolve().relative_to(self.root).as_posix()
            self.relpaths.append(rel)
            self._paths[rel] = path
        # findings must come out in a stable order regardless of how the
        # checkers iterate
        self.relpaths.sort()

    def file(self, relpath: str) -> SourceFile:
        if relpath not in self._paths:
            raise AnalysisError(f"no file {relpath!r} under {self.root}")
        if relpath not in self._files:
            self._files[relpath] = SourceFile(self._paths[relpath], relpath)
        return self._files[relpath]

    def has(self, relpath: str) -> bool:
        return relpath in self._paths

    def select(self, include: tuple[str, ...],
               exclude: tuple[str, ...] = ()) -> list[str]:
        """Relpaths matched by any include glob and no exclude glob."""
        from fnmatch import fnmatch

        def matches(rel: str, patterns: tuple[str, ...]) -> bool:
            for pattern in patterns:
                if fnmatch(rel, pattern):
                    return True
                # "pkg/**" should also match direct children ("pkg/a.py"),
                # which fnmatch's "*" (no dir semantics) already allows,
                # and the bare package marker "pkg" should match the tree
                if pattern.endswith("/**") and fnmatch(
                    rel, pattern[:-3] + "/*"
                ):
                    return True
            return False

        return [
            rel for rel in self.relpaths
            if matches(rel, include) and not matches(rel, exclude)
        ]


def sort_findings(findings: list[Finding]) -> list[Finding]:
    order = {Severity.ERROR: 0, Severity.WARNING: 1}
    return sorted(
        findings,
        key=lambda f: (f.path, f.line, f.col, order[f.severity], f.rule),
    )
