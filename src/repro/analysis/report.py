"""Finding renderers: human text, machine JSON, GitHub annotations."""

from __future__ import annotations

import json

from repro.analysis.core import Finding, Severity

__all__ = ["render", "FORMATS"]

FORMATS = ("text", "json", "github")


def _render_text(findings: list[Finding], suppressed: int,
                 baselined: int) -> str:
    lines = []
    for finding in findings:
        lines.append(
            f"{finding.location()}: {finding.severity.value} "
            f"[{finding.rule}] {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    summary = (
        f"repro check: {errors} error(s), {warnings} warning(s)"
    )
    extras = []
    if baselined:
        extras.append(f"{baselined} baselined")
    if suppressed:
        extras.append(f"{suppressed} suppressed inline")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def _render_json(findings: list[Finding], suppressed: int,
                 baselined: int) -> str:
    payload = {
        "findings": [f.to_dict() for f in findings],
        "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
        "warnings": sum(
            1 for f in findings if f.severity is Severity.WARNING
        ),
        "suppressed": suppressed,
        "baselined": baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _render_github(findings: list[Finding], suppressed: int,
                   baselined: int) -> str:
    """GitHub workflow commands: findings annotate the PR diff."""
    lines = []
    for finding in findings:
        level = (
            "error" if finding.severity is Severity.ERROR else "warning"
        )
        message = finding.message
        if finding.hint:
            message += f" -- {finding.hint}"
        # workflow-command payloads are single-line; escape per the spec
        message = (
            message.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )
        lines.append(
            f"::{level} file={finding.path},line={max(finding.line, 1)},"
            f"title=repro check [{finding.rule}]::{message}"
        )
    lines.append(
        _render_text(findings, suppressed, baselined).splitlines()[-1]
    )
    return "\n".join(lines)


def render(fmt: str, findings: list[Finding], suppressed: int = 0,
           baselined: int = 0) -> str:
    renderer = {
        "text": _render_text,
        "json": _render_json,
        "github": _render_github,
    }[fmt]
    return renderer(findings, suppressed, baselined)
