"""Resource lifecycle: constructed resources must have a release path.

Every ``SharedMemory`` / ``Process`` / ``Pipe`` the worker-pool modules
construct must be reachable from a ``close``/``unlink``/``terminate``/
finalizer path, or it leaks across worker faults (``/dev/shm`` residue,
zombie children). Full escape analysis is undecidable; this checker
approximates per function over the AST, which catches the leak classes
that have actually bitten this repo:

a construction is **accounted for** when it is

* the context expression of a ``with`` statement; or
* a local that is explicitly released in the same function (a
  ``.close()``/``.unlink()``/``.terminate()``/``.join()``/``.kill()``/
  ``.shutdown()``/``.release()`` call), or registered with a finalizer
  (any call taking it as an argument counts as an ownership transfer --
  ``weakref.finalize``, ``atexit.register``, a container ``append``);
  or
* returned / yielded (the caller owns it); or
* stored on ``self`` (directly or into a ``self.<attr>`` container),
  in which case the **class** must release that attribute somewhere: a
  direct ``self.<attr>...close()`` call, or a release call on a local
  aliased from ``self.<attr>`` / ``self.<attr>[...]`` /
  ``getattr(self, "<attr>", ...)`` / iteration over the attribute.

Anything else -- a local resource that is never released and never
escapes, or a ``self`` attribute no method ever releases -- is a
finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import Finding, Project, Severity
from repro.analysis.policy import Policy

__all__ = ["ResourceLifecycleChecker"]

_RELEASE_METHODS = frozenset(
    ("close", "unlink", "terminate", "join", "kill", "shutdown", "release")
)

_HINT = (
    "release it on every path: a with-block or try/finally, an explicit "
    "close/unlink/terminate call, or a registered finalizer "
    "(weakref.finalize / atexit.register)"
)


def _constructor_name(call: ast.Call) -> str:
    """Last dotted segment of the call target ('mp.Process' -> 'Process')."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@dataclass
class _Construction:
    call: ast.Call
    resource: str  # e.g. "SharedMemory"
    function: ast.FunctionDef
    cls: ast.ClassDef | None


def _functions_with_classes(tree: ast.Module):
    """Yield (function, enclosing class or None), outermost first."""

    def visit(node: ast.AST, cls: ast.ClassDef | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from visit(child, cls)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)


def _with_context_calls(fn: ast.FunctionDef) -> set[ast.Call]:
    calls = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    calls.add(expr)
    return calls


def _self_attr(node: ast.expr) -> str | None:
    """'attr' when ``node`` is ``self.attr`` or ``self.attr[...]``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _release_targets(fn: ast.FunctionDef) -> tuple[set[str], set[str]]:
    """(released local names, released self attrs) within a function.

    Local aliasing is honoured: ``x = self._conns[w]`` followed by
    ``x.close()`` releases attr ``_conns``; ``for conn in self._conns``
    behaves the same; so does ``x = getattr(self, "_slab", None)``.
    """
    alias_of: dict[str, str] = {}  # local name -> self attr it aliases
    released_locals: set[str] = set()
    released_attrs: set[str] = set()
    for node in ast.walk(fn):
        # -- alias creation ------------------------------------------------
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            names = (
                [target] if isinstance(target, ast.Name)
                else list(target.elts)
                if isinstance(target, (ast.Tuple, ast.List)) else []
            )
            attr = _self_attr(node.value) if not isinstance(
                node.value, ast.Call
            ) else None
            if attr is None and isinstance(node.value, ast.Call):
                call = node.value
                if (
                    isinstance(call.func, ast.Name)
                    and call.func.id == "getattr"
                    and len(call.args) >= 2
                    and isinstance(call.args[0], ast.Name)
                    and call.args[0].id == "self"
                    and isinstance(call.args[1], ast.Constant)
                ):
                    attr = call.args[1].value
            if attr is not None:
                for name_node in names:
                    if isinstance(name_node, ast.Name):
                        alias_of[name_node.id] = attr
        if isinstance(node, ast.For):
            iter_attr = _self_attr(node.iter)
            if iter_attr is None and isinstance(node.iter, ast.Call):
                # enumerate(self.attr) / zip(self.a, ...) style wrappers
                for arg in node.iter.args:
                    iter_attr = _self_attr(arg)
                    if iter_attr is not None:
                        break
            if iter_attr is not None:
                targets = (
                    node.target.elts
                    if isinstance(node.target, (ast.Tuple, ast.List))
                    else [node.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name):
                        alias_of[t.id] = iter_attr
        # -- release calls -------------------------------------------------
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_METHODS
        ):
            owner = node.func.value
            attr = _self_attr(owner)
            if attr is not None:
                released_attrs.add(attr)
                continue
            if isinstance(owner, ast.Subscript):
                owner = owner.value
            if isinstance(owner, ast.Name):
                released_locals.add(owner.id)
    for name in released_locals:
        if name in alias_of:
            released_attrs.add(alias_of[name])
    return released_locals, released_attrs


def _escapes(fn: ast.FunctionDef, name: str,
             construction: ast.Call) -> tuple[bool, set[str]]:
    """(escapes?, self attrs the name is stored into).

    An escape is any use that transfers ownership out of the function:
    returning/yielding the name, passing it to a call, or storing it
    into an attribute/subscript/container.
    """
    stored_attrs: set[str] = set()
    escapes = False
    for node in ast.walk(fn):
        if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == name:
                    escapes = True
        if isinstance(node, ast.Call) and node is not construction:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        escapes = True
        if isinstance(node, ast.Assign):
            uses_name = any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(node.value)
            )
            if not uses_name:
                continue
            for target in node.targets:
                targets = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for t in targets:
                    attr = _self_attr(t)
                    if attr is not None:
                        stored_attrs.add(attr)
                        escapes = True
                    elif isinstance(t, (ast.Attribute, ast.Subscript)):
                        escapes = True
    return escapes, stored_attrs


class ResourceLifecycleChecker:
    rules = ("resource-lifecycle",)

    def run(self, project: Project, policy: Policy) -> list[Finding]:
        if not policy.enabled("resource-lifecycle"):
            return []
        config = policy.rule("resource-lifecycle")
        resources = set(config.options.get("resources", ()))
        findings: list[Finding] = []
        for relpath in policy.jurisdiction(project, "resource-lifecycle"):
            source = project.file(relpath)
            class_released = self._class_release_map(source.tree)
            for fn, cls in _functions_with_classes(source.tree):
                findings.extend(
                    self._check_function(
                        relpath, fn, cls, resources, class_released
                    )
                )
        return findings

    # ------------------------------------------------------------------
    def _class_release_map(self, tree: ast.Module) -> dict[str, set[str]]:
        """class name -> self attrs released anywhere in the class."""
        released: dict[str, set[str]] = {}
        for fn, cls in _functions_with_classes(tree):
            if cls is None:
                continue
            _, attrs = _release_targets(fn)
            released.setdefault(cls.name, set()).update(attrs)
        return released

    def _check_function(self, relpath: str, fn: ast.FunctionDef,
                        cls: ast.ClassDef | None, resources: set[str],
                        class_released: dict[str, set[str]]) -> list[Finding]:
        findings: list[Finding] = []
        with_calls = _with_context_calls(fn)
        released_locals, _ = _release_targets(fn)
        for stmt in ast.walk(fn):
            if not isinstance(stmt, ast.Assign):
                continue
            call = stmt.value
            if not isinstance(call, ast.Call):
                continue
            resource = _constructor_name(call)
            if resource not in resources or call in with_calls:
                continue
            # skip constructions inside nested functions: they get their
            # own _check_function pass
            if not self._directly_inside(fn, stmt):
                continue
            findings.extend(
                self._check_assignment(
                    relpath, fn, cls, stmt, call, resource,
                    released_locals, class_released,
                )
            )
        # a bare `SharedMemory(...)` expression statement: constructed,
        # bound to nothing, released by nobody
        for stmt in fn.body:
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and _constructor_name(stmt.value) in resources
                and stmt.value not in with_calls
            ):
                findings.append(
                    self._finding(
                        relpath, stmt.value,
                        f"{_constructor_name(stmt.value)} is constructed and "
                        "immediately dropped: nothing can ever release it",
                    )
                )
        return findings

    def _directly_inside(self, fn: ast.FunctionDef, stmt: ast.AST) -> bool:
        for node in ast.walk(fn):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node is not fn:
                if any(sub is stmt for sub in ast.walk(node)):
                    return False
        return True

    def _check_assignment(self, relpath: str, fn, cls, stmt: ast.Assign,
                          call: ast.Call, resource: str,
                          released_locals: set[str],
                          class_released: dict[str, set[str]]) -> list:
        findings = []
        targets = stmt.targets[0] if len(stmt.targets) == 1 else None
        target_nodes = (
            targets.elts
            if isinstance(targets, (ast.Tuple, ast.List))
            else [targets] if targets is not None else list(stmt.targets)
        )
        for target in target_nodes:
            attr = _self_attr(target)
            if attr is not None:
                released = class_released.get(cls.name, set()) if cls else set()
                if attr not in released:
                    findings.append(
                        self._finding(
                            relpath, call,
                            f"{resource} stored on self.{attr} but no method "
                            f"of {cls.name if cls else 'this class'} ever "
                            f"releases self.{attr}",
                        )
                    )
                continue
            if not isinstance(target, ast.Name):
                # stored straight into someone else's structure: treat
                # as an ownership transfer
                continue
            name = target.id
            if name in released_locals:
                continue
            escapes, stored_attrs = _escapes(fn, name, call)
            if stored_attrs:
                released = class_released.get(cls.name, set()) if cls else set()
                missing = stored_attrs - released
                if missing:
                    findings.append(
                        self._finding(
                            relpath, call,
                            f"{resource} (local {name!r}) is stored on "
                            f"self.{sorted(missing)[0]} but no method of "
                            f"{cls.name if cls else 'this class'} ever "
                            f"releases that attribute",
                        )
                    )
                continue
            if escapes:
                continue
            findings.append(
                self._finding(
                    relpath, call,
                    f"{resource} (local {name!r}) is never released: no "
                    "close/unlink/terminate call, finalizer, or ownership "
                    "transfer in this function",
                )
            )
        return findings

    def _finding(self, relpath: str, call: ast.Call, message: str) -> Finding:
        return Finding(
            rule="resource-lifecycle",
            path=relpath,
            line=call.lineno,
            col=call.col_offset,
            severity=Severity.ERROR,
            message=message,
            hint=_HINT,
        )
