"""Checker registry: every rule implementation the runner dispatches."""

from repro.analysis.checkers.imports import ForbiddenImportsChecker
from repro.analysis.checkers.lifecycle import ResourceLifecycleChecker
from repro.analysis.checkers.rng import RngDisciplineChecker
from repro.analysis.checkers.transport import TransportSchemaChecker

#: instantiation order == reporting precedence for equal locations
ALL_CHECKERS = (
    RngDisciplineChecker,
    TransportSchemaChecker,
    ResourceLifecycleChecker,
    ForbiddenImportsChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "ForbiddenImportsChecker",
    "ResourceLifecycleChecker",
    "RngDisciplineChecker",
    "TransportSchemaChecker",
]
