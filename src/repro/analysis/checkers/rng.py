"""RNG discipline: randomness must be injected, never ambient.

Reproducible trajectories require every stochastic draw to come from a
``numpy.random.Generator`` that the caller seeded and passed in.
Inside the rule's jurisdiction (the simulation core and the policies
that act in it) this checker forbids:

* **module-state RNG** -- ``np.random.rand()`` / ``random.choice()``
  and friends mutate interpreter-global streams that any import can
  perturb (``rng-global-state``, error);
* **wall-clock / OS entropy** -- ``time.time()``, ``uuid.uuid4()``,
  ``os.urandom()``, ``secrets.*``: a replay cannot reproduce the value
  (``rng-wall-clock``, error);
* **unsanctioned generator factories** -- ``np.random.default_rng()``
  / ``RandomState()`` / ``random.Random()`` constructed outside
  ``utils/rng.py``: the stream's seed no longer flows through the
  single ``RngFactory`` root, so perturbing one component can shift
  another's stream (``rng-unsanctioned-factory``, warning).

Timing calls (``time.monotonic``, ``time.perf_counter``, ``sleep``)
are not entropy and stay legal.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Project, Severity
from repro.analysis.policy import Policy

__all__ = ["RngDisciplineChecker"]

#: ``time`` attributes that read the wall clock (timing fns are fine)
_WALL_CLOCK_TIME = {"time", "time_ns"}
_WALL_CLOCK_UUID = {"uuid1", "uuid4"}
_WALL_CLOCK_OS = {"urandom", "getrandom"}

#: ``random`` module attributes that are factories, not module state
_RANDOM_FACTORIES = {"Random"}
#: ``random`` attributes drawing from OS entropy even when "seeded"
_RANDOM_OS = {"SystemRandom"}

_FACTORY_HINT = (
    "accept an np.random.Generator parameter, or build one through "
    "repro.utils.rng.ensure_rng / RngFactory so the seed flows from "
    "the single root"
)


def _import_map(tree: ast.Module) -> dict[str, str]:
    """name -> dotted path for every import binding in the module."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    names[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                names[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return names


def _dotted(node: ast.AST, names: dict[str, str]) -> str | None:
    """Resolve a call target to a dotted path via the import map."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = names.get(node.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


class RngDisciplineChecker:
    rules = ("rng-global-state", "rng-wall-clock", "rng-unsanctioned-factory")

    def run(self, project: Project, policy: Policy) -> list[Finding]:
        findings: list[Finding] = []
        self._juris = {
            rule: (
                set(policy.jurisdiction(project, rule))
                if policy.enabled(rule) else set()
            )
            for rule in self.rules
        }
        jurisdiction: set[str] = set()
        for per_rule in self._juris.values():
            jurisdiction.update(per_rule)
        if not jurisdiction:
            return findings
        state_cfg = policy.rule("rng-global-state")
        np_sanctioned = set(
            state_cfg.options.get("np_sanctioned", ("Generator",))
        )
        factory_cfg = policy.rule("rng-unsanctioned-factory")
        sanctioned_modules = set(
            factory_cfg.options.get("sanctioned_modules", ())
        )
        for relpath in sorted(jurisdiction):
            source = project.file(relpath)
            names = _import_map(source.tree)
            in_factory_module = relpath in sanctioned_modules
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ImportFrom):
                    findings.extend(
                        self._check_import(policy, relpath, node)
                    )
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func, names)
                if dotted is None:
                    continue
                finding = self._classify(
                    policy, relpath, node, dotted,
                    np_sanctioned=np_sanctioned,
                    in_factory_module=in_factory_module,
                )
                if finding is not None:
                    findings.append(finding)
        return findings

    # ------------------------------------------------------------------
    def _check_import(self, policy: Policy, relpath: str,
                      node: ast.ImportFrom) -> list[Finding]:
        """``from numpy.random import rand`` smuggles module state in
        under a local name; flag the import itself."""
        if node.level or relpath not in self._juris["rng-global-state"]:
            return []
        out = []
        if node.module in ("numpy.random", "random"):
            factories = (
                {"default_rng", "Generator", "SeedSequence", "BitGenerator",
                 "PCG64", "Philox", "RandomState"}
                if node.module == "numpy.random"
                else _RANDOM_FACTORIES | _RANDOM_OS
            )
            for alias in node.names:
                if alias.name in factories or alias.name == "*":
                    continue
                out.append(
                    Finding(
                        rule="rng-global-state",
                        path=relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        severity=Severity.ERROR,
                        message=(
                            f"'from {node.module} import {alias.name}' binds "
                            "a module-state RNG function"
                        ),
                        hint=(
                            "draw from an injected np.random.Generator "
                            "instead of the global stream"
                        ),
                    )
                )
        return out

    def _classify(self, policy: Policy, relpath: str, node: ast.Call,
                  dotted: str, np_sanctioned: set[str],
                  in_factory_module: bool) -> Finding | None:
        parts = dotted.split(".")
        # -- numpy.random.* ------------------------------------------------
        if len(parts) >= 2 and parts[0] == "numpy" and parts[1] == "random":
            if len(parts) == 2:
                return None  # bare np.random reference, not a call target
            fn = parts[2]
            if fn in ("default_rng", "RandomState"):
                return self._factory(policy, relpath, node, dotted,
                                     in_factory_module)
            if fn in np_sanctioned:
                return None
            return self._error(
                policy, "rng-global-state", relpath, node,
                f"np.random.{fn}() draws from numpy's interpreter-global "
                "stream",
                "draw from an injected np.random.Generator instead",
            )
        # -- stdlib random ------------------------------------------------
        if parts[0] == "random" and len(parts) >= 2:
            fn = parts[1]
            if fn in _RANDOM_FACTORIES:
                return self._factory(policy, relpath, node, dotted,
                                     in_factory_module)
            if fn in _RANDOM_OS:
                return self._error(
                    policy, "rng-wall-clock", relpath, node,
                    "random.SystemRandom draws OS entropy that a replay "
                    "cannot reproduce",
                    "use a seeded np.random.Generator",
                )
            return self._error(
                policy, "rng-global-state", relpath, node,
                f"random.{fn}() draws from the stdlib's interpreter-global "
                "stream",
                "draw from an injected np.random.Generator instead",
            )
        # -- wall-clock / OS entropy --------------------------------------
        if parts[0] == "time" and len(parts) >= 2 and (
            parts[1] in _WALL_CLOCK_TIME
        ):
            return self._error(
                policy, "rng-wall-clock", relpath, node,
                f"time.{parts[1]}() reads the wall clock inside "
                "deterministic code",
                "derive the value from injected state (step counter, "
                "seed schedule) or move it out of the sim core",
            )
        if parts[0] == "uuid" and len(parts) >= 2 and (
            parts[1] in _WALL_CLOCK_UUID
        ):
            return self._error(
                policy, "rng-wall-clock", relpath, node,
                f"uuid.{parts[1]}() mixes clock/OS entropy into an id",
                "derive ids from the seed schedule (e.g. RngFactory.child)",
            )
        if parts[0] == "os" and len(parts) >= 2 and (
            parts[1] in _WALL_CLOCK_OS
        ):
            return self._error(
                policy, "rng-wall-clock", relpath, node,
                f"os.{parts[1]}() is OS entropy; replays cannot reproduce it",
                "use a seeded np.random.Generator",
            )
        if parts[0] == "secrets":
            return self._error(
                policy, "rng-wall-clock", relpath, node,
                f"secrets.{parts[1] if len(parts) > 1 else '*'}() is OS "
                "entropy; replays cannot reproduce it",
                "use a seeded np.random.Generator",
            )
        return None

    def _factory(self, policy: Policy, relpath: str, node: ast.Call,
                 dotted: str, in_factory_module: bool) -> Finding | None:
        if in_factory_module:
            return None
        if relpath not in self._juris["rng-unsanctioned-factory"]:
            return None
        return Finding(
            rule="rng-unsanctioned-factory",
            path=relpath,
            line=node.lineno,
            col=node.col_offset,
            severity=Severity.WARNING,
            message=f"{dotted.replace('numpy.', 'np.')}() constructs a "
                    "generator outside the sanctioned factory module",
            hint=_FACTORY_HINT,
        )

    def _error(self, policy: Policy, rule: str, relpath: str,
               node: ast.Call, message: str, hint: str) -> Finding | None:
        if relpath not in self._juris[rule]:
            return None
        return Finding(
            rule=rule,
            path=relpath,
            line=node.lineno,
            col=node.col_offset,
            severity=Severity.ERROR,
            message=message,
            hint=hint,
        )
