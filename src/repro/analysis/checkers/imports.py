"""Forbidden-import policy: pickle bans and layering.

Two standing bans ship in the default policy:

* ``pickle``/``dill``/``cloudpickle`` must stay out of the hot-path
  transport modules -- the zero-pickle wire format is the contract
  that makes worker replies deterministic bytes (the one sanctioned
  fallback import carries an inline ``# repro: allow`` with its
  justification);
* ``repro.serve`` must never be imported from ``repro.sim`` -- the
  simulation core is the bottom layer and the serving stack depends on
  it, not the other way around.

Bans are configured as ``{"modules": [globs], "banned": [prefixes],
"reason": ...}`` records, so new layering edges are one policy entry.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Project, Severity
from repro.analysis.policy import Policy

__all__ = ["ForbiddenImportsChecker"]


def _banned_by(name: str, prefixes: list[str]) -> str | None:
    for prefix in prefixes:
        if name == prefix or name.startswith(prefix + "."):
            return prefix
    return None


class ForbiddenImportsChecker:
    rules = ("forbidden-import",)

    def run(self, project: Project, policy: Policy) -> list[Finding]:
        if not policy.enabled("forbidden-imports"):
            return []
        config = policy.rule("forbidden-imports")
        findings: list[Finding] = []
        for ban in config.options.get("bans", []):
            modules = tuple(ban.get("modules", ("**",)))
            banned = list(ban.get("banned", ()))
            reason = ban.get("reason", "banned by policy")
            for relpath in project.select(modules, config.exclude):
                source = project.file(relpath)
                for node in ast.walk(source.tree):
                    names: list[str] = []
                    if isinstance(node, ast.Import):
                        names = [alias.name for alias in node.names]
                    elif isinstance(node, ast.ImportFrom) and node.module \
                            and not node.level:
                        names = [node.module] + [
                            f"{node.module}.{alias.name}"
                            for alias in node.names
                        ]
                    for name in names:
                        hit = _banned_by(name, banned)
                        if hit is None:
                            continue
                        findings.append(
                            Finding(
                                rule="forbidden-import",
                                path=relpath,
                                line=node.lineno,
                                col=node.col_offset,
                                severity=Severity.ERROR,
                                message=(
                                    f"import of {hit!r} is forbidden here: "
                                    f"{reason}"
                                ),
                                hint=(
                                    "restructure the dependency, or record "
                                    "an inline '# repro: allow"
                                    "[forbidden-import] -- why' if the "
                                    "import is deliberate"
                                ),
                            )
                        )
                        break  # one finding per import statement per ban
        return findings
