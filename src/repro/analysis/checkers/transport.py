"""Transport schema completeness: every field makes it over the wire.

PR 4's zero-pickle wire format reconstructs ``Observation`` /
``RewardBreakdown`` / step-info records field for field. The silent
failure mode is *adding* a field: nothing breaks locally, the encoder
simply never ships it (or raises :class:`EncodeError` at runtime and
drops to the pickle fallback), and backend parity quietly degrades.
This checker makes that a lint failure.

Two contract kinds, configured per
:class:`~repro.analysis.policy.Policy`:

* ``dataclass`` -- the fields of a dataclass in the schema module must
  all be **read** in the transport module's encoder function and all be
  **supplied** to the dataclass constructor in the decoder function
  (positionally, by keyword, or via a ``*x[a:b]`` splat of statically
  known arity);
* ``info-keys`` -- the string keys of the producer's ``info`` dict
  literal (plus any ``info["k"] = ...`` follow-ups) must be a subset of
  the transport module's key-set constant, and the encoder/decoder must
  read/produce exactly that key set.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Project, Severity
from repro.analysis.policy import Policy

__all__ = ["TransportSchemaChecker"]

_HINT = (
    "extend the wire format: encode the field in the encoder, rebuild "
    "it in the decoder, and bump the golden/parity fixtures"
)


def _find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_function(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


def _dataclass_fields(cls: ast.ClassDef) -> list[str]:
    """Annotated field names, in declaration order (ClassVar excluded)."""
    fields = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append(stmt.target.id)
    return fields


def _attribute_reads(fn: ast.FunctionDef) -> set[str]:
    """Every ``<expr>.attr`` read inside the function."""
    return {
        node.attr
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute)
        and isinstance(node.ctx, ast.Load)
    }


def _splat_arity(arg: ast.Starred) -> int | None:
    """Arity of a ``*x[a:b]`` splat when a and b are constants."""
    value = arg.value
    if not isinstance(value, ast.Subscript):
        return None
    sl = value.slice
    if not isinstance(sl, ast.Slice) or sl.step is not None:
        return None
    if not (
        isinstance(sl.lower, ast.Constant)
        and isinstance(sl.upper, ast.Constant)
        and isinstance(sl.lower.value, int)
        and isinstance(sl.upper.value, int)
    ):
        return None
    return max(0, sl.upper.value - sl.lower.value)


def _constructor_coverage(
    fn: ast.FunctionDef, class_name: str, fields: list[str]
) -> tuple[set[str], bool] | None:
    """Fields covered by the best ``ClassName(...)`` call in ``fn``.

    Returns ``(covered, verifiable)``; ``None`` when no call is found.
    A call whose splat arity cannot be determined statically is
    unverifiable (reported as a warning, not a missing-field error).
    """
    best: tuple[set[str], bool] | None = None
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != class_name:
            continue
        covered: set[str] = set()
        positional = 0
        verifiable = True
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                arity = _splat_arity(arg)
                if arity is None:
                    verifiable = False
                else:
                    positional += arity
            else:
                positional += 1
        covered.update(fields[:positional])
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs: can't see inside
                verifiable = False
            else:
                covered.add(kw.arg)
        if best is None or len(covered) > len(best[0]):
            best = (covered, verifiable)
    return best


def _dict_keys_of(fn_or_tree: ast.AST, var_name: str) -> set[str] | None:
    """Constant string keys of ``var = { ... }`` plus ``var["k"] = ...``."""
    keys: set[str] = set()
    found = False
    for node in ast.walk(fn_or_tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets: list[ast.expr] = []
            for target in (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            ):
                # unpack `info["k"], pos = ...` style tuple targets
                if isinstance(target, (ast.Tuple, ast.List)):
                    targets.extend(target.elts)
                else:
                    targets.append(target)
            value = node.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == var_name
                    and isinstance(value, ast.Dict)
                ):
                    found = True
                    for key in value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            keys.add(key.value)
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == var_name
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys if found else None


def _subscript_reads(fn: ast.FunctionDef, var_name: str) -> set[str]:
    """``var["k"]`` and ``var.get("k")`` reads inside the function."""
    keys: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == var_name
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == var_name
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            keys.add(node.args[0].value)
    return keys


def _frozenset_const(tree: ast.Module, name: str) -> tuple[set[str], int] | None:
    """The literal string elements of ``NAME = frozenset((...))``."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            continue
        value = node.value
        elements: list[ast.expr] = []
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name) \
                and value.func.id == "frozenset" and value.args:
            inner = value.args[0]
            if isinstance(inner, (ast.Tuple, ast.List, ast.Set)):
                elements = inner.elts
        elif isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            elements = value.elts
        keys = {
            e.value for e in elements
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        }
        return keys, node.lineno
    return None


class TransportSchemaChecker:
    rules = ("transport-schema",)

    def run(self, project: Project, policy: Policy) -> list[Finding]:
        if not policy.enabled("transport-schema"):
            return []
        findings: list[Finding] = []
        contracts = policy.rule("transport-schema").options.get(
            "contracts", []
        )
        for contract in contracts:
            # contracts name concrete files; a project that doesn't
            # contain them (a fixture subtree) simply skips the contract
            needed = [contract.get("transport")]
            needed.append(contract.get("schema") or contract.get("producer"))
            if not all(project.has(p) for p in needed if p):
                continue
            if contract.get("kind") == "dataclass":
                findings.extend(self._check_dataclass(project, contract))
            elif contract.get("kind") == "info-keys":
                findings.extend(self._check_info_keys(project, contract))
        return findings

    # ------------------------------------------------------------------
    def _check_dataclass(self, project: Project, c: dict) -> list[Finding]:
        out: list[Finding] = []
        schema = project.file(c["schema"])
        transport = project.file(c["transport"])
        cls = _find_class(schema.tree, c["name"])
        if cls is None:
            return [self._broken(c, f"class {c['name']!r} not found in "
                                    f"{c['schema']}")]
        fields = _dataclass_fields(cls)
        encoder = _find_function(transport.tree, c["encoder"])
        decoder = _find_function(transport.tree, c["decoder"])
        if encoder is None or decoder is None:
            missing = c["encoder"] if encoder is None else c["decoder"]
            return [self._broken(c, f"codec function {missing!r} not found "
                                    f"in {c['transport']}")]
        reads = _attribute_reads(encoder)
        for field in fields:
            if field not in reads:
                out.append(
                    Finding(
                        rule="transport-schema",
                        path=c["transport"],
                        line=encoder.lineno,
                        severity=Severity.ERROR,
                        message=(
                            f"{c['name']}.{field} (declared at "
                            f"{c['schema']}:{cls.lineno}) is never read in "
                            f"{c['encoder']}(): the field is not encoded"
                        ),
                        hint=_HINT,
                    )
                )
        coverage = _constructor_coverage(decoder, c["name"], fields)
        if coverage is None:
            out.append(self._broken(
                c, f"{c['decoder']}() never constructs {c['name']}"
            ))
            return out
        covered, verifiable = coverage
        missing = [f for f in fields if f not in covered]
        if missing and verifiable:
            for field in missing:
                out.append(
                    Finding(
                        rule="transport-schema",
                        path=c["transport"],
                        line=decoder.lineno,
                        severity=Severity.ERROR,
                        message=(
                            f"{c['name']}.{field} is not supplied when "
                            f"{c['decoder']}() rebuilds {c['name']}: decoded "
                            "records silently take the field default"
                        ),
                        hint=_HINT,
                    )
                )
        elif missing:
            out.append(
                Finding(
                    rule="transport-schema",
                    path=c["transport"],
                    line=decoder.lineno,
                    severity=Severity.WARNING,
                    message=(
                        f"cannot statically verify that {c['decoder']}() "
                        f"supplies {c['name']} fields {missing}: the "
                        "constructor call uses a splat of unknown arity"
                    ),
                    hint="use an explicit-arity splat (x[a:b]) or keywords",
                )
            )
        return out

    def _check_info_keys(self, project: Project, c: dict) -> list[Finding]:
        out: list[Finding] = []
        producer = project.file(c["producer"])
        transport = project.file(c["transport"])
        produced = _dict_keys_of(producer.tree, c.get("producer_dict", "info"))
        if produced is None:
            return [self._broken(
                c, f"no dict literal {c.get('producer_dict', 'info')!r} "
                   f"found in {c['producer']}"
            )]
        const = _frozenset_const(transport.tree, c["keys_const"])
        if const is None:
            return [self._broken(
                c, f"key-set constant {c['keys_const']!r} not found in "
                   f"{c['transport']}"
            )]
        wire_keys, const_line = const
        wrapper_keys = set(c.get("wrapper_keys", ()))
        for key in sorted(produced - wire_keys):
            out.append(
                Finding(
                    rule="transport-schema",
                    path=c["transport"],
                    line=const_line,
                    severity=Severity.ERROR,
                    message=(
                        f"step-info key {key!r} produced by {c['producer']} "
                        f"is missing from {c['keys_const']}: the parallel "
                        "backends will reject (or pickle-fall-back) every "
                        "step info"
                    ),
                    hint=_HINT,
                )
            )
        encoder = _find_function(transport.tree, c["encoder"])
        decoder = _find_function(transport.tree, c["decoder"])
        for fn, verb in ((encoder, "read"), (decoder, "rebuilt")):
            if fn is None:
                continue
            if verb == "read":
                seen = _subscript_reads(fn, "info")
            else:
                seen = _dict_keys_of(fn, "info") or set()
            for key in sorted(wire_keys - seen - wrapper_keys
                              if verb == "rebuilt"
                              else wire_keys - seen):
                out.append(
                    Finding(
                        rule="transport-schema",
                        path=c["transport"],
                        line=fn.lineno,
                        severity=Severity.ERROR,
                        message=(
                            f"wire key {key!r} ({c['keys_const']}) is never "
                            f"{verb} in {fn.name}(): the codec and the key "
                            "set have drifted apart"
                        ),
                        hint=_HINT,
                    )
                )
        return out

    def _broken(self, c: dict, message: str) -> Finding:
        return Finding(
            rule="transport-schema",
            path=c.get("transport", "?"),
            line=1,
            severity=Severity.ERROR,
            message=f"transport contract is broken: {message}",
            hint="update the contract in the analysis policy",
        )
