"""Per-package policy: which rules police which files, with what knobs.

The default policy encodes the repo's actual contracts:

* ``rng-discipline`` has jurisdiction over the simulation core and
  everything that behaves inside it (``sim/``, ``attacker/``,
  ``defenders/``, ``adversarial/``) -- randomness there must flow in as
  a ``numpy.random.Generator`` parameter, and ``utils/rng.py`` is the
  only sanctioned generator factory;
* ``transport-schema`` pins the dataclasses of ``sim/observations.py``
  / ``sim/reward.py`` and the engine's step-info keys to the
  encode/decode sites in ``sim/vec_transport.py``;
* ``resource-lifecycle`` watches ``SharedMemory``/``Process``/``Pipe``
  construction in the worker-pool modules;
* ``forbidden-imports`` bans pickle/dill from the hot-path transport
  modules and the columnar OPE trace store, and ``repro.serve`` from
  ``repro.sim`` (layering).

A JSON policy file (``repro check --policy FILE``) deep-merges over the
defaults: per rule, ``enabled``, ``include``, ``exclude``, and
``options`` may be overridden. Tests use the same mechanism to point
checkers at fixture trees.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import AnalysisError

__all__ = ["RuleConfig", "Policy", "RULE_CATALOG"]

#: rule id -> one-line description (the ``--list-rules`` catalog)
RULE_CATALOG = {
    "rng-global-state": (
        "module-state RNG call (random.*/np.random.*) in deterministic "
        "code: the draw bypasses the injected per-component Generator"
    ),
    "rng-wall-clock": (
        "wall-clock/OS entropy (time.time, uuid, os.urandom, secrets) "
        "in deterministic code: replays cannot reproduce the value"
    ),
    "rng-unsanctioned-factory": (
        "np.random.default_rng()/RandomState() constructed outside the "
        "sanctioned factory module: accept a Generator parameter or use "
        "repro.utils.rng.ensure_rng/RngFactory"
    ),
    "transport-schema": (
        "a transported dataclass field or step-info key is not covered "
        "by the binary wire format's encode/decode sites"
    ),
    "resource-lifecycle": (
        "SharedMemory/Process/Pipe constructed with no reachable "
        "close/unlink/terminate/finalizer path"
    ),
    "forbidden-import": (
        "an import banned by policy (pickle/dill in transport modules; "
        "repro.serve from repro.sim)"
    ),
    "suppression-syntax": (
        "malformed inline suppression: '# repro: allow[rule]' requires "
        "a '-- justification' clause"
    ),
    "baseline-unused": (
        "a baseline entry no longer matches any finding: delete it"
    ),
    "baseline-parked": (
        "a baseline entry still carries the 'baseline-parked' machine "
        "tag (or a TODO placeholder) instead of a real justification: "
        "edit it"
    ),
}


@dataclass(frozen=True)
class RuleConfig:
    """Jurisdiction + knobs for one rule."""

    enabled: bool = True
    include: tuple[str, ...] = ("**",)
    exclude: tuple[str, ...] = ()
    options: dict = field(default_factory=dict)

    def merged(self, override: dict) -> "RuleConfig":
        unknown = set(override) - {"enabled", "include", "exclude", "options"}
        if unknown:
            raise AnalysisError(
                f"unknown rule-config keys {sorted(unknown)} "
                "(expected enabled/include/exclude/options)"
            )
        options = dict(self.options)
        options.update(override.get("options", {}))
        return RuleConfig(
            enabled=override.get("enabled", self.enabled),
            include=tuple(override.get("include", self.include)),
            exclude=tuple(override.get("exclude", self.exclude)),
            options=options,
        )


_RNG_JURISDICTION = (
    "sim/**",
    "attacker/**",
    "defenders/**",
    "adversarial/**",
)

#: np.random attributes that are types/factories, not module RNG state
_NP_RANDOM_SANCTIONED = (
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "default_rng",
)

#: transport contracts: every dataclass shipped over the wire, plus the
#: engine-info key set, pinned to their codec functions
_TRANSPORT_CONTRACTS = (
    {
        "kind": "dataclass",
        "name": "Observation",
        "schema": "sim/observations.py",
        "transport": "sim/vec_transport.py",
        "encoder": "_encode_observation",
        "decoder": "_decode_observation",
    },
    {
        "kind": "dataclass",
        "name": "RewardBreakdown",
        "schema": "sim/reward.py",
        "transport": "sim/vec_transport.py",
        "encoder": "_encode_info",
        "decoder": "_decode_info",
    },
    {
        "kind": "info-keys",
        "producer": "sim/engine.py",
        "producer_dict": "info",
        "transport": "sim/vec_transport.py",
        "keys_const": "_INFO_KEYS",
        "encoder": "_encode_info",
        "decoder": "_decode_info",
        # produced only by the VectorEnv auto-reset wrapper, not the
        # engine, but still part of the wire contract
        "wrapper_keys": ["final_observation"],
    },
)

_DEFAULT_RULES: dict[str, RuleConfig] = {
    "rng-global-state": RuleConfig(
        include=_RNG_JURISDICTION,
        options={"np_sanctioned": list(_NP_RANDOM_SANCTIONED)},
    ),
    "rng-wall-clock": RuleConfig(include=_RNG_JURISDICTION),
    "rng-unsanctioned-factory": RuleConfig(
        include=_RNG_JURISDICTION,
        options={"sanctioned_modules": ["utils/rng.py"]},
    ),
    "transport-schema": RuleConfig(
        options={"contracts": list(_TRANSPORT_CONTRACTS)},
    ),
    "resource-lifecycle": RuleConfig(
        include=("sim/vec_backends.py", "sim/vec_supervisor.py"),
        options={"resources": ["SharedMemory", "Process", "Pipe"]},
    ),
    "forbidden-imports": RuleConfig(
        options={
            "bans": [
                {
                    "modules": [
                        "sim/vec_transport.py",
                        "sim/vec_backends.py",
                        "sim/vec_supervisor.py",
                    ],
                    "banned": ["pickle", "dill", "cloudpickle"],
                    "reason": (
                        "the per-step transport path is contractually "
                        "pickle-free (PR 4's zero-pickle wire format)"
                    ),
                },
                {
                    "modules": [
                        "validation/tracestore.py",
                        "validation/datasets.py",
                    ],
                    "banned": ["pickle", "dill", "cloudpickle", "marshal",
                               "shelve"],
                    "reason": (
                        "the trace store is a pickle-free columnar "
                        "format: traces must be safe to read from any "
                        "producer and portable across python versions"
                    ),
                },
                {
                    "modules": ["sim/**"],
                    "banned": ["repro.serve"],
                    "reason": (
                        "layering: the simulation core must not depend "
                        "on the serving layer"
                    ),
                },
            ],
        },
    ),
}


class Policy:
    """The resolved rule set the runner hands to each checker."""

    def __init__(self, rules: dict[str, RuleConfig]):
        self.rules = dict(rules)

    @classmethod
    def default(cls) -> "Policy":
        return cls(dict(_DEFAULT_RULES))

    @classmethod
    def load(cls, path: str | Path) -> "Policy":
        """The default policy with a JSON override file deep-merged in."""
        try:
            overrides = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise AnalysisError(f"cannot load policy {path}: {exc}") from exc
        return cls.default().merge(overrides)

    def merge(self, overrides: dict) -> "Policy":
        if not isinstance(overrides, dict) or "rules" not in overrides:
            raise AnalysisError('a policy file must be {"rules": {...}}')
        rules = dict(self.rules)
        for rule_id, override in overrides["rules"].items():
            base = rules.get(rule_id)
            if base is None:
                raise AnalysisError(
                    f"policy overrides unknown rule {rule_id!r} "
                    f"(known: {', '.join(sorted(rules))})"
                )
            rules[rule_id] = base.merged(override)
        return Policy(rules)

    def rule(self, rule_id: str) -> RuleConfig:
        return self.rules[rule_id]

    def enabled(self, rule_id: str) -> bool:
        config = self.rules.get(rule_id)
        return config is not None and config.enabled

    def jurisdiction(self, project, rule_id: str) -> list[str]:
        """The project files a rule has authority over."""
        config = self.rules[rule_id]
        return project.select(config.include, config.exclude)
