"""Command-line interface: ``repro <command>``.

Commands cover the full reproduction workflow without writing Python:

* ``repro scenarios`` -- list the scenario registry;
* ``repro topology`` -- inspect a network preset;
* ``repro simulate`` -- run one policy and print the paper's metrics;
* ``repro evaluate`` -- the Table 2 grid over all baseline policies;
* ``repro fig6`` / ``repro fig10`` -- the perturbation experiments;
* ``repro selfplay`` -- double-oracle adversarial training; every best
  response is registered (and optionally persisted) as a ``selfplay/*``
  scenario;
* ``repro fit-dbn`` -- learn DBN tables from random-policy episodes;
* ``repro trace`` -- record an episode trace to JSONL;
* ``repro config`` -- dump a preset's JSON (edit, then pass anywhere
  via ``--config``);
* ``repro serve`` -- the long-lived evaluation service (HTTP/JSON jobs
  over a shared worker pool, SQLite run store);
* ``repro submit`` -- send an evaluation/simulation/self-play job to a
  running server (optionally waiting for the result);
* ``repro runs list`` / ``repro runs show`` -- query the run store
  (works offline, straight from the SQLite file).

Every command accepts ``--scenario <id>`` (a registry entry, see
``repro scenarios``), ``--preset {paper,small,tiny}``, or ``--config
file.json``, plus ``--episodes``, ``--seed``, and ``--max-steps``;
``repro simulate --num-envs N`` fans episodes out over a vectorized
environment. Quick CPU-budget runs and full paper-scale runs use the
same entry points.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.config import SimConfig, paper_network, small_network, tiny_network
from repro.config_io import config_from_dict, config_to_dict

__all__ = ["main", "build_parser"]

_PRESETS = {
    "paper": paper_network,
    "small": small_network,
    "tiny": tiny_network,
}


def _resolve_spec(args):
    """The ScenarioSpec named by --scenario, or None."""
    if getattr(args, "scenario", None):
        from repro.scenarios import get_scenario

        try:
            return get_scenario(args.scenario)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
    return None


def _resolve_config(args) -> SimConfig:
    spec = _resolve_spec(args)
    if spec is not None:
        config = spec.build_config()
    elif getattr(args, "config", None):
        with open(args.config) as handle:
            config = config_from_dict(json.load(handle))
    else:
        config = _PRESETS[args.preset]()
    if getattr(args, "max_steps", None):
        config = config.with_tmax(min(config.tmax, args.max_steps))
    return config


def _build_env(args, config: SimConfig, seed: int | None = None):
    """One environment honouring --scenario's attacker, else the default."""
    import repro

    spec = _resolve_spec(args)
    if spec is not None:
        return spec.build_env(config=config, seed=seed)
    return repro.make_env(config, seed=seed)


def _build_vec_env(args, config: SimConfig, num_envs: int, seed: int,
                   pool=None):
    from repro.sim.vec_backends import normalize_backend

    backend = normalize_backend(getattr(args, "backend", "sync"), num_envs,
                                getattr(args, "num_workers", None))
    if backend in ("sync", "batched"):
        if backend == "batched":
            from repro.sim.batched_engine import BatchedVectorEnv as cls
        else:
            from repro.sim.vec_env import VectorEnv as cls

        envs = [_build_env(args, config, seed=seed + i)
                for i in range(num_envs)]
        return cls(envs, base_seed=seed)
    from repro.sim.vec_backends import ProcessVectorEnv, ShmVectorEnv

    cls = {"process": ProcessVectorEnv, "shm": ShmVectorEnv}[backend]
    num_workers = getattr(args, "num_workers", None)
    spec = _resolve_spec(args)
    if spec is not None:
        # config already folds in --max-steps; pin it via the horizon
        spec = spec.with_overrides(horizon=config.tmax)
        if pool is not None:
            return pool.acquire([spec] * num_envs, seed=seed,
                                backend=backend, num_workers=num_workers)
        return cls.from_spec(spec, num_envs, seed=seed,
                             num_workers=num_workers)
    return cls.from_config(config, num_envs, seed=seed,
                           num_workers=num_workers)


def _make_policy(name: str, config: SimConfig, seed: int,
                 dbn_path: str | None, qnet_path: str | None):
    from repro.defenders import (
        DBNExpertPolicy,
        NoopPolicy,
        PlaybookPolicy,
        SemiRandomPolicy,
    )

    if name == "noop":
        return NoopPolicy()
    if name == "playbook":
        return PlaybookPolicy()
    if name == "random":
        return SemiRandomPolicy(seed=seed)
    if name == "expert":
        return DBNExpertPolicy(_load_tables(config, dbn_path, seed), seed=seed)
    if name == "acso":
        from repro.defenders.acso import ACSOPolicy
        from repro.rl import AttentionQNetwork, QNetConfig

        tables = _load_tables(config, dbn_path, seed)
        qnet = AttentionQNetwork(QNetConfig(), seed=seed)
        if qnet_path:
            from repro.nn import load_state

            load_state(qnet, qnet_path)
        return ACSOPolicy(qnet, tables)
    raise SystemExit(f"unknown policy {name!r}")


def _load_tables(config: SimConfig, path: str | None, seed: int):
    from repro.dbn import DBNTables, fit_dbn

    if path:
        return DBNTables.load(path)
    import repro
    from repro.defenders import SemiRandomPolicy

    print("no --dbn file given; fitting tables on 4 random episodes...",
          file=sys.stderr)
    return fit_dbn(
        lambda: repro.make_env(config),
        lambda: SemiRandomPolicy(rate=5.0),
        episodes=4,
        seed=seed,
    )


# ----------------------------------------------------------------------
# command implementations
# ----------------------------------------------------------------------
def cmd_topology(args) -> int:
    from repro.net.topology import build_topology

    config = _resolve_config(args)
    topology = build_topology(config.topology)
    print(f"nodes: {topology.n_nodes}  plcs: {topology.n_plcs}  "
          f"devices: {len(topology.devices)}  vlans: {len(topology.vlans)}")
    for node in topology.nodes:
        print(f"  [{node.node_id:3d}] {node.name:<22} level={node.level} "
              f"vlan={node.home_vlan} ip={node.ip}")
    for device in topology.devices:
        print(f"  ({device.device_id:3d}) {device.name:<22} "
              f"{device.dtype.value} level={device.level}")
    return 0


def cmd_simulate(args) -> int:
    from repro.eval import (
        evaluate_policy,
        evaluate_policy_vec,
        format_aggregate_table,
    )

    config = _resolve_config(args)
    policy = _make_policy(args.policy, config, args.seed, args.dbn, args.qnet)
    num_envs = max(1, args.num_envs)
    if num_envs > 1:
        pool = None
        if getattr(args, "reuse_pool", False) and _resolve_spec(args):
            from repro.sim.vec_backends import VecPool

            pool = VecPool()
        try:
            with _build_vec_env(args, config, num_envs, args.seed,
                                pool=pool) as venv:
                aggregate, episodes = evaluate_policy_vec(
                    venv, policy, args.episodes, seed=args.seed,
                    max_steps=args.max_steps,
                )
        finally:
            if pool is not None:
                print(f"worker pool: {pool.stats}", file=sys.stderr)
                pool.close()
        title = f"{args.episodes} episode(s), {num_envs} envs"
    else:
        env = _build_env(args, config, seed=args.seed)
        aggregate, episodes = evaluate_policy(
            env, policy, args.episodes, seed=args.seed,
            max_steps=args.max_steps,
        )
        title = f"{args.episodes} episode(s)"
    print(format_aggregate_table({args.policy: aggregate}, title=title))
    if args.verbose:
        for metrics in episodes:
            print(f"  seed={metrics.seed} return="
                  f"{metrics.discounted_return:.1f} "
                  f"plcs_offline={metrics.final_plcs_offline} "
                  f"steps={metrics.steps}")
    return 0


def _baseline_policies(config: SimConfig, args) -> dict:
    from repro.defenders import (
        DBNExpertPolicy,
        PlaybookPolicy,
        SemiRandomPolicy,
    )

    tables = _load_tables(config, args.dbn, args.seed)
    return {
        "DBN Expert": DBNExpertPolicy(tables, seed=args.seed),
        "Playbook": PlaybookPolicy(),
        "Semi Random": SemiRandomPolicy(seed=args.seed),
    }


def cmd_evaluate(args) -> int:
    from repro.eval import format_aggregate_table, run_table2

    config = _resolve_config(args)
    results = run_table2(config, _baseline_policies(config, args),
                         episodes=args.episodes, seed=args.seed,
                         max_steps=args.max_steps)
    print(format_aggregate_table(results, title="Table 2 (baselines)"))
    return 0


def cmd_fig6(args) -> int:
    from repro.eval import format_sweep_table, run_fig6

    config = _resolve_config(args)
    sweep = run_fig6(config, _baseline_policies(config, args),
                     episodes=args.episodes, seed=args.seed,
                     max_steps=args.max_steps)
    for metric in ("final_plcs_offline", "avg_nodes_compromised"):
        print(format_sweep_table(sweep, metric, "cleanup eff.",
                                 title=f"Fig 6 -- {metric}"))
        print()
    return 0


def cmd_fig10(args) -> int:
    from repro.eval import format_aggregate_table, run_fig10

    config = _resolve_config(args)
    results = run_fig10(config, _baseline_policies(config, args),
                        episodes=args.episodes, seed=args.seed,
                        max_steps=args.max_steps)
    for apt_name, table in results.items():
        print(format_aggregate_table(table, title=f"Fig 10 -- {apt_name}"))
        print()
    return 0


def cmd_fit_dbn(args) -> int:
    from repro.dbn import fit_dbn
    from repro.defenders import SemiRandomPolicy

    config = _resolve_config(args)
    tables = fit_dbn(
        lambda: _build_env(args, config),
        lambda: SemiRandomPolicy(rate=5.0, seed=args.seed),
        episodes=args.episodes,
        seed=args.seed,
        max_steps=args.max_steps,
    )
    tables.save(args.out)
    print(f"wrote DBN tables to {args.out}")
    return 0


def cmd_trace(args) -> int:
    from repro.sim.trace import record_episode

    config = _resolve_config(args)
    policy = _make_policy(args.policy, config, args.seed, args.dbn, args.qnet)
    env = _build_env(args, config, seed=args.seed)
    trace = record_episode(env, policy, seed=args.seed,
                           max_steps=args.max_steps)
    trace.to_jsonl(args.out)
    print(f"wrote {len(trace)}-step trace ({trace.total_alerts} alerts, "
          f"total reward {trace.total_reward:.1f}) to {args.out}")
    return 0


def cmd_config(args) -> int:
    config = _resolve_config(args)
    print(json.dumps(config_to_dict(config), indent=2, sort_keys=True))
    return 0


def cmd_selfplay(args) -> int:
    """Double-oracle self-play: train a defender against an attacker
    population while a CEM attacker oracle expands it; every best
    response is registered as a ``selfplay/*`` scenario."""
    import repro
    from repro.adversarial import (
        SelfPlayConfig,
        SelfPlayLoop,
        as_base_spec,
        load_population,
    )
    from repro.defenders.acso import ACSOPolicy
    from repro.rl import (
        ACSOFeaturizer,
        AttentionQNetwork,
        DQNConfig,
        DQNTrainer,
        QNetConfig,
    )

    config = _resolve_config(args)  # folds --max-steps into tmax
    spec = _resolve_spec(args)
    if spec is not None:
        base = spec.with_overrides(horizon=config.tmax)
    else:
        base = as_base_spec(config, scenario_id=f"selfplay-{args.preset}-base")

    tables = _load_tables(config, args.dbn, args.seed)
    env = _build_env(args, config, seed=args.seed)
    qnet = AttentionQNetwork(QNetConfig(), seed=args.seed)
    if args.qnet:
        from repro.nn import load_state

        load_state(qnet, args.qnet)
    trainer = DQNTrainer(
        env, qnet, ACSOFeaturizer(env.topology, tables),
        DQNConfig(batch_size=16, warmup=64, update_every=8,
                  target_update=200, eps_decay=0.995, buffer_size=20_000,
                  seed=args.seed),
    )
    initial = None
    if args.load_population:
        initial = load_population(args.load_population)
        print(f"loaded {len(initial)}-member population from "
              f"{args.load_population}")
    loop = SelfPlayLoop(
        base, trainer, ACSOPolicy(qnet, tables),
        reuse_pool=not args.no_reuse_pool,
        selfplay=SelfPlayConfig(
            rounds=args.rounds,
            train_episodes=args.train_episodes,
            train_max_steps=args.max_steps,
            cem_iterations=args.cem_iterations,
            cem_population=args.cem_population,
            fitness_episodes=args.fitness_episodes,
            eval_episodes=args.episodes,
            eval_max_steps=args.max_steps,
            seed=args.seed,
            backend=args.backend,
            num_workers=args.num_workers,
            run_name=args.run_name,
        ),
        initial_population=initial,
    )

    print(f"self-play on {base.scenario_id} ({args.rounds} round(s), "
          f"backend={args.backend}, "
          f"pool={'off' if loop.pool is None else 'persistent'})")
    try:
        for _ in range(args.rounds):
            record = loop.run_round()
            print(f"round {record.round_index + 1}: "
                  f"population utility {record.population_utility:>10.2f}  "
                  f"best response {record.best_response_utility:>10.2f}  "
                  f"exploitability {record.exploitability:>8.2f}  "
                  f"-> {record.best_response_id}")
    finally:
        if loop.pool is not None:
            print(f"worker pool: {loop.pool.stats}", file=sys.stderr)
        loop.close()

    print("\nexploitability report")
    print(f"{'round':>5} {'population':>12} {'best resp.':>12} "
          f"{'exploitability':>14}")
    for record in loop.rounds:
        print(f"{record.round_index + 1:>5} "
              f"{record.population_utility:>12.2f} "
              f"{record.best_response_utility:>12.2f} "
              f"{record.exploitability:>14.2f}")

    failures = 0
    for record in loop.rounds:
        # verified in-round against the then-frozen defender
        ok = record.verified_utility == record.best_response_utility
        failures += not ok
        print(f"verify repro.make({record.best_response_id!r}): "
              f"{'ok' if ok else f'MISMATCH ({record.verified_utility:.4f})'}")
    print(f"population size: {len(loop.population)} "
          f"(ids: {', '.join(m.scenario_id for m in loop.population.members)})")
    if args.save_population:
        loop.save(args.save_population)
        print(f"wrote population to {args.save_population}")
    return 1 if failures else 0


# ----------------------------------------------------------------------
# serving
# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    """Run the evaluation service until SIGINT/SIGTERM or POST /shutdown."""
    import asyncio
    import signal

    from repro.serve import EvalService, ServeServer

    async def _main() -> None:
        service = EvalService(
            args.db,
            default_backend=args.pool_backend,
            max_queue=args.max_queue,
            workers=args.workers,
            num_workers=args.num_workers,
            job_retries=args.job_retries,
            step_timeout=args.step_timeout,
            requeue_interrupted=args.requeue_interrupted,
        )
        server = ServeServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"repro serve listening on http://{server.host}:{server.port}")
        print(f"  run store: {args.db}  backend: {args.pool_backend}  "
              f"max queue: {args.max_queue}  job workers: {args.workers}",
              file=sys.stderr)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.serve_forever()
        print(f"drained; {service.store.path} holds "
              f"{len(service.jobs())} run(s) from this session",
              file=sys.stderr)

    asyncio.run(_main())
    return 0


def _submit_payload(args) -> dict:
    """The job JSON for ``repro submit`` (spec-by-id or inline spec)."""
    payload: dict = {
        "kind": args.kind,
        "policy": args.policy,
        "episodes": args.episodes,
        "seed": args.seed,
    }
    if args.scenario:
        payload["scenario"] = args.scenario
    else:
        # inline-spec submission: bridge the preset/--config into a
        # ScenarioSpec and ship it in the payload itself
        from repro.scenarios.serialization import spec_to_dict
        from repro.scenarios.spec import spec_for_config

        config = _resolve_config(args)
        try:
            spec = spec_for_config(config, f"submit-{args.preset}")
        except ValueError as exc:
            raise SystemExit(
                f"cannot express this config as an inline scenario: {exc}"
            )
        payload["spec"] = spec_to_dict(spec)
    if args.max_steps:
        payload["max_steps"] = args.max_steps
    if args.num_envs > 1:
        payload["num_envs"] = args.num_envs
    if args.backend:
        payload["backend"] = args.backend
    if args.num_workers:
        payload["num_workers"] = args.num_workers
    if args.tag:
        payload["tags"] = list(args.tag)
    if args.dbn:
        payload["dbn"] = args.dbn
    if args.qnet:
        payload["qnet"] = args.qnet
    if args.retries is not None:
        payload["retries"] = args.retries
    if args.step_timeout is not None:
        payload["step_timeout"] = args.step_timeout
    if args.kind == "selfplay":
        payload["cem_iterations"] = args.cem_iterations
        payload["cem_population"] = args.cem_population
        payload["fitness_episodes"] = args.fitness_episodes
    return payload


def cmd_submit(args) -> int:
    from repro.serve.client import (
        JobFailedError,
        ServeClient,
        ServeError,
        ServeQueueFullError,
    )

    client = ServeClient(args.host, args.port)
    try:
        job = client.submit(_submit_payload(args))
    except ServeQueueFullError as exc:
        raise SystemExit(f"server busy (backpressure): {exc}")
    except ServeError as exc:
        raise SystemExit(f"submission rejected: {exc}")
    except (ConnectionRefusedError, OSError) as exc:
        raise SystemExit(
            f"no server at {args.host}:{args.port} ({exc}); "
            "start one with 'repro serve'"
        )
    print(f"job {job['job_id']} {job['status']} "
          f"({job['kind']} of {job['scenario']} / {job['policy']})")
    if not args.wait:
        return 0
    try:
        job = client.wait(job["job_id"], timeout=args.timeout)
    except JobFailedError as exc:
        job = exc.job
        print(f"job {job['job_id']} finished: {job['status']}"
              + (f" ({job['error']})" if job.get("error") else ""))
        return 1
    print(f"job {job['job_id']} finished: {job['status']}")
    for name, value in (job.get("metrics") or {}).items():
        if isinstance(value, (list, tuple)) and len(value) == 2:
            print(f"  {name:<22} {value[0]:>12.2f} +- {value[1]:.2f}")
        elif isinstance(value, float):
            print(f"  {name:<22} {value:>12.2f}")
        else:
            print(f"  {name:<22} {value}")
    return 0


def _open_store(args):
    import os

    from repro.serve.store import RunStore

    if not os.path.exists(args.db):
        raise SystemExit(
            f"no run store at {args.db!r} (a server creates one; "
            "point --db at its file)"
        )
    return RunStore(args.db)


def cmd_runs_list(args) -> int:
    with _open_store(args) as store:
        runs = store.list_runs(scenario=args.scenario, status=args.status,
                               kind=args.kind, tag=args.tag,
                               limit=args.limit)
    if not runs:
        print("no matching runs")
        return 1
    print(f"{'run':<14} {'kind':<9} {'status':<10} {'scenario':<26} "
          f"{'policy':<9} {'seed':>5} {'eps':>4} {'wall':>8}  tags")
    for run in runs:
        wall = f"{run['wall_time']:.2f}s" if run["wall_time"] else "-"
        print(f"{run['run_id']:<14} {run['kind']:<9} {run['status']:<10} "
              f"{str(run['scenario_id']):<26} {str(run['policy']):<9} "
              f"{str(run['seed']):>5} {str(run['episodes']):>4} {wall:>8}  "
              f"{','.join(run['tags'])}")
    return 0


def cmd_runs_show(args) -> int:
    with _open_store(args) as store:
        run = store.get_run(args.run_id)
        episodes = store.episodes_of(args.run_id)
    if run is None:
        raise SystemExit(f"unknown run {args.run_id!r}")
    for key in ("run_id", "kind", "status", "scenario_id", "policy", "seed",
                "episodes", "code_version", "wall_time", "error"):
        if run.get(key) is not None:
            print(f"{key:<14} {run[key]}")
    if run.get("tags"):
        print(f"{'tags':<14} {','.join(run['tags'])}")
    if run.get("metrics"):
        print("metrics")
        for name, value in run["metrics"].items():
            if isinstance(value, list) and len(value) == 2:
                print(f"  {name:<22} {value[0]:>12.2f} +- {value[1]:.2f}")
            else:
                print(f"  {name:<22} {value}")
    if episodes:
        print(f"episode records ({len(episodes)})")
        for episode in episodes:
            wall = (f"{episode['wall_time']:.3f}s"
                    if episode["wall_time"] is not None else "-")
            print(f"  [{episode['episode_index']:>3}] seed="
                  f"{episode['seed']} wall={wall} {episode['detail']}")
    return 0


_OPE_QNET_COMPACT = dict(d_model=16, n_heads=2, encoder_hidden=32,
                         head_hidden=32)


def _ope_qnet_config(args=None, meta: dict | None = None):
    """The Q-network geometry for OPE: compact by default, exact when
    replaying a trace (``meta`` wins; a user ``--qnet`` file implies the
    full default geometry its training used)."""
    from repro.rl import QNetConfig

    if meta is not None and meta.get("qnet_config"):
        return QNetConfig(**meta["qnet_config"])
    if args is not None and getattr(args, "qnet", None):
        return QNetConfig()
    return QNetConfig(**_OPE_QNET_COMPACT)


def cmd_ope_record(args) -> int:
    """Stream logged episodes from vectorized rollouts into a trace dir."""
    import dataclasses

    from repro.nn import load_state, save_state
    from repro.rl import AttentionQNetwork
    from repro.validation import StochasticQPolicy, TraceWriter, \
        record_episodes_vec

    config = _resolve_config(args)
    tables = _load_tables(config, args.dbn, args.seed)
    qnet_config = _ope_qnet_config(args)
    qnet = AttentionQNetwork(qnet_config, seed=args.seed)
    if args.qnet:
        load_state(qnet, args.qnet)

    def behavior_factory(ep: int) -> StochasticQPolicy:
        return StochasticQPolicy(qnet, tables,
                                 temperature=args.temperature,
                                 epsilon=args.epsilon,
                                 seed=args.seed + ep)

    meta = {
        "config": config_to_dict(config),
        "scenario": getattr(args, "scenario", None),
        "qnet_config": dataclasses.asdict(qnet_config),
        "qnet_seed": args.seed,
        "behavior": {"policy": "stochastic-q",
                     "temperature": args.temperature,
                     "epsilon": args.epsilon},
        "episodes": args.episodes,
        "seed": args.seed,
    }
    venv = _build_vec_env(args, config, args.num_envs, args.seed)
    try:
        with TraceWriter(args.out, shard_rows=args.shard_rows,
                         meta=meta) as writer:
            transitions = record_episodes_vec(
                venv, behavior_factory, args.episodes, writer,
                seed=args.seed,
            )
            # provenance next to the shards: the exact tables and
            # weights a later `repro ope report` must replay against
            tables.save(f"{args.out}/dbn.npz")
            save_state(qnet, f"{args.out}/qnet.npz")
    finally:
        venv.close()
    print(f"recorded {args.episodes} episodes / {transitions} transitions "
          f"to {args.out} ({writer.episodes_written} episodes in manifest)")
    return 0


def cmd_ope_report(args) -> int:
    """Run the full estimator suite over an on-disk trace."""
    import os

    import repro
    from repro.dbn import DBNTables
    from repro.nn import load_state
    from repro.rl import AttentionQNetwork
    from repro.validation import StochasticQPolicy, TraceDataset, run_ope_suite

    dataset = TraceDataset(args.trace)
    meta = dataset.meta
    if not meta.get("config"):
        raise SystemExit(
            f"trace {args.trace!r} carries no config in its manifest meta; "
            "re-record it with `repro ope record`"
        )
    config = config_from_dict(meta["config"])
    env = repro.make_env(config, seed=0)  # topology host for binding

    dbn_path = args.dbn or os.path.join(args.trace, "dbn.npz")
    if not os.path.exists(dbn_path):
        raise SystemExit(f"no DBN tables at {dbn_path!r} (pass --dbn)")
    tables = DBNTables.load(dbn_path)

    qnet_config = _ope_qnet_config(args, meta)
    qnet = AttentionQNetwork(qnet_config, seed=int(meta.get("qnet_seed", 0)))
    qnet.bind_topology(env.topology)
    qnet_path = args.qnet or os.path.join(args.trace, "qnet.npz")
    if os.path.exists(qnet_path):
        load_state(qnet, qnet_path)
    target = StochasticQPolicy(qnet, tables,
                               temperature=args.target_temperature,
                               epsilon=args.target_epsilon,
                               seed=args.seed)
    eval_qnet = AttentionQNetwork(qnet_config, seed=args.fqe_seed)
    eval_qnet.bind_topology(env.topology)

    report = run_ope_suite(
        dataset, target, eval_qnet, clip=args.clip, alpha=args.alpha,
        n_boot=args.n_boot, bootstrap_seed=args.bootstrap_seed,
        fqe_options={"iterations": args.fqe_iterations,
                     "epochs_per_iteration": args.fqe_epochs,
                     "chunk_episodes": args.fqe_chunk,
                     "seed": args.fqe_seed},
    )
    print(f"{dataset.num_transitions} transitions / {len(dataset)} episodes "
          f"from {args.trace} (clip={args.clip}, alpha={args.alpha})")
    for estimate in report.estimates.values():
        ess = "" if estimate.ess != estimate.ess \
            else f"  ESS {estimate.ess:.1f}"
        print(f"  {estimate.method:<4} {estimate.estimate:>12.3f}  "
              f"[{estimate.lower:.3f}, {estimate.upper:.3f}]{ess}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"wrote report JSON to {args.json}")
    if args.store:
        from repro.serve.store import RunStore

        with RunStore(args.store) as store:
            run_id = store.create_run(
                "ope-report", run_id=args.run_id,
                scenario_id=meta.get("scenario"),
                policy="stochastic-q", seed=args.seed,
                episodes=report.episodes,
                detail={"trace": str(args.trace), "clip": args.clip,
                        "alpha": args.alpha,
                        "target_temperature": args.target_temperature,
                        "target_epsilon": args.target_epsilon},
                status="queued",
            )
            store.mark_running(run_id)
            store.finish_run(run_id, metrics=report.to_dict())
        print(f"run_id={run_id}")
    return 0


def cmd_ope_promote(args) -> int:
    """Judge a candidate ope-report run against a baseline. Exit 0 only
    on a ``promote`` verdict, 1 on ``hold`` (the CI gate contract);
    unusable inputs (unknown run, wrong run kind, missing estimate)
    exit 2 so a gating job cannot mistake an operator error for a
    hold."""
    from repro.serve.promotion import PromotionError, promote_checkpoint

    try:
        baseline: str | float = float(args.baseline)
    except ValueError:
        baseline = args.baseline
    args.db = args.store
    with _open_store(args) as store:
        try:
            decision = promote_checkpoint(
                store, args.run_id, baseline, estimator=args.estimator,
                min_margin=args.min_margin,
            )
        except PromotionError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(decision, indent=1, sort_keys=True))
    else:
        against = (decision["baseline_run_id"]
                   or f"value {decision['baseline_lower']:.3f}")
        print(f"{decision['verdict']}: candidate {args.run_id} "
              f"{decision['estimator']} lower bound "
              f"{decision['candidate_lower']:.3f} vs baseline {against} "
              f"(margin {decision['min_margin']:.3f}) "
              f"[{decision['promotion_id']}]")
    return 0 if decision["verdict"] == "promote" else 1


def cmd_check(args) -> int:
    """Static-analysis gates: AST enforcement of the determinism,
    transport-schema, and resource-lifecycle contracts (see README
    "Static analysis gates")."""
    from repro.analysis.runner import main as analysis_main

    argv = []
    if args.root:
        argv.append(args.root)
    argv += ["--format", args.format]
    if args.policy:
        argv += ["--policy", args.policy]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.list_rules:
        argv.append("--list-rules")
    return analysis_main(argv)


def cmd_scenarios(args) -> int:
    from repro.scenarios import list_scenarios

    specs = list_scenarios(tag=args.tag)
    if not specs:
        print(f"no scenarios tagged {args.tag!r}")
        return 1
    print(f"{'id':<26} {'network':<8} {'attacker':<14} {'reward':<15} tags")
    for spec in specs:
        attacker = spec.attacker if spec.attacker != "fsm" else (
            f"{spec.profile}:{spec.objective}/{spec.vector}"
            if spec.objective else f"{spec.profile}:sampled"
        )
        print(f"{spec.scenario_id:<26} {spec.network:<8} {attacker:<14} "
              f"{spec.reward_variant:<15} {','.join(spec.tags)}")
        if args.verbose and spec.description:
            print(f"    {spec.description}")
    return 0


# ----------------------------------------------------------------------
def _add_common(parser: argparse.ArgumentParser,
                episodes_default: int = 2) -> None:
    parser.add_argument("--scenario", default=None,
                        help="registered scenario id (see 'repro scenarios'; "
                             "overrides --preset/--config)")
    parser.add_argument("--preset", choices=sorted(_PRESETS), default="small",
                        help="network preset (default: small)")
    parser.add_argument("--config", help="JSON config file (overrides preset)")
    parser.add_argument("--episodes", type=int, default=episodes_default)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-steps", type=int, default=None,
                        help="cap episode length (default: config tmax)")
    parser.add_argument("--dbn", default=None,
                        help="DBN tables .npz (fit on the fly if omitted)")
    parser.add_argument("--qnet", default=None,
                        help="trained Q-network .npz for the acso policy")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Autonomous Attack Mitigation for "
                    "Industrial Control Systems' (DSN 2022).",
    )
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topology", help="print a network inventory")
    _add_common(p)
    p.set_defaults(func=cmd_topology)

    p = sub.add_parser("simulate", help="run one defender policy")
    _add_common(p)
    p.add_argument("--policy", default="playbook",
                   choices=("noop", "playbook", "random", "expert", "acso"))
    p.add_argument("--num-envs", type=int, default=1,
                   help="fan episodes over N vectorized environments")
    p.add_argument("--backend", choices=("sync", "batched", "process", "shm", "auto"),
                   default="sync",
                   help="vector-env execution backend: in-process lanes "
                        "(sync), worker processes (process), worker "
                        "processes with shared-memory batches (shm), or "
                        "picked from cpu count and batch width (auto)")
    p.add_argument("--num-workers", type=int, default=None,
                   help="worker processes for the process/shm backends "
                        "(default: min(num-envs, cpu count))")
    p.add_argument("--reuse-pool", action="store_true",
                   help="acquire the parallel backend from a persistent "
                        "worker pool (scenario runs only; pool stats are "
                        "reported on stderr)")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("scenarios", help="list the scenario registry")
    p.add_argument("--tag", default=None,
                   help="only scenarios carrying this tag")
    p.add_argument("--verbose", action="store_true",
                   help="include descriptions")
    p.set_defaults(func=cmd_scenarios)

    p = sub.add_parser("evaluate", help="Table 2 over baseline policies")
    _add_common(p)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser(
        "selfplay",
        help="double-oracle self-play; best responses become "
             "selfplay/* scenarios",
    )
    _add_common(p)
    p.add_argument("--rounds", type=int, default=2,
                   help="defender/attacker oracle rounds (default: 2)")
    p.add_argument("--train-episodes", type=int, default=2,
                   help="defender-oracle training episodes per round, one "
                        "vector-env lane each (default: 2)")
    p.add_argument("--cem-iterations", type=int, default=2,
                   help="CEM generations per attacker oracle (default: 2)")
    p.add_argument("--cem-population", type=int, default=4,
                   help="CEM candidates per generation, evaluated as one "
                        "vectorized fan-out (default: 4)")
    p.add_argument("--fitness-episodes", type=int, default=1,
                   help="episodes per CEM fitness evaluation (default: 1)")
    p.add_argument("--backend", choices=("sync", "batched", "process", "shm", "auto"),
                   default="sync",
                   help="vector-env backend for both oracles")
    p.add_argument("--num-workers", type=int, default=None,
                   help="worker processes for the process/shm backends")
    p.add_argument("--no-reuse-pool", action="store_true",
                   help="spawn a fresh worker pool per oracle call instead "
                        "of re-laning one persistent pool across rounds "
                        "and CEM generations")
    p.add_argument("--run-name", default=None,
                   help="name used in emitted selfplay/<run>-rN-brK ids "
                        "(default: the base scenario id)")
    p.add_argument("--save-population", default=None, metavar="PATH",
                   help="write the final population (specs + weights + "
                        "round records) as JSON")
    p.add_argument("--load-population", default=None, metavar="PATH",
                   help="resume from a saved population (members are "
                        "re-registered)")
    p.set_defaults(func=cmd_selfplay, max_steps=150)

    p = sub.add_parser("fig6", help="cleanup-effectiveness sweep")
    _add_common(p)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("fig10", help="APT1 vs APT2 robustness")
    _add_common(p)
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser("fit-dbn", help="fit DBN tables from random episodes")
    _add_common(p, episodes_default=8)
    p.add_argument("--out", default="dbn_tables.npz")
    p.set_defaults(func=cmd_fit_dbn)

    p = sub.add_parser("trace", help="record an episode trace to JSONL")
    _add_common(p, episodes_default=1)
    p.add_argument("--policy", default="playbook",
                   choices=("noop", "playbook", "random", "expert", "acso"))
    p.add_argument("--out", default="episode_trace.jsonl")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("config", help="print a preset as editable JSON")
    _add_common(p)
    p.set_defaults(func=cmd_config)

    p = sub.add_parser(
        "serve",
        help="run the evaluation service (HTTP/JSON jobs, SQLite run store)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="listen port (0 picks an ephemeral one; default: 8642)")
    p.add_argument("--db", default="repro_runs.sqlite",
                   help="SQLite run-store path (default: repro_runs.sqlite)")
    p.add_argument("--pool-backend", choices=("sync", "batched", "process", "shm", "auto"),
                   default="sync", dest="pool_backend",
                   help="vector-env backend jobs draw from the shared pool "
                        "(default: sync)")
    p.add_argument("--max-queue", type=int, default=64,
                   help="queued-job limit before submissions get 429 "
                        "(default: 64)")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent job executors (default: 1; episode "
                        "parallelism comes from the pool, not from here)")
    p.add_argument("--num-workers", type=int, default=None,
                   help="worker processes per pooled vector env")
    p.add_argument("--job-retries", type=int, default=2, dest="job_retries",
                   help="re-runs granted to a job that dies to a worker "
                        "fault (default: 2)")
    p.add_argument("--step-timeout", type=float, default=None,
                   dest="step_timeout", metavar="SECONDS",
                   help="per-step watchdog on pooled jobs; a wedged worker "
                        "is killed and its lanes recovered (default: off)")
    p.add_argument("--requeue-interrupted", action="store_true",
                   dest="requeue_interrupted",
                   help="resubmit runs a crashed server left 'running' "
                        "(they are always marked 'interrupted' at startup)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="send a job to a running server")
    _add_common(p, episodes_default=1)
    p.add_argument("--kind", default="evaluate",
                   choices=("evaluate", "simulate", "selfplay"))
    p.add_argument("--policy", default="playbook",
                   choices=("noop", "playbook", "random", "expert", "acso"))
    p.add_argument("--num-envs", type=int, default=1,
                   help="fan the job's episodes over N pooled lanes")
    p.add_argument("--backend", choices=("sync", "batched", "process", "shm", "auto"),
                   default=None,
                   help="override the server's pool backend for this job")
    p.add_argument("--num-workers", type=int, default=None)
    p.add_argument("--tag", action="append", default=None, metavar="TAG",
                   help="attach a tag to the recorded run (repeatable)")
    p.add_argument("--retries", type=int, default=None,
                   help="re-runs if the job dies to a worker fault "
                        "(default: the server's --job-retries)")
    p.add_argument("--step-timeout", type=float, default=None,
                   dest="step_timeout", metavar="SECONDS",
                   help="per-step watchdog for this job's pooled env "
                        "(default: the server's --step-timeout)")
    p.add_argument("--cem-iterations", type=int, default=2)
    p.add_argument("--cem-population", type=int, default=4)
    p.add_argument("--fitness-episodes", type=int, default=1)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--wait", action="store_true",
                   help="poll until the job finishes and print its metrics")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="--wait limit in seconds (default: 300)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "check",
        help="static-analysis gates (RNG discipline, transport schema, "
             "resource lifecycle, forbidden imports)",
    )
    p.add_argument("root", nargs="?", default=None,
                   help="directory to analyze (default: the repro package)")
    p.add_argument("--format", choices=("text", "json", "github"),
                   default="text")
    p.add_argument("--policy", default=None, metavar="FILE",
                   help="JSON policy overrides (see repro.analysis.policy)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline of grandfathered findings")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--write-baseline", action="store_true",
                   help="write current findings as the new baseline "
                        "(justifications must then be edited)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "ope", help="offline policy evaluation over recorded traces"
    )
    ope_sub = p.add_subparsers(dest="ope_command", required=True)

    q = ope_sub.add_parser(
        "record", help="record logged episodes into a columnar trace dir"
    )
    _add_common(q, episodes_default=4)
    q.add_argument("--out", required=True,
                   help="trace directory to create (must not exist)")
    q.add_argument("--num-envs", type=int, default=4)
    q.add_argument("--backend", default="sync",
                   choices=("sync", "batched", "process", "shm", "auto"))
    q.add_argument("--num-workers", type=int, default=None)
    q.add_argument("--shard-rows", type=int, default=65536,
                   help="rotate shards at this many records (default 65536)")
    q.add_argument("--temperature", type=float, default=1.0,
                   help="behaviour softmax temperature (default 1.0)")
    q.add_argument("--epsilon", type=float, default=0.3,
                   help="behaviour uniform-mixture weight (default 0.3)")
    q.set_defaults(func=cmd_ope_record)

    q = ope_sub.add_parser(
        "report", help="run the DM/DR/IS/WIS/PDIS + FQE suite over a trace"
    )
    q.add_argument("trace", help="trace directory from `repro ope record`")
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--dbn", default=None,
                   help="DBN tables .npz (default: the trace's dbn.npz)")
    q.add_argument("--qnet", default=None,
                   help="target Q-network .npz (default: the trace's "
                        "qnet.npz)")
    q.add_argument("--target-temperature", type=float, default=0.25)
    q.add_argument("--target-epsilon", type=float, default=0.05)
    q.add_argument("--clip", type=float, default=None,
                   help="importance-ratio clip (default: none)")
    q.add_argument("--alpha", type=float, default=0.05)
    q.add_argument("--n-boot", type=int, default=2000)
    q.add_argument("--bootstrap-seed", type=int, default=0)
    q.add_argument("--fqe-iterations", type=int, default=3)
    q.add_argument("--fqe-epochs", type=int, default=1)
    q.add_argument("--fqe-chunk", type=int, default=64)
    q.add_argument("--fqe-seed", type=int, default=0)
    q.add_argument("--json", default=None,
                   help="write the report JSON to this file")
    q.add_argument("--store", default=None,
                   help="record an ope-report run in this run store")
    q.add_argument("--run-id", default=None,
                   help="run id for --store (default: random)")
    q.set_defaults(func=cmd_ope_report)

    q = ope_sub.add_parser(
        "promote", help="compare CI lower bounds; exit 0 only on 'promote'"
    )
    q.add_argument("run_id", help="candidate ope-report run id")
    q.add_argument("baseline",
                   help="baseline ope-report run id, or a number (fixed "
                        "value floor)")
    q.add_argument("--store", default="repro_runs.sqlite")
    q.add_argument("--estimator", default="DR",
                   choices=("DM", "FQE", "DR", "OIS", "WIS", "PDIS"))
    q.add_argument("--min-margin", type=float, default=0.0)
    q.add_argument("--json", action="store_true",
                   help="print the decision as JSON")
    q.set_defaults(func=cmd_ope_promote)

    p = sub.add_parser("runs", help="query the run store")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    q = runs_sub.add_parser("list", help="list recorded runs, newest first")
    q.add_argument("--db", default="repro_runs.sqlite")
    q.add_argument("--scenario", default=None)
    q.add_argument("--status", default=None,
                   choices=("queued", "running", "done", "error", "cancelled"))
    q.add_argument("--kind", default=None,
                   choices=("evaluate", "simulate", "selfplay", "ope-report"))
    q.add_argument("--tag", default=None)
    q.add_argument("--limit", type=int, default=50)
    q.set_defaults(func=cmd_runs_list)

    q = runs_sub.add_parser("show", help="one run with its episode records")
    q.add_argument("run_id")
    q.add_argument("--db", default="repro_runs.sqlite")
    q.set_defaults(func=cmd_runs_show)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
