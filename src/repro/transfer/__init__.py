"""Cross-network policy transfer and fine-tuning.

The attention Q-network's parameter count is independent of the
protected network's size (paper Section 4.4), which makes weight
transfer across topologies a pure re-bind. The paper's future work
proposes exactly this deployment path: "methods for pre-training models
using simulations, and fine-tuning for deployment to specific ICS
networks should be explored" (Section 7).

:mod:`repro.transfer.study` implements the full protocol: pre-train on
a source network, evaluate zero-shot on a target network, fine-tune
there, and compare against a from-scratch policy given the same target
budget.
"""

from repro.transfer.study import (
    TransferStudy,
    evaluate_greedy_policy,
    run_transfer_study,
    train_policy,
)

__all__ = [
    "TransferStudy",
    "evaluate_greedy_policy",
    "run_transfer_study",
    "train_policy",
]
