"""The pre-train / zero-shot / fine-tune / from-scratch protocol.

All four measurements answer one deployment question: how much target-
network experience does a transferred policy need compared to one
trained in place? The attention architecture's claim is "little to
none" -- its parameters never see node count, so source-network
training transfers structurally.

DBN tables are also size-agnostic (per-node beliefs share one
conditional probability table), so a source-fitted filter can be
carried to the target network; callers may pass a target-fitted table
instead when one is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import repro
from repro.config import SimConfig
from repro.dbn.filter import DBNTables
from repro.defenders.acso import ACSOPolicy
from repro.eval.metrics import AggregateResult
from repro.eval.runner import evaluate_policy
from repro.rl.dqn import DQNConfig, DQNTrainer, EpisodeStats
from repro.rl.features import ACSOFeaturizer
from repro.rl.qnetwork import AttentionQNetwork

__all__ = [
    "TransferStudy",
    "train_policy",
    "evaluate_greedy_policy",
    "run_transfer_study",
]


def train_policy(
    config: SimConfig,
    qnet: AttentionQNetwork,
    tables: DBNTables,
    dqn_config: DQNConfig,
    episodes: int,
    seed: int = 0,
    max_steps: int | None = None,
) -> list[EpisodeStats]:
    """Run DQN episodes on ``config``'s network, training in place."""
    env = repro.make_env(config, seed=seed)
    featurizer = ACSOFeaturizer(env.topology, tables)
    trainer = DQNTrainer(env, qnet, featurizer, dqn_config)
    return trainer.train(episodes=episodes, seed=seed, max_steps=max_steps)


def evaluate_greedy_policy(
    config: SimConfig,
    qnet: AttentionQNetwork,
    tables: DBNTables,
    episodes: int,
    seed: int = 0,
    max_steps: int | None = None,
) -> AggregateResult:
    """Greedy-ACSO evaluation of ``qnet`` on ``config``'s network."""
    env = repro.make_env(config, seed=seed)
    policy = ACSOPolicy(qnet, tables)
    aggregate, _ = evaluate_policy(env, policy, episodes, seed=seed,
                                   max_steps=max_steps)
    return aggregate


@dataclass
class TransferStudy:
    """All measurements from one transfer protocol run."""

    #: evaluation of the pre-trained policy on its source network
    source: AggregateResult
    #: the same weights evaluated on the target network, no adaptation
    zero_shot: AggregateResult
    #: after fine-tuning on the target network (None if budget was 0)
    finetuned: AggregateResult | None
    #: a fresh policy trained on the target with the fine-tune budget
    scratch: AggregateResult | None
    #: training curves for the fine-tune and scratch runs
    finetune_history: list[EpisodeStats] = field(default_factory=list)
    scratch_history: list[EpisodeStats] = field(default_factory=list)
    #: parameter count (identical across networks by construction)
    n_parameters: int = 0


def run_transfer_study(
    source_config: SimConfig,
    target_config: SimConfig,
    qnet: AttentionQNetwork,
    tables: DBNTables,
    dqn_config: DQNConfig | None = None,
    pretrain_episodes: int = 4,
    finetune_episodes: int = 2,
    eval_episodes: int = 4,
    seed: int = 0,
    max_steps: int | None = None,
    target_tables: DBNTables | None = None,
) -> TransferStudy:
    """Execute the full protocol and return every measurement.

    ``qnet`` may arrive pre-trained (set ``pretrain_episodes=0`` to
    skip source training); it is fine-tuned in place, so the returned
    study's "finetuned" row reflects the final state of the caller's
    network. The scratch baseline uses a fresh network with the same
    configuration and seed.
    """
    dqn_config = dqn_config or DQNConfig()
    target_tables = target_tables or tables

    if pretrain_episodes > 0:
        train_policy(source_config, qnet, tables, dqn_config,
                     pretrain_episodes, seed=seed, max_steps=max_steps)
    source = evaluate_greedy_policy(
        source_config, qnet, tables, eval_episodes, seed=seed + 100,
        max_steps=max_steps,
    )
    n_params_source = qnet.n_parameters()

    zero_shot = evaluate_greedy_policy(
        target_config, qnet, target_tables, eval_episodes, seed=seed + 200,
        max_steps=max_steps,
    )
    if qnet.n_parameters() != n_params_source:
        raise AssertionError(
            "attention network grew parameters across topologies; "
            "the architecture contract is broken"
        )

    finetuned = None
    finetune_history: list[EpisodeStats] = []
    scratch = None
    scratch_history: list[EpisodeStats] = []
    if finetune_episodes > 0:
        finetune_history = train_policy(
            target_config, qnet, target_tables, dqn_config,
            finetune_episodes, seed=seed + 300, max_steps=max_steps,
        )
        finetuned = evaluate_greedy_policy(
            target_config, qnet, target_tables, eval_episodes,
            seed=seed + 200, max_steps=max_steps,
        )
        fresh = AttentionQNetwork(qnet.config, seed=dqn_config.seed)
        scratch_history = train_policy(
            target_config, fresh, target_tables, dqn_config,
            finetune_episodes, seed=seed + 300, max_steps=max_steps,
        )
        scratch = evaluate_greedy_policy(
            target_config, fresh, target_tables, eval_episodes,
            seed=seed + 200, max_steps=max_steps,
        )

    return TransferStudy(
        source=source,
        zero_shot=zero_shot,
        finetuned=finetuned,
        scratch=scratch,
        finetune_history=finetune_history,
        scratch_history=scratch_history,
        n_parameters=n_params_source,
    )
