"""Configuration dataclasses for the INASIM reproduction.

All simulator, attacker, IDS, and reward parameters are centralized here.
Defaults follow the paper (Section 3, Tables 3-5, and the appendix); the
preset constructors build the three network sizes used in the paper:

* :func:`paper_network` -- 25 L2 workstations, 3 servers, 5 HMIs, 50 PLCs
  (Fig 2), the evaluation network.
* :func:`small_network` -- 10 L2 workstations, 3 servers, 3 HMIs, 30 PLCs,
  the grid-search / training network from Section 4.2.
* :func:`tiny_network` -- a minimal network for fast unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "TopologyConfig",
    "IDSConfig",
    "APTConfig",
    "RewardConfig",
    "SimConfig",
    "paper_network",
    "small_network",
    "tiny_network",
]


@dataclass(frozen=True)
class TopologyConfig:
    """Shape of the simulated PERA level 1/2 network (paper Fig 2)."""

    l2_workstations: int = 25
    #: server roles instantiated on level 2 (order fixes node ids)
    l2_servers: tuple[str, ...] = ("opc", "historian", "domain_controller")
    l1_hmis: int = 5
    plcs: int = 50

    @property
    def n_hosts(self) -> int:
        """Workstation-class nodes (L2 workstations + L1 HMIs)."""
        return self.l2_workstations + self.l1_hmis

    @property
    def n_servers(self) -> int:
        return len(self.l2_servers)

    @property
    def n_nodes(self) -> int:
        """All computing nodes (excludes PLCs)."""
        return self.n_hosts + self.n_servers


@dataclass(frozen=True)
class IDSConfig:
    """Alert-generation model (Section 3.1 and appendix IDS module)."""

    #: hourly probability of a passive alert on a compromised node
    passive_alert_rate: float = 0.1
    #: hourly false-alert probability per PERA level, for severity 1, 2, 3
    false_alert_rates: tuple[float, float, float] = (5e-2, 5e-3, 2.5e-3)
    #: device factors multiplying a message action's base alert rate
    switch_factor: float = 1.0
    router_factor: float = 2.0
    firewall_factor: float = 5.0


@dataclass(frozen=True)
class APTConfig:
    """Attacker profile (Section 3.2).

    The two qualitative parameters select one of the four FSM
    configurations of Fig 8; the quantitative parameters set the
    thresholds and labor budget. ``cleanup_effectiveness`` is the Fig 6
    perturbation knob: detection probabilities on a node with the
    *Malware Cleaned* condition are multiplied by
    ``(1 - cleanup_effectiveness)``.
    """

    objective: str = "destroy"  # "disrupt" | "destroy"
    vector: str = "opc"  # "opc" | "hmi"
    lateral_threshold: int = 3
    hmi_threshold: int = 3
    plc_threshold_destroy: int = 15
    plc_threshold_disrupt: int = 25
    labor_rate: int = 2
    cleanup_effectiveness: float = 0.5
    #: number of PLCs discovered per completed Discover-PLC scan
    plcs_per_discovery: int = 5
    #: mean hours for the APT to re-establish a beachhead (new initial
    #: intrusion, e.g. phishing) after losing all network access
    reintrusion_hours: int = 120
    #: divide APT action durations by this factor (training speed-up)
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.objective not in ("disrupt", "destroy"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.vector not in ("opc", "hmi"):
            raise ValueError(f"unknown vector {self.vector!r}")
        if not 0.0 <= self.cleanup_effectiveness <= 1.0:
            raise ValueError("cleanup_effectiveness must be in [0, 1]")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")

    @property
    def plc_threshold(self) -> int:
        if self.objective == "destroy":
            return self.plc_threshold_destroy
        return self.plc_threshold_disrupt


@dataclass(frozen=True)
class RewardConfig:
    """Reward function parameters (eqs 1-4)."""

    lambda_it: float = 0.1
    disrupted_penalty: float = 0.05
    destroyed_penalty: float = 0.1
    gamma: float = 0.9995

    @property
    def terminal_reward(self) -> float:
        """1 / (1 - gamma), granted on reaching the episode time limit."""
        return 1.0 / (1.0 - self.gamma)


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    ids: IDSConfig = field(default_factory=IDSConfig)
    apt: APTConfig = field(default_factory=APTConfig)
    reward: RewardConfig = field(default_factory=RewardConfig)
    #: episode horizon in hours (paper: 5,000 ~ six months)
    tmax: int = 5000

    def with_apt(self, apt: APTConfig) -> "SimConfig":
        return replace(self, apt=apt)

    def with_tmax(self, tmax: int) -> "SimConfig":
        return replace(self, tmax=tmax)


def paper_network(**overrides) -> SimConfig:
    """The full evaluation network from Fig 2."""
    return SimConfig(topology=TopologyConfig(), **overrides)


def small_network(**overrides) -> SimConfig:
    """The grid-search network from Section 4.2 (10 hosts, 3 HMIs, 30 PLCs)."""
    topo = TopologyConfig(l2_workstations=10, l1_hmis=3, plcs=30)
    return SimConfig(topology=topo, **overrides)


def tiny_network(tmax: int = 300, **overrides) -> SimConfig:
    """A minimal network for unit tests (fast attacker, short horizon)."""
    topo = TopologyConfig(
        l2_workstations=3, l2_servers=("opc", "historian"), l1_hmis=1, plcs=4
    )
    apt = APTConfig(
        lateral_threshold=2,
        hmi_threshold=1,
        plc_threshold_destroy=2,
        plc_threshold_disrupt=3,
        time_scale=10.0,
    )
    return SimConfig(topology=topo, apt=apt, tmax=tmax, **overrides)
