"""Reproduction of "Autonomous Attack Mitigation for Industrial Control
Systems" (Mern et al., DSN 2022).

Public entry points:

* :func:`make` / :func:`make_vec` -- build a single environment or an
  N-way batched :class:`~repro.sim.vec_env.VectorEnv` from a registered
  scenario id (``repro.make("inasim-paper-v1")``).
* :func:`register` / :func:`list_scenarios` / :func:`get_scenario` --
  the scenario registry (see :mod:`repro.scenarios`).
* :func:`make_env` -- legacy config-first construction; kept as a thin
  compatibility shim over the scenario machinery.
* :mod:`repro.config` -- network presets (`paper_network`, `small_network`).
* :mod:`repro.defenders` -- baseline and learned defender policies.
* :mod:`repro.rl` -- the DQN training stack for the ACSO agent, plus the
  Rainbow extensions (dueling, C51, noisy nets) and the DRQN baseline.
* :mod:`repro.eval` -- the experiment harness for Table 2 / Fig 6 / Fig 10,
  text charts, markdown reports, and SOC trace analytics.
* :mod:`repro.adversarial` -- attacker best-response search and self-play
  (the paper's future work, Section 7).
* :mod:`repro.validation` -- off-policy evaluation and policy certification.
* :mod:`repro.transfer` -- cross-network pre-train / fine-tune studies.
* :mod:`repro.cli` -- the ``repro`` command-line entry point.
"""

from __future__ import annotations

from repro.config import (
    APTConfig,
    SimConfig,
    paper_network,
    small_network,
    tiny_network,
)
from repro.scenarios import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    make,
    make_vec,
    make_vec_from_specs,
    register,
)

__version__ = "1.2.0"

__all__ = [
    "APTConfig",
    "SimConfig",
    "ScenarioSpec",
    "paper_network",
    "small_network",
    "tiny_network",
    "make",
    "make_vec",
    "make_vec_from_specs",
    "make_env",
    "register",
    "get_scenario",
    "list_scenarios",
]


def make_env(
    config: SimConfig,
    seed: int | None = None,
    attacker=None,
    sample_qualitative: bool = True,
    record_truth: bool = True,
):
    """Build a simulation environment with the paper's FSM attacker.

    Compatibility shim predating the scenario registry: prefer
    ``repro.make("inasim-paper-v1")`` and friends for named, shareable
    configurations. ``make_env(paper_network())`` is equivalent to
    ``make("inasim-paper-v1")``.

    Parameters
    ----------
    config:
        Simulation configuration (see :func:`repro.config.paper_network`).
    seed:
        Root seed; episodes are deterministic given (config, seed).
    attacker:
        Optional custom attacker policy; defaults to the FSM attacker
        parameterised by ``config.apt``.
    sample_qualitative:
        When using the default attacker, draw the (objective, vector)
        pair uniformly at each reset (covers the four Fig 8 configs).
    """
    from repro.attacker import FSMAttacker
    from repro.sim.env import InasimEnv

    if attacker is None:
        attacker = FSMAttacker(config.apt, sample_qualitative=sample_qualitative)
    return InasimEnv(config, attacker, seed=seed, record_truth=record_truth)
