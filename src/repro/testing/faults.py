"""Seeded fault injection for the worker-pool backends.

Chaos tests (and the CI ``chaos-smoke`` job) must exercise the *real*
failure paths — worker death, wedged steps, corrupted transport frames,
relane crashes — not mocked pipes. This module arms the worker
processes themselves: each one builds a :class:`FaultInjector` from an
environment-carried :class:`FaultPlan`, and the injector's hooks fire
inside the worker's own command loop (``os._exit`` for kills,
``time.sleep`` for wedges, a post-seal byte flip for corruption).

Activation is environment-driven so the plan crosses the
``multiprocessing`` fork/spawn boundary for free:

* ``REPRO_FAULTS`` holds the JSON-encoded plan;
* ``REPRO_FRAME_CHECK=1`` arms CRC32 frame sealing on the transport
  (armed automatically by :func:`inject_faults` whenever the plan
  corrupts frames — corruption is undetectable without it).

Every scheduled event picks its victim worker with a hash seeded by
``(plan.seed, event)``, so all workers agree on the victim without
communicating and the same plan kills the same workers at the same
steps on any host. Step counts are per worker-process lifetime: a
respawned worker restarts at zero (restore replay does not count as
steps), which keeps a one-shot corruption or kill from re-firing in an
endless loop.
"""

from __future__ import annotations

import contextlib
import json
import os
import random
import time
from dataclasses import asdict, dataclass, fields

__all__ = [
    "ENV_FAULTS",
    "ENV_FRAME_CHECK",
    "FAULT_EXIT_CODE",
    "FaultPlan",
    "FaultInjector",
    "inject_faults",
    "plan_from_env",
    "frame_check_from_env",
]

ENV_FAULTS = "REPRO_FAULTS"
ENV_FRAME_CHECK = "REPRO_FRAME_CHECK"

#: exit code of injected kills — distinguishable from real crashes
FAULT_EXIT_CODE = 17


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected worker faults.

    Step numbers count ``OP_STEP`` commands handled by one worker
    process; ``kill_on_steps``/``corrupt_on_steps`` fire on exact
    counts, ``kill_every`` on every multiple. With ``kill_worker``
    unset, each event's victim is drawn from the seeded hash; set it to
    pin every event on one worker index.
    """

    seed: int = 0
    #: kill one worker every k steps (0 = off)
    kill_every: int = 0
    #: kill on these exact per-process step counts
    kill_on_steps: tuple = ()
    #: pin the victim worker index (None = seeded pick per event)
    kill_worker: int | None = None
    #: wedge: sleep this long before the given step (0 = off)
    delay_on_step: int = 0
    delay_seconds: float = 0.0
    #: flip one byte in these steps' sealed reply frames
    corrupt_on_steps: tuple = ()
    #: die while handling the nth relane/rebuild command (0 = off)
    fail_relane: int = 0

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        known = {f.name for f in fields(cls)}
        kwargs = {}
        for key, value in data.items():
            if key not in known:
                continue
            kwargs[key] = tuple(value) if isinstance(value, list) else value
        return cls(**kwargs)

    def apply_env(self, environ=None) -> None:
        environ = os.environ if environ is None else environ
        environ[ENV_FAULTS] = self.to_json()
        if self.corrupt_on_steps:
            environ[ENV_FRAME_CHECK] = "1"


def plan_from_env(environ=None) -> FaultPlan | None:
    environ = os.environ if environ is None else environ
    text = environ.get(ENV_FAULTS)
    if not text:
        return None
    return FaultPlan.from_json(text)


def frame_check_from_env(environ=None) -> bool:
    environ = os.environ if environ is None else environ
    return environ.get(ENV_FRAME_CHECK, "") not in ("", "0")


@contextlib.contextmanager
def inject_faults(plan: FaultPlan):
    """Arm ``plan`` for every worker pool built inside the block.

    Sets the environment knobs (restoring them on exit), so forked and
    spawned workers alike pick the plan up in ``_worker_main``. Note a
    *pooled* env spawned outside the block keeps its fault-free
    workers — chaos tests should build their own envs (or pools) inside
    the block.
    """
    saved = {key: os.environ.get(key) for key in (ENV_FAULTS, ENV_FRAME_CHECK)}
    plan.apply_env(os.environ)
    try:
        yield plan
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _victim(seed: int, event, num_workers: int) -> int:
    """The victim worker for one event — the same on every worker,
    with no communication: a :class:`random.Random` seeded from the
    (seed, event) string is process-independent by construction."""
    return random.Random(f"{seed}:{event}").randrange(num_workers)


class FaultInjector:
    """Worker-process side of the harness.

    Hooks are called by the worker's command executor; they run *before*
    the env steps, so an injected kill never half-applies a command —
    exactly the window a real crash would hit. The parent's degraded
    (in-parent) executors never carry an injector.
    """

    def __init__(self, plan: FaultPlan, worker_index: int, num_workers: int):
        self.plan = plan
        self.worker_index = worker_index
        self.num_workers = max(1, num_workers)
        self.steps = 0
        self.relanes = 0

    def _my_turn(self, event) -> bool:
        if self.plan.kill_worker is not None:
            return self.plan.kill_worker == self.worker_index
        return _victim(self.plan.seed, event,
                       self.num_workers) == self.worker_index

    def on_step(self) -> bool:
        """Advance the step counter and fire any scheduled fault.

        Returns True when this step's reply frame should be corrupted
        (the transport flips a byte after sealing it).
        """
        plan = self.plan
        self.steps += 1
        step = self.steps
        if (plan.delay_on_step and step == plan.delay_on_step
                and plan.delay_seconds > 0
                and self._my_turn(("delay", step))):
            time.sleep(plan.delay_seconds)
        kill = ((plan.kill_every and step % plan.kill_every == 0)
                or step in plan.kill_on_steps)
        if kill and self._my_turn(("step", step)):
            os._exit(FAULT_EXIT_CODE)
        return step in plan.corrupt_on_steps and self._my_turn(
            ("corrupt", step))

    def on_relane(self) -> None:
        self.relanes += 1
        if (self.plan.fail_relane and self.relanes == self.plan.fail_relane
                and self._my_turn(("relane", self.relanes))):
            os._exit(FAULT_EXIT_CODE)
