"""Test-support utilities that ship with the package.

:mod:`repro.testing.faults` is the seeded chaos-injection harness the
fault-tolerance suite and the CI ``chaos-smoke`` job use to drive the
*real* worker failure paths (kills, wedged steps, corrupted transport
frames, relane crashes) instead of mocks.
"""

from repro.testing.faults import (
    ENV_FAULTS,
    ENV_FRAME_CHECK,
    FaultInjector,
    FaultPlan,
    inject_faults,
    plan_from_env,
)

__all__ = [
    "ENV_FAULTS",
    "ENV_FRAME_CHECK",
    "FaultInjector",
    "FaultPlan",
    "inject_faults",
    "plan_from_env",
]
