"""Canonical compromise-state lattice for the DBN.

The six boolean conditions of Table 1 span 64 combinations, but the
prerequisite chain admits only a ladder of meaningful configurations.
The DBN tracks nine canonical states; reboot persistence is folded into
the cleaned states (a cleaned node is treated as needing re-imaging by
the expert policy, which is the conservative response).

The filter's transition model is conditioned on a defender action
category and on a bucketed summary statistic mu of the total number of
compromised nodes, approximating the intractable full joint update
(paper eq 7).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.net.nodes import Condition
from repro.sim.orchestrator import DefenderActionType

__all__ = [
    "CanonicalState",
    "N_STATES",
    "ActionCategory",
    "N_ACTION_CATEGORIES",
    "N_MU_BUCKETS",
    "SCAN_TYPE_INDEX",
    "canonical_states",
    "action_category",
    "mu_bucket",
]


class CanonicalState(enum.IntEnum):
    CLEAN = 0
    SCANNED = 1
    COMP = 2  # compromised, no persistence, no admin
    COMP_RB = 3  # compromised + reboot persistence
    ADMIN = 4  # admin access, no persistence beyond reboot=false
    ADMIN_RB = 5  # admin + reboot persistence
    ADMIN_CRED = 6  # credential persistence (reboot folded in)
    ADMIN_CLEANED = 7  # cleaned, no credential persistence
    ADMIN_CRED_CLEANED = 8  # cleaned + credential persistence


N_STATES = len(CanonicalState)

#: states whose compromise implies APT command and control
COMPROMISED_STATES = np.arange(CanonicalState.COMP, N_STATES)


class ActionCategory(enum.IntEnum):
    """Defender-action conditioning classes for the transition model."""

    NONE = 0
    INVESTIGATE = 1
    REBOOT = 2
    RESET_PASSWORD = 3
    REIMAGE = 4
    QUARANTINE = 5


N_ACTION_CATEGORIES = len(ActionCategory)

_CATEGORY_BY_TYPE = {
    DefenderActionType.SIMPLE_SCAN: ActionCategory.INVESTIGATE,
    DefenderActionType.ADVANCED_SCAN: ActionCategory.INVESTIGATE,
    DefenderActionType.HUMAN_ANALYSIS: ActionCategory.INVESTIGATE,
    DefenderActionType.REBOOT: ActionCategory.REBOOT,
    DefenderActionType.RESET_PASSWORD: ActionCategory.RESET_PASSWORD,
    DefenderActionType.REIMAGE: ActionCategory.REIMAGE,
    DefenderActionType.QUARANTINE: ActionCategory.QUARANTINE,
}

#: scan-likelihood table rows
SCAN_TYPE_INDEX = {
    DefenderActionType.SIMPLE_SCAN: 0,
    DefenderActionType.ADVANCED_SCAN: 1,
    DefenderActionType.HUMAN_ANALYSIS: 2,
}
N_SCAN_TYPES = len(SCAN_TYPE_INDEX)

#: mu (network compromise summary) bucket edges: 0, 1-2, 3-5, 6+
_MU_EDGES = np.array([1, 3, 6])
N_MU_BUCKETS = len(_MU_EDGES) + 1


def action_category(atype: DefenderActionType) -> ActionCategory:
    return _CATEGORY_BY_TYPE.get(atype, ActionCategory.NONE)


def mu_bucket(n_compromised: float) -> int:
    """Bucket the (possibly expected) count of compromised nodes."""
    return int(np.digitize(n_compromised, _MU_EDGES))


def canonical_states(conditions: np.ndarray) -> np.ndarray:
    """Map a (nodes x conditions) boolean matrix to canonical state ids."""
    scanned = conditions[:, Condition.SCANNED]
    comp = conditions[:, Condition.COMPROMISED]
    rb = conditions[:, Condition.REBOOT_PERSIST]
    admin = conditions[:, Condition.ADMIN]
    cred = conditions[:, Condition.CRED_PERSIST]
    cleaned = conditions[:, Condition.CLEANED]

    out = np.zeros(conditions.shape[0], dtype=np.int64)
    out[scanned] = CanonicalState.SCANNED
    out[comp & ~rb] = CanonicalState.COMP
    out[comp & rb] = CanonicalState.COMP_RB
    out[admin & ~rb] = CanonicalState.ADMIN
    out[admin & rb] = CanonicalState.ADMIN_RB
    out[cred] = CanonicalState.ADMIN_CRED
    out[cleaned & ~cred] = CanonicalState.ADMIN_CLEANED
    out[cleaned & cred] = CanonicalState.ADMIN_CRED_CLEANED
    return out
