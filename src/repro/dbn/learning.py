"""Learning the DBN's conditional probability tables from data.

The paper runs 1,000 episodes with a random defender, records states,
actions, and observations, and builds probability tables by counting.
:func:`collect_episode` logs one episode; :func:`fit_tables` turns logs
into Laplace-smoothed tables; :func:`fit_dbn` is the one-call helper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dbn.filter import DBNTables
from repro.dbn.states import (
    N_ACTION_CATEGORIES,
    N_MU_BUCKETS,
    N_SCAN_TYPES,
    N_STATES,
    SCAN_TYPE_INDEX,
    action_category,
    ActionCategory,
    canonical_states,
    mu_bucket,
)

__all__ = ["EpisodeLog", "collect_episode", "fit_tables", "fit_dbn"]


@dataclass
class EpisodeLog:
    """Ground-truth trace of one episode for table fitting."""

    #: canonical state per node per step, shape (T+1, N)
    states: np.ndarray
    #: defender action category completing on each node, shape (T, N)
    action_cats: np.ndarray
    #: max alert severity per node per step, shape (T, N)
    alert_levels: np.ndarray
    #: completed scans: (t, node, scan_type_index, detected)
    scans: list[tuple[int, int, int, bool]] = field(default_factory=list)


def collect_episode(env, policy, seed: int | None = None,
                    max_steps: int | None = None) -> EpisodeLog:
    """Run one episode and log everything the table fitter needs.

    ``env`` must have been built with ``record_truth=True`` so the
    ground-truth condition matrix is present in the step info.
    """
    obs = env.reset(seed=seed)
    policy.reset(env)
    n = env.topology.n_nodes
    horizon = env.config.tmax if max_steps is None else min(max_steps, env.config.tmax)

    states = [canonical_states(env.sim.state.conditions)]
    action_cats, alert_levels = [], []
    scans: list[tuple[int, int, int, bool]] = []

    done = False
    t = 0
    while not done and t < horizon:
        actions = policy.act(obs)
        obs, _, done, info = env.step(actions)
        t = info["t"]
        states.append(canonical_states(info["conditions"]))

        cats = np.zeros(n, dtype=np.int64)
        for action in obs.completed_actions:
            cat = action_category(action.atype)
            if cat is not ActionCategory.NONE and action.target is not None \
                    and action.target < n:
                cats[action.target] = int(cat)
        action_cats.append(cats)
        alert_levels.append(obs.alert_severity_per_node(n))
        for result in obs.scan_results:
            idx = SCAN_TYPE_INDEX.get(result.action_type)
            if idx is not None:
                scans.append((t, result.node_id, idx, result.detected))

    return EpisodeLog(
        states=np.array(states),
        action_cats=np.array(action_cats),
        alert_levels=np.array(alert_levels),
        scans=scans,
    )


def fit_tables(logs: list[EpisodeLog], smoothing: float = 0.5) -> DBNTables:
    """Count-based maximum likelihood tables with Laplace smoothing."""
    trans = np.full(
        (N_MU_BUCKETS, N_ACTION_CATEGORIES, N_STATES, N_STATES), smoothing
    )
    # bias the prior toward self-transitions so sparsely observed
    # (mu, action) cells behave sensibly instead of diffusing mass
    trans += 10.0 * smoothing * np.eye(N_STATES)
    alert = np.full((N_STATES, 4), smoothing)
    scan = np.full((N_SCAN_TYPES, N_STATES, 2), smoothing)

    for log in logs:
        steps = log.action_cats.shape[0]
        for t in range(steps):
            s_prev = log.states[t]
            s_next = log.states[t + 1]
            mu = mu_bucket(int((s_prev >= 2).sum()))
            cats = log.action_cats[t]
            np.add.at(trans, (mu, cats, s_prev, s_next), 1.0)
            np.add.at(alert, (s_next, log.alert_levels[t]), 1.0)
        for t, node, scan_idx, detected in log.scans:
            state = log.states[t][node]
            scan[scan_idx, state, int(detected)] += 1.0

    trans /= trans.sum(axis=-1, keepdims=True)
    alert /= alert.sum(axis=-1, keepdims=True)
    scan /= scan.sum(axis=-1, keepdims=True)
    return DBNTables(trans, alert, scan)


def fit_dbn(env_factory, policy_factory, episodes: int,
            seed: int = 0, max_steps: int | None = None,
            smoothing: float = 0.5) -> DBNTables:
    """Generate data with a (random) defender policy and fit the DBN.

    ``env_factory()`` and ``policy_factory()`` build fresh instances;
    episodes are seeded ``seed, seed+1, ...`` for reproducibility.
    """
    logs = []
    for i in range(episodes):
        env = env_factory()
        policy = policy_factory()
        logs.append(collect_episode(env, policy, seed=seed + i, max_steps=max_steps))
    return fit_tables(logs, smoothing=smoothing)
