"""Dynamic Bayes network filter (paper Section 4.3).

The DBN turns raw IDS alerts and scan results into a per-node belief
over canonical compromise states. Its conditional probability tables
are *learned from data* by running episodes with a random defender and
counting transitions, exactly as in the paper.
"""

from repro.dbn.states import (
    ActionCategory,
    CanonicalState,
    N_STATES,
    action_category,
    canonical_states,
    mu_bucket,
    N_MU_BUCKETS,
)
from repro.dbn.filter import DBNFilter, DBNTables
from repro.dbn.learning import EpisodeLog, collect_episode, fit_tables, fit_dbn
from repro.dbn.validation import validate_dbn

__all__ = [
    "ActionCategory",
    "CanonicalState",
    "N_STATES",
    "N_MU_BUCKETS",
    "action_category",
    "canonical_states",
    "mu_bucket",
    "DBNFilter",
    "DBNTables",
    "EpisodeLog",
    "collect_episode",
    "fit_tables",
    "fit_dbn",
    "validate_dbn",
]
