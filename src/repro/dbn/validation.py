"""DBN validation (paper Section 4.3).

The paper validates the filter by "measuring the maximum KL divergence
of the DBN belief and the true state over many episodes". With a
one-hot truth distribution, KL(truth || belief) reduces to the negative
log belief assigned to the true state; we report its maximum and mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbn.filter import DBNFilter, DBNTables
from repro.dbn.states import canonical_states

__all__ = ["DBNValidationResult", "validate_dbn"]


@dataclass(frozen=True)
class DBNValidationResult:
    max_kl: float
    mean_kl: float
    accuracy: float  # fraction of node-steps where argmax belief == truth
    steps: int


def validate_dbn(
    env_factory,
    policy_factory,
    tables: DBNTables,
    episodes: int = 5,
    seed: int = 1000,
    max_steps: int | None = None,
    clip: float = 1e-6,
) -> DBNValidationResult:
    """Track beliefs alongside ground truth and score them."""
    max_kl = 0.0
    total_kl = 0.0
    correct = 0
    count = 0

    for i in range(episodes):
        env = env_factory()
        policy = policy_factory()
        obs = env.reset(seed=seed + i)
        policy.reset(env)
        dbn = DBNFilter(tables, env.topology)
        horizon = env.config.tmax if max_steps is None else max_steps
        done, t = False, 0
        while not done and t < horizon:
            actions = policy.act(obs)
            obs, _, done, info = env.step(actions)
            t = info["t"]
            beliefs = dbn.update(obs)
            truth = canonical_states(info["conditions"])
            p_true = np.clip(beliefs[np.arange(len(truth)), truth], clip, 1.0)
            kls = -np.log(p_true)
            max_kl = max(max_kl, float(kls.max()))
            total_kl += float(kls.sum())
            correct += int((beliefs.argmax(axis=1) == truth).sum())
            count += len(truth)

    return DBNValidationResult(
        max_kl=max_kl,
        mean_kl=total_kl / max(count, 1),
        accuracy=correct / max(count, 1),
        steps=count,
    )
