"""Recursive Bayes filter over per-node compromise beliefs (eq 7).

For every node i the filter maintains a belief vector b_i over the
canonical states. Each step it applies

    b'_i(s') = eta * P(o_i | s', a_i) * sum_s P(s' | s, mu, a_i) b_i(s)

where a_i is the defender action category completing on node i this
step, o_i is the node's observation (max alert severity and any scan
result), and mu is a bucketed summary of the expected network-wide
compromise count -- the paper's tractable surrogate for conditioning on
the full joint state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbn.states import (
    ActionCategory,
    CanonicalState,
    N_ACTION_CATEGORIES,
    N_MU_BUCKETS,
    N_SCAN_TYPES,
    N_STATES,
    SCAN_TYPE_INDEX,
    action_category,
    mu_bucket,
)
from repro.net.topology import Topology
from repro.sim.observations import Observation

__all__ = ["DBNTables", "DBNFilter"]

_EPS = 1e-12


@dataclass
class DBNTables:
    """Learned conditional probability tables.

    transition : (n_mu, n_action_categories, S, S)
        ``transition[mu, a, s, s']`` = P(s' | s, mu, a).
    alert_lik : (S, 4)
        P(max alert level | state); level 0 means no alert.
    scan_lik : (n_scan_types, S, 2)
        P(scan result | state, scan type); column 1 = detected.
    """

    transition: np.ndarray
    alert_lik: np.ndarray
    scan_lik: np.ndarray

    def __post_init__(self) -> None:
        expected_t = (N_MU_BUCKETS, N_ACTION_CATEGORIES, N_STATES, N_STATES)
        if self.transition.shape != expected_t:
            raise ValueError(f"transition shape {self.transition.shape} != {expected_t}")
        if self.alert_lik.shape != (N_STATES, 4):
            raise ValueError("alert_lik must be (S, 4)")
        if self.scan_lik.shape != (N_SCAN_TYPES, N_STATES, 2):
            raise ValueError("scan_lik must be (n_scan_types, S, 2)")

    def save(self, path) -> None:
        np.savez(
            path,
            transition=self.transition,
            alert_lik=self.alert_lik,
            scan_lik=self.scan_lik,
        )

    @classmethod
    def load(cls, path) -> "DBNTables":
        data = np.load(path)
        return cls(data["transition"], data["alert_lik"], data["scan_lik"])


class DBNFilter:
    """Vectorized per-node belief tracker."""

    def __init__(self, tables: DBNTables, topology: Topology):
        self.tables = tables
        self.topology = topology
        self.n_nodes = topology.n_nodes
        self.beliefs = np.zeros((self.n_nodes, N_STATES))
        self.reset()

    def reset(self) -> None:
        self.beliefs[:] = 0.0
        self.beliefs[:, CanonicalState.CLEAN] = 1.0

    # ------------------------------------------------------------------
    @property
    def expected_compromised(self) -> float:
        """Expected number of compromised nodes under the current belief."""
        return float(self.beliefs[:, CanonicalState.COMP:].sum())

    def prob_compromised(self) -> np.ndarray:
        """Per-node probability of APT command and control."""
        return self.beliefs[:, CanonicalState.COMP:].sum(axis=1)

    # ------------------------------------------------------------------
    def update(self, obs: Observation) -> np.ndarray:
        """Advance beliefs by one step given an observation.

        Uses ``obs.completed_actions`` (the defender's own completing
        actions) for the transition conditioning and the alerts / scan
        results for the likelihood update. Returns the belief matrix.
        """
        mu = mu_bucket(self.expected_compromised)

        # transition: group nodes by completing action category
        categories = np.zeros(self.n_nodes, dtype=np.int64)
        for action in obs.completed_actions:
            cat = action_category(action.atype)
            if cat is not ActionCategory.NONE and action.target is not None \
                    and action.target < self.n_nodes:
                categories[action.target] = int(cat)

        new_beliefs = np.empty_like(self.beliefs)
        for cat in np.unique(categories):
            mask = categories == cat
            new_beliefs[mask] = self.beliefs[mask] @ self.tables.transition[mu, cat]

        # likelihood: max alert severity per node (0 = no alert)
        severities = obs.alert_severity_per_node(self.n_nodes)
        new_beliefs *= self.tables.alert_lik[:, severities].T

        # likelihood: completed scans
        for result in obs.scan_results:
            scan_idx = SCAN_TYPE_INDEX.get(result.action_type)
            if scan_idx is None or result.node_id >= self.n_nodes:
                continue
            new_beliefs[result.node_id] *= self.tables.scan_lik[
                scan_idx, :, int(result.detected)
            ]

        # quarantined nodes are isolated: freeze their belief dynamics is
        # unnecessary -- the learned QUARANTINE transition covers them.

        sums = new_beliefs.sum(axis=1, keepdims=True)
        degenerate = (sums <= _EPS).ravel()
        if degenerate.any():
            new_beliefs[degenerate] = 1.0 / N_STATES
            sums = new_beliefs.sum(axis=1, keepdims=True)
        self.beliefs = new_beliefs / sums
        return self.beliefs
