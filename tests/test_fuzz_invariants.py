"""Fuzzed whole-simulation invariants and failure injection.

These tests drive the full engine with randomized defender behaviour
and verify the structural invariants every experiment silently relies
on: the Table 1 condition lattice, labor-budget enforcement, busy-
target rejection, PLC accounting, reward-envelope bounds, DBN simplex
preservation, and determinism under fuzzing.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import tiny_network
from repro.dbn.states import N_STATES
from repro.net.nodes import Condition
from repro.sim.orchestrator import (
    DEFENDER_ACTION_SPECS,
    DefenderAction,
    DefenderActionType,
)

_T = DefenderActionType


def _random_actions(env, rng, max_actions=3):
    """A burst of random (possibly conflicting) defender actions."""
    count = int(rng.integers(0, max_actions + 1))
    return [
        env.action_list[int(rng.integers(env.n_actions))]
        for _ in range(count)
    ]


def _check_condition_lattice(conditions: np.ndarray) -> None:
    """Table 1's requirement column, as array implications."""
    comp = conditions[:, Condition.COMPROMISED]
    scanned = conditions[:, Condition.SCANNED]
    admin = conditions[:, Condition.ADMIN]
    assert not (comp & ~scanned).any(), "compromise requires scanned"
    assert not (admin & ~comp).any(), "admin requires compromise"
    assert not (
        conditions[:, Condition.REBOOT_PERSIST] & ~comp
    ).any(), "reboot persistence requires compromise"
    assert not (
        conditions[:, Condition.CRED_PERSIST] & ~admin
    ).any(), "credential persistence requires admin"
    assert not (
        conditions[:, Condition.CLEANED] & ~admin
    ).any(), "cleanup requires admin"


class TestFuzzedEpisodes:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_engine_invariants_under_random_defense(self, seed):
        env = repro.make_env(tiny_network(tmax=60), seed=seed)
        env.reset(seed=seed)
        rng = np.random.default_rng(seed + 1)
        apt = env.config.apt
        last_t = 0
        for _ in range(60):
            obs, reward, done, info = env.step(_random_actions(env, rng))
            # clock advances exactly one hour per step
            assert info["t"] == last_t + 1
            last_t = info["t"]
            # Table 1 condition lattice holds at every step
            _check_condition_lattice(info["conditions"])
            # labor budget: never more in-flight APT actions than labor
            assert len(env.sim.in_flight) <= apt.labor_rate
            # PLC accounting
            assert 0 <= info["n_plcs_offline"] <= env.topology.n_plcs
            assert info["n_plcs_destroyed"] <= info["n_plcs_offline"]
            # compromise counts are consistent
            assert info["n_compromised"] == (
                info["n_ws_compromised"] + info["n_srv_compromised"]
            )
            # per-step reward envelope: r = rPLC + lambda*rIT + rterm
            rcfg = env.config.reward
            r_min = (1.0 - rcfg.destroyed_penalty * env.topology.n_plcs
                     + rcfg.lambda_it * (1.0 - 10.0))
            r_max = 1.0 + rcfg.lambda_it + rcfg.terminal_reward
            assert r_min <= reward <= r_max
            if done:
                break

    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_fuzzed_episode_is_deterministic(self, seed):
        def run():
            env = repro.make_env(tiny_network(tmax=40), seed=seed)
            env.reset(seed=seed)
            rng = np.random.default_rng(seed)
            rewards = []
            for _ in range(40):
                _, reward, done, info = env.step(_random_actions(env, rng))
                rewards.append(reward)
                if done:
                    break
            return rewards, info["conditions"].tolist()

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]

    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_dbn_stays_on_simplex_under_fuzz(self, tiny_tables, seed):
        from repro.dbn.filter import DBNFilter

        env = repro.make_env(tiny_network(tmax=40), seed=seed)
        dbn = DBNFilter(tiny_tables, env.topology)
        obs = env.reset(seed=seed)
        rng = np.random.default_rng(seed + 2)
        for _ in range(40):
            beliefs = dbn.update(obs)
            assert beliefs.shape == (env.topology.n_nodes, N_STATES)
            assert np.allclose(beliefs.sum(axis=1), 1.0)
            assert (beliefs >= -1e-12).all()
            obs, _, done, _ = env.step(_random_actions(env, rng))
            if done:
                break


class TestFailureInjection:
    def test_busy_target_rejected_not_queued(self, tiny_env):
        tiny_env.reset(seed=0)
        action = DefenderAction(_T.REIMAGE, 0)  # 8-hour action
        spec = DEFENDER_ACTION_SPECS[_T.REIMAGE]
        _, _, _, info = tiny_env.step([action])
        assert action in info["launched"]
        busy_until = tiny_env.sim.state.node_busy_until[0]
        assert busy_until == spec.duration
        # relaunching on the busy node is silently rejected and the
        # occupancy window is not extended
        _, _, _, info = tiny_env.step([action])
        assert action not in info["launched"]
        assert tiny_env.sim.state.node_busy_until[0] == busy_until

    def test_duplicate_actions_in_one_step_collapse(self, tiny_env):
        tiny_env.reset(seed=0)
        action = DefenderAction(_T.ADVANCED_SCAN, 1)
        _, _, _, info = tiny_env.step([action, action, action])
        assert info["launched"].count(action) == 1

    def test_mitigating_clean_nodes_is_harmless(self, tiny_env):
        """Reimaging the whole (clean) network never corrupts state."""
        tiny_env.reset(seed=0)
        before = tiny_env.sim.state.conditions.copy()
        beachhead = int(np.flatnonzero(
            before[:, Condition.COMPROMISED]
        )[0])
        actions = [
            DefenderAction(_T.REIMAGE, node.node_id)
            for node in tiny_env.topology.nodes
        ]
        tiny_env.step(actions)
        for _ in range(10):
            tiny_env.step([])
        after = tiny_env.sim.state.conditions
        _check_condition_lattice(after)
        # every node except possibly a re-compromised one is nominal
        clean_rows = [
            n.node_id for n in tiny_env.topology.nodes
            if n.node_id != beachhead
        ]
        for node_id in clean_rows:
            assert not after[
                node_id,
                [Condition.ADMIN, Condition.CRED_PERSIST, Condition.CLEANED],
            ].any()

    def test_plc_repair_on_healthy_plc_is_noop(self, tiny_env):
        tiny_env.reset(seed=0)
        state = tiny_env.sim.state
        assert not state.plc_disrupted.any()
        for _ in range(3):
            tiny_env.step([DefenderAction(_T.RESET_PLC, 0)])
        assert not state.plc_disrupted.any()
        assert not state.plc_destroyed.any()

    def test_quarantine_toggle_is_involution(self, tiny_env):
        tiny_env.reset(seed=0)
        state = tiny_env.sim.state
        home = state.node_vlan[0]
        # quarantine completes within one step (1-hour duration)
        tiny_env.step([DefenderAction(_T.QUARANTINE, 0)])
        assert state.is_quarantined(0)
        assert state.node_vlan[0] != home
        # a second quarantine returns the node to its home VLAN
        tiny_env.step([DefenderAction(_T.QUARANTINE, 0)])
        assert not state.is_quarantined(0)
        assert state.node_vlan[0] == home

    def test_noop_flood_changes_nothing(self, tiny_env):
        tiny_env.reset(seed=0)
        noop = DefenderAction(_T.NOOP)
        _, _, _, info = tiny_env.step([noop] * 50)
        assert info["launched"] == []
        assert info["it_cost"] == 0.0

    def test_episode_terminates_exactly_at_tmax(self):
        env = repro.make_env(tiny_network(tmax=25), seed=0)
        env.reset(seed=0)
        done = False
        steps = 0
        while not done:
            _, reward, done, info = env.step([])
            steps += 1
            assert steps <= 25
        assert steps == 25
        # terminal step pays the 1/(1-gamma) bonus
        assert reward > env.config.reward.terminal_reward - 2.0

    def test_reset_fully_clears_state(self, tiny_env):
        rng = np.random.default_rng(0)
        tiny_env.reset(seed=0)
        for _ in range(20):
            tiny_env.step(_random_actions(tiny_env, rng))
        obs = tiny_env.reset(seed=1)
        assert tiny_env.t == 0
        assert not obs.node_busy.any()
        assert not obs.plc_busy.any()
        assert tiny_env.sim.state.n_plcs_offline() == 0
        assert len(tiny_env.sim.queue) == 0
        assert len(tiny_env.sim.in_flight) == 0
        # exactly the beachhead is compromised after reset
        assert tiny_env.sim.state.n_compromised() == 1


class TestAttackerDegenerateConfigs:
    def test_labor_rate_one_attacker_still_progresses(self):
        from dataclasses import replace

        cfg = tiny_network(tmax=200)
        cfg = cfg.with_apt(replace(cfg.apt, labor_rate=1))
        env = repro.make_env(cfg, seed=3)
        env.reset(seed=3)
        compromised = []
        for _ in range(200):
            _, _, done, info = env.step([])
            compromised.append(info["n_compromised"])
            assert len(env.sim.in_flight) <= 1
            if done:
                break
        assert max(compromised) >= 2  # lateral movement happened

    def test_single_plc_network_runs(self):
        from dataclasses import replace

        from repro.config import SimConfig, TopologyConfig

        cfg = tiny_network()
        config = SimConfig(
            topology=TopologyConfig(l2_workstations=2, l2_servers=("opc",),
                                    l1_hmis=1, plcs=1),
            apt=replace(cfg.apt, plc_threshold_destroy=1,
                        plc_threshold_disrupt=1),
            tmax=50,
        )
        env = repro.make_env(config, seed=0)
        env.reset(seed=0)
        for _ in range(50):
            _, _, done, info = env.step([])
            assert info["n_plcs_offline"] <= 1
            if done:
                break

    def test_historianless_network_skips_process_discovery(self):
        """The FSM must degrade gracefully when the precondition server
        for its Process Discovery phase does not exist."""
        from dataclasses import replace

        from repro.config import SimConfig, TopologyConfig

        cfg = tiny_network()
        config = SimConfig(
            topology=TopologyConfig(l2_workstations=3, l2_servers=("opc",),
                                    l1_hmis=1, plcs=3),
            apt=replace(cfg.apt, time_scale=10.0),
            tmax=150,
        )
        env = repro.make_env(config, seed=1)
        env.reset(seed=1)
        phases = set()
        for _ in range(150):
            _, _, done, info = env.step([])
            phases.add(info["apt_phase"])
            if done:
                break
        # the attacker moved past the historian-gated phase
        assert len(phases) > 2
