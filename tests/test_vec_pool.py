"""Persistent worker pools and the zero-pickle transport.

Four guarantees pinned here:

* the per-step path of the process/shm backends never pickles — a
  monkeypatched ``pickle.dumps`` / ``ForkingPickler.dumps`` would
  explode if a step, mask query, or reset touched it;
* pool lifecycle hygiene: no orphaned worker processes and no leaked
  ``shared_memory`` segments after ``close()``, after an exception
  mid-generation, after a worker crash, and after repeated
  ``rebuild_lane`` cycles;
* re-laning a live pool is bit-identical to constructing a fresh
  vector env over the same specs and seed;
* a multi-generation CEM run on ``backend="process"`` spawns exactly
  one worker pool.
"""

import multiprocessing as mp
import pickle
from multiprocessing import shared_memory
from multiprocessing.reduction import ForkingPickler

import numpy as np
import pytest

import repro
from repro.adversarial import (
    AttackerParameterSpace,
    CrossEntropySearch,
    make_defender_fitness_vec,
)
from repro.defenders import PlaybookPolicy
from repro.sim.orchestrator import DefenderAction, DefenderActionType
from repro.sim.vec_backends import ProcessVectorEnv, ShmVectorEnv, VecPool


def _specs(n, horizon=10, **apt_overrides):
    base = repro.get_scenario("inasim-tiny-v1").with_overrides(horizon=horizon)
    if apt_overrides:
        base = base.with_overrides(apt_overrides=apt_overrides)
    return [base] * n


def _obs_fingerprint(obs):
    return (
        obs.t,
        tuple((a.t, a.severity, a.node_id, a.device_id, a.source)
              for a in obs.alerts),
        tuple((s.t, s.node_id, s.detected, s.action_type)
              for s in obs.scan_results),
        obs.plc_disrupted.tolist(),
        obs.plc_destroyed.tolist(),
        obs.node_busy.tolist(),
        obs.plc_busy.tolist(),
        obs.quarantined.tolist(),
        tuple((a.atype, a.target) for a in obs.completed_actions),
    )


class _WeirdAction:
    """Not binary-encodable; InasimEnv._coerce treats it as an iterable
    of zero defender actions (module-level so pickle can reach it)."""

    def __iter__(self):
        return iter(())


def _no_segment(name):
    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    handle.close()
    return False


def _workers_reaped(venv):
    return all(p is None or not p.is_alive() for p in venv._procs)


class _NoPickle:
    """Context manager that booby-traps every pickling entry point."""

    def __init__(self, monkeypatch):
        self.monkeypatch = monkeypatch

    def __enter__(self):
        def boom(*args, **kwargs):
            raise AssertionError("pickle on the per-step path")

        self.monkeypatch.setattr(pickle, "dumps", boom)
        self.monkeypatch.setattr(ForkingPickler, "dumps", boom)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.monkeypatch.undo()


class TestZeroPicklePerStep:
    @pytest.mark.parametrize("backend", ["process", "shm"])
    def test_step_path_never_pickles(self, monkeypatch, backend):
        """Steps, masks, and resets cross the worker boundary without a
        single parent-side pickle call — for every action form the
        repo's policies emit (None, ints, DefenderAction lists)."""
        with repro.make_vec("inasim-tiny-v1", 4, seed=0, horizon=5,
                            backend=backend, num_workers=2) as venv:
            rng = np.random.default_rng(0)
            quarantine = DefenderAction(DefenderActionType.QUARANTINE, 0)
            with _NoPickle(monkeypatch):
                venv.reset(seed=0)
                venv.step(None)
                venv.step(venv.sample_actions(rng))
                venv.step([[quarantine], None, [], [quarantine]])
                venv.action_masks()
                venv.reset_env(1, seed=7)
                # ride through an auto-reset boundary (horizon 5)
                for _ in range(6):
                    venv.step(None)
                venv.auto_reset = False
                venv.step(None, mask=[True, False, True, True])

    def test_exotic_action_falls_back_to_pickle(self):
        """The legacy pickled protocol still carries what the binary
        format cannot, with identical results."""
        sync = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10)
        sync.reset(seed=0)
        with repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10,
                            backend="process", num_workers=1) as venv:
            venv.reset(seed=0)
            step_s = sync.step([_WeirdAction(), _WeirdAction()])
            step_p = venv.step([_WeirdAction(), _WeirdAction()])
            np.testing.assert_array_equal(step_s.rewards, step_p.rewards)

    @pytest.mark.parametrize("backend", ["process", "shm"])
    def test_step_infos_match_sync_exactly(self, backend):
        """The structured info record reconstructs every field the sync
        backend reports: tallies, reward breakdown, launched/completed
        actions, attacker phase, ground-truth conditions, and the
        final_observation slot on auto-reset boundaries."""
        sync = repro.make_vec("inasim-tiny-v1", 3, seed=0, horizon=4)
        sync.reset(seed=0)
        with repro.make_vec("inasim-tiny-v1", 3, seed=0, horizon=4,
                            backend=backend, num_workers=2) as venv:
            venv.reset(seed=0)
            saw_final = False
            for _ in range(9):
                step_s = sync.step(np.array([1, 0, 2]))
                step_p = venv.step(np.array([1, 0, 2]))
                for info_s, info_p in zip(step_s.infos, step_p.infos):
                    assert info_s.keys() == info_p.keys()
                    for key in info_s:
                        if key == "conditions":
                            np.testing.assert_array_equal(info_s[key],
                                                          info_p[key])
                        elif key == "final_observation":
                            saw_final = True
                            assert (_obs_fingerprint(info_s[key])
                                    == _obs_fingerprint(info_p[key]))
                        else:
                            assert info_s[key] == info_p[key], key
            assert saw_final  # horizon 4 over 9 steps crossed a boundary


class TestPoolLifecycle:
    def test_close_reaps_workers_and_segments(self):
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10,
                              backend="shm", num_workers=2)
        name = venv._slab.name
        venv.reset(seed=0)
        venv.step(None)
        venv.close()
        venv.close()  # idempotent
        assert _workers_reaped(venv)
        assert _no_segment(name)

    def test_worker_crash_during_reset_recovers_in_place(self):
        """With supervision (the default), a worker killed mid-reset is
        respawned and the reset completes; close() still unlinks the
        slab and reaps every worker, respawned ones included."""
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10,
                              backend="shm", num_workers=2)
        name = venv._slab.name
        try:
            venv._procs[0].kill()
            venv._procs[0].join(timeout=5.0)
            venv.reset(seed=0)
            venv.step(None)
            assert venv.fault_stats["faults"] == 1
            assert venv.fault_stats["restarts"] == 1
        finally:
            venv.close()
        assert venv._closed
        assert _workers_reaped(venv)
        assert _no_segment(name)

    def test_worker_crash_without_supervision_leaves_no_residue(self):
        """Supervision off restores the fail-fast contract: a killed
        worker surfaces as RuntimeError("...died...") and the teardown
        still unlinks the slab and reaps the remaining workers."""
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10,
                              backend="shm", num_workers=2)
        venv.configure_supervision(enabled=False)
        name = venv._slab.name
        venv._procs[0].kill()
        venv._procs[0].join(timeout=5.0)
        with pytest.raises(RuntimeError, match="died"):
            for _ in range(3):  # the send may land before the pipe breaks
                venv.reset(seed=0)
        assert venv._closed
        assert _workers_reaped(venv)
        assert _no_segment(name)

    def test_constructor_failure_leaves_no_residue(self):
        before = {c.pid for c in mp.active_children()}
        # mixed topologies in one worker slice fail inside the worker,
        # after the parent already allocated the slab
        mixed = [repro.get_scenario("inasim-tiny-v1"),
                 repro.get_scenario("inasim-small-v1")]
        with pytest.raises(RuntimeError, match="worker failed"):
            ShmVectorEnv.from_specs(mixed, num_workers=1)
        leftover = [c for c in mp.active_children() if c.pid not in before]
        for child in leftover:
            child.join(timeout=5.0)
        assert not [c for c in mp.active_children() if c.pid not in before]

    def test_pool_close_after_exception_mid_generation(self):
        """An exception inside a pooled evaluation must not orphan
        workers or leak segments once the pool is closed."""
        pool = VecPool()
        before = {c.pid for c in mp.active_children()}
        try:
            with pytest.raises(ValueError, match="boom"):
                venv = pool.acquire(_specs(3), seed=0, backend="shm",
                                    num_workers=2)
                with venv:
                    venv.reset(seed=0)
                    raise ValueError("boom")
            # the soft release kept the pool alive for the next acquire
            assert pool.stats["live_pools"] == 1
            name = next(iter(pool._pools.values()))._slab.name
        finally:
            pool.close()
        assert _no_segment(name)
        leftover = [c for c in mp.active_children() if c.pid not in before]
        assert not leftover

    def test_worker_side_step_error_does_not_poison_pool(self):
        """An application error inside one worker (e.g. an invalid
        action index) drains every pipe before raising, so the live
        pool stays protocol-synced and the next acquire re-lanes it."""
        pool = VecPool()
        try:
            venv = pool.acquire(_specs(4), seed=0, backend="process",
                                num_workers=2)
            venv.reset(seed=0)
            with pytest.raises(RuntimeError, match="worker failed"):
                venv.step(np.array([999_999, 0, 0, 0]))
            again = pool.acquire(_specs(4), seed=0, backend="process",
                                 num_workers=2)
            assert again is venv and pool.spawns == 1
            again.reset(seed=0)
            ref = repro.make_vec_from_specs(_specs(4), seed=0)
            ref.reset(seed=0)
            for _ in range(5):
                np.testing.assert_array_equal(again.step(None).rewards,
                                              ref.step(None).rewards)
        finally:
            pool.close()

    def test_pool_survives_worker_death_in_place(self):
        """A supervised pool env rides through a kill without ever
        being dropped from the pool — the next acquire reuses it."""
        pool = VecPool()
        try:
            venv = pool.acquire(_specs(2), seed=0, backend="process",
                                num_workers=1)
            venv._procs[0].kill()
            venv._procs[0].join(timeout=5.0)
            venv.reset(seed=0)
            venv.step(None)
            assert venv.fault_stats["restarts"] == 1
            venv.close()  # soft release back to the pool
            again = pool.acquire(_specs(2), seed=0, backend="process",
                                 num_workers=1)
            assert again is venv and pool.spawns == 1
        finally:
            pool.close()
        assert not [c for c in mp.active_children() if c.is_alive()]

    def test_pool_respawns_after_worker_death(self):
        """Supervision off: a dead worker fail-fasts, the pool drops
        the poisoned env, and the next acquire spawns a fresh one."""
        pool = VecPool()
        try:
            venv = pool.acquire(_specs(2), seed=0, backend="process",
                                num_workers=1)
            venv.configure_supervision(enabled=False)
            venv._procs[0].kill()
            venv._procs[0].join(timeout=5.0)
            with pytest.raises(RuntimeError):
                venv.reset(seed=0)
            fresh = pool.acquire(_specs(2), seed=0, backend="process",
                                 num_workers=1)
            assert fresh is not venv
            fresh.reset(seed=0)
            fresh.step(None)
            assert pool.spawns == 2
        finally:
            pool.close()
        assert not [c for c in mp.active_children() if c.is_alive()]

    def test_repeated_rebuild_cycles_leak_nothing(self):
        """50 rebuild_lane calls + 5 relanes on one live pool: same
        worker pids, same slab, no segment or process accumulation."""
        pool = VecPool()
        try:
            venv = pool.acquire(_specs(4), seed=0, backend="shm",
                                num_workers=2)
            pids = [p.pid for p in venv._procs]
            name = venv._slab.name
            variant = _specs(1, lateral_threshold=1)[0]
            for cycle in range(5):
                for lane in range(4):
                    venv.rebuild_lane(lane, variant, seed=cycle)
                    venv.rebuild_lane(lane, _specs(1)[0])
                again = pool.acquire(_specs(4), seed=cycle, backend="shm",
                                     num_workers=2)
                assert again is venv
                assert [p.pid for p in venv._procs] == pids
                assert venv._slab.name == name
            assert pool.stats == {"spawns": 1, "reuses": 5, "live_pools": 1}
            children = mp.active_children()
            assert len([c for c in children if c.pid in pids]) == 2
        finally:
            pool.close()
        assert _no_segment(name)


class TestRelaneParity:
    @pytest.mark.parametrize("backend", ["process", "shm"])
    def test_relane_matches_fresh_construction(self, backend):
        base = repro.get_scenario("inasim-tiny-v1").with_overrides(horizon=8)
        variant = base.with_overrides(
            scenario_id="pool-relane-variant",
            apt_overrides={"lateral_threshold": 1, "labor_rate": 3},
        )
        lineup = [base, variant, base]
        fresh = repro.make_vec_from_specs(lineup, seed=3)
        fresh.reset(seed=5)
        pool = VecPool()
        try:
            venv = pool.acquire(_specs(3), seed=0, backend=backend,
                                num_workers=2)
            venv.reset(seed=0)
            for _ in range(4):
                venv.step(None)  # advance state; relane must wipe it
            venv = pool.acquire(lineup, seed=3, backend=backend,
                                num_workers=2)
            assert venv.lane_config(1).apt.labor_rate == 3
            assert venv.lane_config(0).apt.labor_rate != 3
            venv.reset(seed=5)
            rng_a = np.random.default_rng(9)
            rng_b = np.random.default_rng(9)
            for _ in range(12):
                actions = fresh.sample_actions(rng_a)
                np.testing.assert_array_equal(actions,
                                              venv.sample_actions(rng_b))
                step_f = fresh.step(actions)
                step_v = venv.step(actions)
                assert ([_obs_fingerprint(o) for o in step_f.observations]
                        == [_obs_fingerprint(o) for o in step_v.observations])
                np.testing.assert_array_equal(step_f.rewards, step_v.rewards)
                np.testing.assert_array_equal(step_f.dones, step_v.dones)
                assert fresh.reset_infos == venv.reset_infos
        finally:
            pool.close()

    def test_relane_onto_other_network_updates_geometry(self):
        """A live pool can move between presets: the codec geometry and
        metadata follow the workers' new world."""
        small = repro.get_scenario("inasim-small-v1").with_overrides(horizon=6)
        pool = VecPool()
        try:
            venv = pool.acquire(_specs(2), seed=0, backend="process",
                                num_workers=2)
            tiny_actions = venv.n_actions
            venv = pool.acquire([small, small], seed=0, backend="process",
                                num_workers=2)
            assert venv.n_actions != tiny_actions
            assert venv.config.tmax == 6
            reference = repro.make_vec(small, 2, seed=0)
            reference.reset(seed=2)
            venv.reset(seed=2)
            for _ in range(6):
                step_r = reference.step(None)
                step_v = venv.step(None)
                np.testing.assert_array_equal(step_r.rewards, step_v.rewards)
            assert pool.spawns == 1
        finally:
            pool.close()

    def test_relane_wrong_width_rejected(self):
        venv = ProcessVectorEnv.from_specs(_specs(2), num_workers=1)
        with venv:
            with pytest.raises(ValueError, match="relane needs 2 specs"):
                venv.relane(_specs(3))

    def test_rebuild_lane_requires_spec_built_env(self):
        config = repro.get_scenario("inasim-tiny-v1").build_config()
        with ProcessVectorEnv.from_config(config, 2,
                                          num_workers=1) as venv:
            with pytest.raises(ValueError, match="spec-built"):
                venv.rebuild_lane(0, _specs(1)[0])

    def test_rebuild_lane_refreshes_metadata(self):
        """config/policy_env reflect a rebuilt lane 0 even when the
        template env was already built from the old payload."""
        with ProcessVectorEnv.from_specs(_specs(2), num_workers=1) as venv:
            assert venv.config.apt.labor_rate != 9  # builds the template
            venv.rebuild_lane(
                0, _specs(1)[0].with_overrides(apt_overrides={"labor_rate": 9})
            )
            assert venv.config.apt.labor_rate == 9
            assert venv.policy_env(0).config.apt.labor_rate == 9
            assert venv.lane_config(0).apt.labor_rate == 9
            assert venv.lane_config(1).apt.labor_rate != 9

    def test_rebuild_lane_restarts_seed_schedule(self):
        """rebuild_lane(i) with seed=None re-derives the lane's
        construction seed, so a rebuilt lane replays a fresh lane."""
        with ProcessVectorEnv.from_specs(_specs(2, horizon=20), seed=0,
                                         num_workers=1) as venv:
            venv.reset(seed=0)
            for _ in range(6):
                venv.step(None)
            venv.rebuild_lane(1, _specs(1, horizon=20)[0])
            fresh = repro.make_vec_from_specs(_specs(2, horizon=20), seed=0)
            fresh.reset(seed=0)
            venv.reset(seed=0)
            for _ in range(6):
                step_f = fresh.step(None)
                step_v = venv.step(None)
                np.testing.assert_array_equal(step_f.rewards, step_v.rewards)


class TestPooledCEM:
    def test_three_generation_cem_spawns_one_pool(self):
        """The acceptance criterion verbatim: a 3-generation CEM run on
        backend="process" spawns exactly one worker pool, and its
        result is bit-identical to the sync engine's."""
        spec = repro.get_scenario("inasim-tiny-v1").with_overrides(horizon=8)
        space = AttackerParameterSpace(base=spec.build_config().apt)

        def run(backend, reuse_pool):
            fitness = make_defender_fitness_vec(
                spec, PlaybookPolicy(), episodes=1, seed=0,
                max_steps=8, backend=backend, num_workers=2,
                reuse_pool=reuse_pool,
            )
            search = CrossEntropySearch(space, batch_fitness_fn=fitness,
                                        population=4, seed=0)
            try:
                result = search.run(iterations=3)
            finally:
                if fitness.pool is not None:
                    stats = fitness.pool.stats
                    fitness.pool.close()
                else:
                    stats = None
            return result, stats

        result_sync, _ = run("sync", reuse_pool=False)
        result_proc, stats = run("process", reuse_pool=True)
        assert stats["spawns"] == 1
        assert stats["reuses"] == 2  # generations 2 and 3 re-laned it
        assert result_proc.best_fitness == result_sync.best_fitness
        assert result_proc.history == result_sync.history
        assert result_proc.best_config == result_sync.best_config
        assert not [c for c in mp.active_children() if c.is_alive()]

    def test_make_vec_reuse_pool_soft_close(self):
        """reuse_pool=True on the public constructors: close() is a
        soft release and the default pool keeps the workers."""
        from repro.sim import vec_backends

        pool = VecPool()
        with repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=6,
                            backend="process", num_workers=2,
                            pool=pool) as venv:
            venv.reset(seed=0)
            venv.step(None)
        assert not venv._closed  # released, not closed
        again = repro.make_vec("inasim-tiny-v1", 2, seed=1, horizon=6,
                               backend="process", num_workers=2, pool=pool)
        assert again is venv
        pool.close()
        assert venv._closed
        # the module-global default pool backs reuse_pool=True
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=6,
                              backend="process", num_workers=2,
                              reuse_pool=True)
        assert venv._pool is vec_backends._DEFAULT_POOL
        vec_backends._DEFAULT_POOL.close()


class TestPoolThreadSafety:
    """The serve layer shares one VecPool across executor threads; the
    pool must survive concurrent acquire/release without eviction ever
    tearing down an env another thread is still stepping."""

    def test_eviction_never_touches_leased_envs(self):
        pool = VecPool(max_pools=1)
        a = pool.acquire(_specs(2, horizon=5), seed=0,
                         backend="process", num_workers=2)
        b = pool.acquire(_specs(3, horizon=5), seed=0,
                         backend="process", num_workers=2)
        try:
            # both checked out: over budget, but neither may be evicted
            assert len(pool) == 2
            assert not a._closed and not b._closed
            a.reset(seed=0)
            a.step(None)  # still fully usable
        finally:
            a.close()  # release -> eviction may now trim the excess
        assert len(pool) == 1
        assert a._closed
        assert not b._closed
        b.close()
        pool.close()
        assert not [c for c in mp.active_children() if c.is_alive()]

    def test_threaded_acquire_release_hammer(self):
        """Threads with distinct geometries hammering one small pool:
        every acquire must hand back a live env, eviction churn and all."""
        import threading

        pool = VecPool(max_pools=2)
        errors = []

        def worker(k):
            try:
                for i in range(3):
                    venv = pool.acquire(_specs(2 + k, horizon=5), seed=i,
                                        backend="process", num_workers=2)
                    try:
                        assert not venv._closed
                        venv.reset(seed=i)
                        venv.step(None)
                        venv.step(None)
                    finally:
                        venv.close()
            except Exception as exc:  # pragma: no cover
                errors.append((k, exc))

        threads = [threading.Thread(target=worker, args=(k,))
                   for k in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert not any(t.is_alive() for t in threads)
        assert len(pool) <= 2  # budget holds once everything is released
        pool.close()
        assert len(pool) == 0
        assert not [c for c in mp.active_children() if c.is_alive()]
