"""Tests for the simulation engine and the gym-style environment."""

import numpy as np
import pytest

import repro
from repro.config import tiny_network
from repro.net import Condition
from repro.sim.orchestrator import DefenderAction, DefenderActionType

_T = DefenderActionType


@pytest.fixture()
def env():
    return repro.make_env(tiny_network(tmax=100), seed=1, sample_qualitative=False)


class TestReset:
    def test_beachhead_established(self, env):
        env.reset(seed=3)
        state = env.sim.state
        assert state.n_compromised() == 1
        beachhead = int(np.flatnonzero(state.compromised_mask())[0])
        assert env.topology.nodes[beachhead].level == 2

    def test_reset_returns_clean_observation(self, env):
        obs = env.reset(seed=3)
        assert obs.t == 0
        assert obs.alerts == []
        assert not obs.plc_disrupted.any()

    def test_determinism(self):
        def trajectory(seed):
            e = repro.make_env(tiny_network(tmax=60), seed=seed)
            e.reset(seed=seed)
            out = []
            for _ in range(60):
                _, r, _, info = e.step(None)
                out.append((r, info["n_compromised"], info["apt_phase"]))
            return out

        assert trajectory(9) == trajectory(9)
        assert trajectory(9) != trajectory(10)


class TestStepMechanics:
    def test_time_advances_one_hour(self, env):
        env.reset(seed=0)
        _, _, _, info = env.step(None)
        assert info["t"] == 1

    def test_done_at_tmax(self):
        env = repro.make_env(tiny_network(tmax=5), seed=0)
        env.reset(seed=0)
        done = False
        steps = 0
        while not done:
            _, _, done, info = env.step(None)
            steps += 1
        assert steps == 5
        assert info["reward_breakdown"].r_term > 0

    def test_action_occupies_node(self, env):
        obs = env.reset(seed=0)
        action = DefenderAction(_T.REIMAGE, 0)  # duration 8
        obs, _, _, info = env.step(action)
        assert action in info["launched"]
        assert obs.node_busy[0]
        # a second action on the same node is rejected while busy
        obs, _, _, info = env.step(DefenderAction(_T.REBOOT, 0))
        assert info["launched"] == []

    def test_cost_charged_at_completion(self, env):
        env.reset(seed=0)
        # duration-1 reboot completes at the end of the same step
        _, _, _, info = env.step(DefenderAction(_T.REBOOT, 0))
        assert info["it_cost"] == pytest.approx(0.01)
        # duration-2 scan charges one step later
        _, _, _, info = env.step(DefenderAction(_T.SIMPLE_SCAN, 1))
        assert info["it_cost"] == 0.0
        _, _, _, info = env.step(None)
        assert info["it_cost"] == pytest.approx(0.01)

    def test_completed_actions_visible_to_defender(self, env):
        env.reset(seed=0)
        obs, _, _, _ = env.step(DefenderAction(_T.REBOOT, 0))
        assert DefenderAction(_T.REBOOT, 0) in obs.completed_actions

    def test_scan_produces_result(self, env):
        env.reset(seed=0)
        env.step(DefenderAction(_T.SIMPLE_SCAN, 0))  # duration 2, done at t=2
        obs, _, _, _ = env.step(None)
        assert any(r.node_id == 0 for r in obs.scan_results)

    def test_reboot_clears_beachhead(self, env):
        env.reset(seed=4)
        state = env.sim.state
        beachhead = int(np.flatnonzero(state.compromised_mask())[0])
        # act before the APT sets reboot persistence (takes ~4h at scale 10)
        env.step(DefenderAction(_T.REBOOT, beachhead))
        _, _, _, info = env.step(None)
        persisted = state.has_condition(beachhead, Condition.REBOOT_PERSIST)
        assert persisted or not state.is_compromised(beachhead)

    def test_labor_budget_limits_concurrency(self, env):
        env.reset(seed=0)
        for _ in range(30):
            env.step(None)
            assert len(env.sim.in_flight) <= env.config.apt.labor_rate


class TestInfoChannel:
    def test_info_fields(self, env):
        env.reset(seed=0)
        _, _, _, info = env.step(None)
        for key in ("t", "it_cost", "n_compromised", "n_ws_compromised",
                    "n_srv_compromised", "n_plcs_offline", "apt_phase",
                    "conditions", "reward_breakdown"):
            assert key in info

    def test_record_truth_toggle(self):
        env = repro.make_env(tiny_network(tmax=10), seed=0, record_truth=False)
        env.reset(seed=0)
        _, _, _, info = env.step(None)
        assert "conditions" not in info


class TestActionCoercion:
    def test_single_action(self, env):
        env.reset(seed=0)
        _, _, _, info = env.step(DefenderAction(_T.REBOOT, 0))
        assert len(info["launched"]) == 1

    def test_index_action(self, env):
        env.reset(seed=0)
        idx = env.action_index[DefenderAction(_T.REBOOT, 0)]
        _, _, _, info = env.step(idx)
        assert info["launched"] == [DefenderAction(_T.REBOOT, 0)]

    def test_list_and_none(self, env):
        env.reset(seed=0)
        _, _, _, info = env.step([DefenderAction(_T.REBOOT, 0),
                                  DefenderAction(_T.SIMPLE_SCAN, 1)])
        assert len(info["launched"]) == 2
        _, _, _, info = env.step(None)
        assert info["launched"] == []

    def test_noop_launches_nothing(self, env):
        env.reset(seed=0)
        _, _, _, info = env.step(DefenderAction(_T.NOOP))
        assert info["launched"] == []

    def test_numpy_integer_action(self, env):
        """np.int64 indices (rng.integers / argmax output) must coerce
        like builtin ints -- regression for isinstance(action, (int,))."""
        env.reset(seed=0)
        idx = env.action_index[DefenderAction(_T.REBOOT, 0)]
        for np_idx in (np.int64(idx), np.int32(idx), np.intp(idx)):
            env.reset(seed=0)
            _, _, _, info = env.step(np_idx)
            assert info["launched"] == [DefenderAction(_T.REBOOT, 0)]

    def test_sampled_numpy_action_accepted(self, env):
        env.reset(seed=0)
        rng = np.random.default_rng(0)
        action = rng.integers(env.n_actions)  # np.int64, not int
        assert isinstance(action, np.integer)
        env.step(action)  # must not raise

    def test_sample_action_in_range(self, env):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert 0 <= env.sample_action(rng) < env.n_actions

    def test_action_mask_tracks_busy_targets(self, env):
        env.reset(seed=0)
        assert env.action_mask().all()
        idx = env.action_index[DefenderAction(_T.SIMPLE_SCAN, 0)]
        env.step(idx)  # 2h scan keeps node 0 busy through the next step
        mask = env.action_mask()
        assert not mask[idx]
        assert not mask[env.action_index[DefenderAction(_T.REBOOT, 0)]]
        assert mask[env.action_index[DefenderAction(_T.NOOP)]]
        assert mask[env.action_index[DefenderAction(_T.SIMPLE_SCAN, 1)]]
